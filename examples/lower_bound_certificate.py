#!/usr/bin/env python3
"""Certify a routing lower bound with Lemma 5 — no algorithm needed.

The paper's Lemma 5 turns a cut ``(S, S̄)`` with the target inside ``S``
into a bound every local router must obey:

    Pr[X < t]  <=  ( t·η + Pr[(u~v) ∈ S] ) / Pr[u ~ v]

where η bounds the probability that a cut edge is a "doorway" to the
target through S.  This script estimates the certificate for the double
binary tree (S = the second tree, η = p^depth exactly), then overlays
the bound curve with the *measured* query CDF of two real local
routers: the bound must dominate, whatever local algorithm runs.

Run:  python examples/lower_bound_certificate.py
"""

from repro import (
    DirectedDFSRouter,
    DoubleBinaryTree,
    LocalBFSRouter,
    estimate_certificate,
    measure_complexity,
)
from repro.analysis.theory import double_tree_connection_probability
from repro.util.tables import render_table

DEPTH = 10
P = 0.78
SEED = 13
THRESHOLDS = [4, 16, 64, 256, 1024]


def main() -> None:
    tree = DoubleBinaryTree(DEPTH)
    x, y = tree.roots()
    second_tree = {v for v in tree.vertices() if v[0] in ("b", "leaf")}

    cert = estimate_certificate(
        tree, P, s=second_tree, source=x, target=y, trials=1500, seed=SEED
    )
    print(f"double tree depth={DEPTH}, p={P}  (threshold 1/sqrt(2)=0.707)")
    print(f"cut size              : {cert.cut_size} leaf edges")
    print(f"eta (empirical max)   : {cert.eta_max:.5f}")
    print(f"eta (exact, p^depth)  : {P ** DEPTH:.5f}")
    print(f"Pr[u ~ v] (empirical) : {cert.pr_uv:.3f}")
    print(
        "Pr[u ~ v] (exact GW)  : "
        f"{double_tree_connection_probability(P, DEPTH):.3f}"
    )
    print()

    measurements = {}
    for router in (DirectedDFSRouter(), LocalBFSRouter()):
        measurements[router.name] = measure_complexity(
            tree, p=P, router=router, pair=(x, y), trials=80, seed=SEED
        )

    rows = []
    for t in THRESHOLDS:
        row = {
            "t (probes)": t,
            "Lemma 5 bound on Pr[X<t]": round(cert.bound(t), 3),
        }
        for name, m in measurements.items():
            row[f"observed {name}"] = round(m.empirical_cdf([t])[0], 3)
        rows.append(row)
    print(render_table(rows, title="bound curve vs measured CDFs"))
    print()
    print("Every 'observed' column must stay below the bound column —")
    print("for these routers and for any other local algorithm: that is")
    print("what makes Lemma 5 a certificate rather than a benchmark.")
    print("Because eta = p^depth, the bound curve flattens exponentially")
    print("as the tree deepens: local routing cost ~ p^-n (Theorem 7).")


if __name__ == "__main__":
    main()
