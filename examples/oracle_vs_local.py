#!/usr/bin/env python3
"""Oracle vs local routing: an exponential gap, and a √n gap.

Section 5 of the paper contrasts two query models: *local* routers may
only probe edges touching the part of the network they have already
reached; *oracle* routers may probe anywhere.  Two showcases:

1. The double binary tree TT_n: any local router pays ≈ p^-n probes
   (Theorem 7) while the mirror-pair oracle router pays O(n)
   (Theorem 9) — an exponential separation.
2. The faulty complete graph G(n, c/n): local routing costs Θ(n²)
   (Theorem 10), bidirectional oracle routing Θ(n^1.5) (Theorem 11) —
   a clean √n separation.

Run:  python examples/oracle_vs_local.py
"""

from repro import (
    DirectedDFSRouter,
    DoubleBinaryTree,
    GnpBidirectionalRouter,
    GnpLocalRouter,
    GnpPercolation,
    MirrorPairOracleRouter,
    TablePercolation,
    connected,
)
from repro.util.rng import derive_seed
from repro.util.tables import render_table

SEED = 5
TRIALS = 15


def double_tree_showcase() -> None:
    p = 0.8  # > 1/sqrt(2) ~ 0.707, so the roots connect with prob > 0
    rows = []
    for depth in (4, 6, 8, 10):
        tree = DoubleBinaryTree(depth)
        x, y = tree.roots()
        totals = {"local": [0, 0], "oracle": [0, 0]}
        for t in range(TRIALS):
            faults = TablePercolation(tree, p, seed=derive_seed(SEED, depth, t))
            if not connected(faults, x, y):
                continue
            local = DirectedDFSRouter().route(faults, x, y)
            if local.success:
                totals["local"][0] += 1
                totals["local"][1] += local.queries
            oracle = MirrorPairOracleRouter().route(faults, x, y)
            if oracle.success:
                totals["oracle"][0] += 1
                totals["oracle"][1] += oracle.queries
        rows.append(
            {
                "depth": depth,
                "diameter": 2 * depth,
                "local probes": (
                    f"{totals['local'][1] / totals['local'][0]:.0f}"
                    if totals["local"][0]
                    else "-"
                ),
                "oracle probes": (
                    f"{totals['oracle'][1] / totals['oracle'][0]:.0f}"
                    if totals["oracle"][0]
                    else "-"
                ),
            }
        )
    print(render_table(rows, title=f"Double binary tree, p = {p}"))
    print("local probes grow like p^-n; oracle probes grow linearly.\n")


def gnp_showcase() -> None:
    c = 3.0
    rows = []
    for n in (200, 400, 800):
        totals = {"local": [0, 0], "oracle": [0, 0]}
        for t in range(6):
            faults = GnpPercolation(n=n, p=c / n, seed=derive_seed(SEED, n, t))
            u, v = faults.graph.canonical_pair()
            if not connected(faults, u, v):
                continue
            for name, router in (
                ("local", GnpLocalRouter()),
                ("oracle", GnpBidirectionalRouter()),
            ):
                result = router.route(faults, u, v)
                if result.success:
                    totals[name][0] += 1
                    totals[name][1] += result.queries
        row = {"n": n, "n^2": n * n, "n^1.5": int(n**1.5)}
        for name in ("local", "oracle"):
            ok, probes = totals[name]
            row[f"{name} probes"] = f"{probes / ok:.0f}" if ok else "-"
        rows.append(row)
    print(render_table(rows, title=f"G(n, c/n) with c = {c}"))
    print("local tracks n^2; bidirectional oracle tracks n^1.5 — the")
    print("paper's exactly-sqrt(n) separation.")


def main() -> None:
    double_tree_showcase()
    gnp_showcase()


if __name__ == "__main__":
    main()
