#!/usr/bin/env python3
"""Visualise the hypercube routing phase transition as an ASCII heat map.

For p = n^-alpha, sweep alpha and plot the fraction of the network's
edges a complete local router must probe (median over trials,
conditioned on connectivity).  Theorem 3 predicts a transition at
alpha = 1/2: below, a vanishing fraction; above, essentially the whole
reachable graph.

Run:  python examples/phase_transition_explorer.py
"""

from repro import Hypercube, WaypointRouter, measure_complexity
from repro.util.rng import derive_seed

N = 10
TRIALS = 10
SEED = 3
ALPHAS = [x / 20 for x in range(2, 19)]  # 0.10 .. 0.90
BAR_WIDTH = 44


def bar(fraction: float) -> str:
    filled = round(fraction * BAR_WIDTH)
    return "#" * filled + "." * (BAR_WIDTH - filled)


def main() -> None:
    graph = Hypercube(N)
    edges = graph.num_edges()
    router = WaypointRouter()
    print(
        f"hypercube n={N}: median fraction of {edges} edges probed by a "
        "complete local router"
    )
    print(f"(p = n^-alpha; giant component exists down to alpha = 1;")
    print(f" paper's routing transition at alpha = 0.5)")
    print()
    for alpha in ALPHAS:
        p = N**-alpha
        m = measure_complexity(
            graph,
            p=p,
            router=router,
            trials=TRIALS,
            seed=derive_seed(SEED, alpha),
        )
        if m.connected_trials == 0:
            print(f"alpha={alpha:4.2f}  p={p:5.3f}  (never connected)")
            continue
        frac = m.query_summary().median / edges
        marker = "  <-- alpha = 1/2" if abs(alpha - 0.5) < 0.024 else ""
        print(
            f"alpha={alpha:4.2f}  p={p:5.3f}  [{bar(frac)}] "
            f"{100 * frac:5.1f}%{marker}"
        )
    print()
    print("Expect a knee near the marked row: to the left routing is")
    print("cheap; to the right finding a path costs nearly as much as")
    print("probing the entire reachable network.")


if __name__ == "__main__":
    main()
