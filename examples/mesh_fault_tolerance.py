#!/usr/bin/env python3
"""Grid networks route around faults at linear cost — down to p_c.

A sensor grid / network-on-chip scenario: a 40×40 mesh whose links fail
independently.  Theorem 4 of the paper says that for *any* survival
probability above the percolation threshold (p_c = 1/2 for the square
lattice), a local algorithm finds a path between nodes at distance n
with expected O(n) probes — the constant degrades as p ↓ p_c, but the
linear law survives.

The script sweeps p and the distance, prints probes-per-hop, and shows
the collapse below p_c.

Run:  python examples/mesh_fault_tolerance.py
"""

from repro import Mesh, MeshWaypointRouter, TablePercolation, connected
from repro.percolation.thresholds import mesh_critical_probability
from repro.util.rng import derive_seed
from repro.util.tables import render_table

SIDE = 40
TRIALS = 10
SEED = 11


def main() -> None:
    grid = Mesh(2, SIDE)
    pc = mesh_critical_probability(2)
    print(f"2-D mesh {SIDE}x{SIDE}; bond percolation threshold p_c = {pc}")
    print()

    rows = []
    for p in (0.45, 0.55, 0.6, 0.7, 0.85):
        for distance in (10, 20, 40):
            pair = grid.centered_pair_at_distance(distance)
            total_queries = 0
            hits = 0
            conn = 0
            for t in range(TRIALS):
                faults = TablePercolation(
                    grid, p, seed=derive_seed(SEED, p, distance, t)
                )
                if not connected(faults, *pair):
                    continue
                conn += 1
                result = MeshWaypointRouter().route(faults, *pair)
                if result.success:
                    hits += 1
                    total_queries += result.queries
            rows.append(
                {
                    "p": p,
                    "distance": distance,
                    "connected": f"{conn}/{TRIALS}",
                    "probes/hop": (
                        f"{total_queries / hits / distance:.1f}" if hits else "-"
                    ),
                }
            )

    print(render_table(rows))
    print()
    print("Above p_c the probes-per-hop column is a constant that does not")
    print("grow with distance (Theorem 4's O(n) law); it shrinks toward 1")
    print("as p -> 1.  At p = 0.45 < p_c the endpoints are almost never in")
    print("the same component — routing is not merely expensive, it is")
    print("impossible.")


if __name__ == "__main__":
    main()
