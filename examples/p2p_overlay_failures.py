#!/usr/bin/env python3
"""P2P overlay under churn: when does exact-match routing stop working?

The paper's introduction motivates its hypercube result with structured
P2P overlays (Chord, Pastry, skip graphs all embed hypercube-like
geometry): if the overlay suffers many link failures, *greedy/routing-
based exact search* fails long before the network falls apart, while
flooding-style search (here: exhaustive BFS) still finds data.

This script simulates a 2^12-node hypercubic overlay across failure
rates and reports, per failure level:

* how often the source and the key-owner are even connected,
* how often greedy routing (strictly distance-decreasing, the DHT
  primitive) succeeds,
* the probe cost of waypoint routing vs flooding when they succeed.

Run:  python examples/p2p_overlay_failures.py
"""

from repro import (
    GreedyRouter,
    HashPercolation,
    Hypercube,
    LocalBFSRouter,
    WaypointRouter,
    connected,
)
from repro.util.rng import derive_seed
from repro.util.tables import render_table

N = 12
TRIALS = 12
SEED = 7


def main() -> None:
    overlay = Hypercube(N)
    source, key_owner = overlay.canonical_pair()
    routers = {
        "greedy (DHT hop)": GreedyRouter(),
        "waypoint repair": WaypointRouter(),
        "flooding (BFS)": LocalBFSRouter(),
    }

    rows = []
    for survive_prob in (0.9, 0.7, 0.5, 0.35, 0.25):
        stats = {name: [0, 0] for name in routers}  # successes, probes
        conn = 0
        for t in range(TRIALS):
            faults = HashPercolation(
                overlay, p=survive_prob, seed=derive_seed(SEED, survive_prob, t)
            )
            if not connected(faults, source, key_owner):
                continue
            conn += 1
            for name, router in routers.items():
                result = router.route(faults, source, key_owner)
                if result.success:
                    stats[name][0] += 1
                    stats[name][1] += result.queries
        row = {
            "link up-prob": survive_prob,
            "connected": f"{conn}/{TRIALS}",
        }
        for name, (ok, probes) in stats.items():
            rate = f"{ok}/{conn}" if conn else "-"
            cost = f"{probes / ok:.0f}" if ok else "-"
            row[f"{name} ok"] = rate
            row[f"{name} probes"] = cost
        rows.append(row)

    print(render_table(rows, title=f"Hypercubic overlay, n={N} "
                                   f"({overlay.num_vertices()} peers)"))
    print()
    print("Reading: as link survival falls toward n^-1/2 =",
          f"{N ** -0.5:.2f}, the probe cost of routing-based exact search",
          "(waypoint repair) explodes toward the flooding cost — the")
    print("paper's Theorem 3 phase transition: the overlay is still")
    print("connected, paths are still short, but *finding* them costs as")
    print("much as querying the whole network.  Greedy stays cheap when")
    print("it succeeds, but it is incomplete: below the transition its")
    print("success is luck, not guarantee.")


if __name__ == "__main__":
    main()
