#!/usr/bin/env python3
"""Quickstart: route a message through a faulty hypercube.

Builds a 10-dimensional hypercube, fails each link independently, and
compares what three algorithms pay (in edge probes) to get a message
from one corner to the opposite corner — the basic object of study of
*Routing Complexity of Faulty Networks* (Angel–Benjamini–Ofek–Wieder,
PODC 2005).

Run:  python examples/quickstart.py

To go from one route to a full experiment sweep, use the CLI — and add
``--workers N`` (or set ``REPRO_WORKERS=N``) to spread the Monte-Carlo
trials over N processes; results are bit-identical for any N::

    repro run E1 --scale small --seed 0 --workers 4
"""

from repro import (
    HashPercolation,
    Hypercube,
    LocalBFSRouter,
    MeshWaypointRouter,  # noqa: F401  (imported to show the API surface)
    WaypointRouter,
    connected,
)

N = 10  # hypercube dimension: 2^10 = 1024 servers
P = 0.6  # each link survives with probability 60%
SEED = 42


def main() -> None:
    network = Hypercube(N)
    faults = HashPercolation(network, p=P, seed=SEED)
    source, target = network.canonical_pair()

    print(f"network : {network.name} "
          f"({network.num_vertices()} nodes, {network.num_edges()} links)")
    print(f"faults  : each link up with p = {P}")
    print(f"route   : {source:0{N}b} -> {target:0{N}b} "
          f"(distance {network.distance(source, target)})")
    print(f"u ~ v ? : {connected(faults, source, target)}")
    print()

    for router in (WaypointRouter(), LocalBFSRouter()):
        result = router.route(faults, source, target)
        if result.success:
            print(
                f"{router.name:<12} found a {result.path_length}-hop path "
                f"using {result.queries} probes"
            )
        else:
            print(f"{router.name:<12} failed ({result.failure})")

    print()
    print("The waypoint router follows a geodesic of the fault-free cube")
    print("and BFS-patches around failures — the paper's Theorem 3(ii)")
    print("algorithm.  Exhaustive BFS always works but probes a large")
    print("fraction of the network.")


if __name__ == "__main__":
    main()
