"""Bench E10 — G(n, c/n) oracle routing is Theta(n^1.5) (Theorem 11).

Regenerates the queries-vs-n series for the bidirectional router;
queries/n^1.5 roughly flat and the local/oracle speedup near sqrt(n).
"""

import math
import os

# the sqrt(n) speedup is weak at tiny n; stay lenient there
_MIN_SPEEDUP = (
    1.2 if os.environ.get("REPRO_BENCH_SCALE", "small") == "tiny" else 2
)


def test_e10_gnp_oracle(run_experiment):
    table = run_experiment("E10")
    assert len(table) > 0

    rows = sorted(table.rows, key=lambda r: r["n"])
    ratios = [r["queries_over_n15"] for r in rows]
    assert max(ratios) < 6 * min(ratios), ratios

    # sub-quadratic: doubling n must not quadruple queries
    if len(rows) >= 2:
        n_ratio = rows[-1]["n"] / rows[0]["n"]
        q_ratio = rows[-1]["mean_queries"] / rows[0]["mean_queries"]
        assert q_ratio < n_ratio**2

    # where measured, the speedup over local routing is substantial
    speedups = [
        r["speedup_vs_local"]
        for r in rows
        if not math.isnan(r["speedup_vs_local"])
    ]
    for s in speedups:
        assert s > _MIN_SPEEDUP, speedups
