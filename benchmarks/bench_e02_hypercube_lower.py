"""Bench E2 — hypercube local lower bound (Theorem 3(i) / Lemma 5).

Regenerates the certificate table: empirical eta vs the path-counting
bound, and router CDF points against the Lemma 5 curve.
"""

import math


def test_e02_hypercube_lower(run_experiment):
    table = run_experiment("E2")
    assert len(table) > 0

    for row in table.rows:
        # The paper's series bound must dominate the Monte-Carlo eta
        # (up to sampling noise on the empirical side).
        if row["eta_theory"] < 1.0:
            assert row["eta_empirical"] <= row["eta_theory"] + 0.1, row
        # Lemma 5: observed CDF below the bound.
        if not math.isnan(row["observed_cdf_at_t"]):
            assert row["observed_cdf_at_t"] <= row["bound_at_t"] + 0.35, row
