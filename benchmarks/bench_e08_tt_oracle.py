"""Bench E8 — double-tree oracle routing is linear (Theorem 9).

Regenerates the oracle-queries-vs-depth series; queries/depth must stay
bounded while E7's local costs explode.
"""


def test_e08_tt_oracle(run_experiment):
    table = run_experiment("E8")
    assert len(table) > 0

    for p in sorted({r["p"] for r in table.rows}):
        rows = sorted(table.filtered(p=p), key=lambda r: r["depth"])
        if len(rows) < 2:
            continue
        per_depth = [r["queries_per_depth"] for r in rows]
        # linear law: the per-depth constant must not drift by > 3x
        assert max(per_depth) < 3 * min(per_depth) + 3, (p, per_depth)

    # success probability stays bounded away from zero at any depth
    assert min(table.column("mirror_success_rate")) > 0.1
