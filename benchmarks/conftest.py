"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one experiment from the registry in
``repro.experiments.registry`` — the experiment index that EXPERIMENTS.md
records claim by claim (the paper has no numbered tables/figures; the
experiments stand in for them).  Results are printed and persisted under
``results/`` so the series survive pytest's output capture.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — ``tiny`` / ``small`` (default) / ``medium``.
* ``REPRO_BENCH_SEED`` — master seed (default 0).
* ``REPRO_WORKERS`` — worker processes for trial execution (default 1).
  Results are identical for any worker count; see :mod:`repro.runtime`.
* ``REPRO_CHUNKSIZE`` — specs per parallel work unit (default: ~4
  chunks per worker).  Likewise result-invariant.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.registry import get_experiment
from repro.runtime import make_runner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture
def run_experiment(benchmark):
    """Run a registered experiment under pytest-benchmark, persist output.

    Returns the ResultTable so the calling bench can assert its claim.
    """
    runner = make_runner()  # $REPRO_WORKERS, else serial

    def _run(experiment_id: str):
        spec = get_experiment(experiment_id)
        table = benchmark.pedantic(
            lambda: spec(scale=SCALE, seed=SEED, runner=runner),
            rounds=1,
            iterations=1,
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{table.experiment_id.lower()}.txt"
        path.write_text(table.render() + "\n", encoding="utf-8")
        table.to_csv(RESULTS_DIR)
        print()
        print(table.render())
        return table

    return _run
