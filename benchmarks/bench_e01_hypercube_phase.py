"""Bench E1 — hypercube routing phase transition (Theorem 3).

Regenerates the alpha-sweep series: median probes (as a fraction of all
edges) of complete local routers at p = n^-alpha.  Paper shape: cheap
for alpha < 1/2, near-exhaustive for alpha > 1/2.
"""

import math
import os

# the separation factor grows with n; stay lenient at tiny scale
_FACTOR = 1.5 if os.environ.get("REPRO_BENCH_SCALE", "small") == "tiny" else 3


def test_e01_hypercube_phase(run_experiment):
    table = run_experiment("E1")
    assert len(table) > 0

    # The transition: the waypoint router's probed fraction for the
    # largest alpha must dominate the smallest alpha by a clear factor.
    rows = [
        r
        for r in table.filtered(router="waypoint")
        if r["connected_trials"] and not math.isnan(r["frac_edges_probed"])
    ]
    assert rows, "no connected measurements"
    by_alpha = sorted(rows, key=lambda r: r["alpha"])
    cheap = by_alpha[0]["frac_edges_probed"]
    expensive = by_alpha[-1]["frac_edges_probed"]
    assert expensive > _FACTOR * cheap, (cheap, expensive)
