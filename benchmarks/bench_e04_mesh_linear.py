"""Bench E4 — mesh O(n) routing above p_c (Theorem 4).

Regenerates the queries-vs-distance series per (d, p): linear growth,
constant queries-per-distance.
"""


def test_e04_mesh_linear(run_experiment):
    table = run_experiment("E4")
    assert len(table) > 0

    # Linear law: per (d, p), queries/distance must not drift upward by
    # more than a small factor across the distance sweep.
    keys = {(r["d"], r["p"]) for r in table.rows}
    checked = 0
    for d, p in keys:
        rows = sorted(table.filtered(d=d, p=p), key=lambda r: r["n"])
        if len(rows) < 2:
            continue
        first = rows[0]["queries_per_distance"]
        last = rows[-1]["queries_per_distance"]
        assert last < 4 * first + 5, (d, p, first, last)
        checked += 1
    assert checked > 0
