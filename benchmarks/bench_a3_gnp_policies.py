"""Bench A3 — G(n, p) growth-policy ablation (Theorems 10-11 design).

Bidirectional growth is the win; oracle access alone is not.
"""


def test_a3_gnp_policies(run_experiment):
    table = run_experiment("A3")
    assert len(table) > 0

    for n in sorted({r["n"] for r in table.rows}):
        rows = {r["router"]: r for r in table.filtered(n=n)}
        bidi = rows.get("gnp-bidirectional")
        uni = rows.get("gnp-unidirectional-oracle")
        if bidi:
            assert bidi["vs_local"] < 0.8, (n, bidi)
        if uni:
            assert 0.5 < uni["vs_local"] < 2.0, (n, uni)
