"""Bench E5/E5b — mesh behaviour across p_c + chemical distance (Lemma 8).

Regenerates the p-sweep across the 2-D threshold and the D(x,y)/d(x,y)
statistics in the supercritical phase.
"""

import math


def test_e05_mesh_pc(run_experiment):
    table = run_experiment("E5")
    routing = table.filtered(section="routing")
    chemical = table.filtered(section="chemical")
    assert routing and chemical

    # Connectivity collapses below p_c and saturates above.
    lo = [r for r in routing if r["p"] < 0.45]
    hi = [r for r in routing if r["p"] > 0.6]
    if lo and hi:
        assert max(r["pr_connected"] for r in lo) <= min(
            r["pr_connected"] for r in hi
        ) + 0.2

    # Chemical distance: ratio >= 1 always, decreasing in p.
    by_p = sorted(chemical, key=lambda r: r["p"])
    for row in by_p:
        assert row["ratio_mean"] >= 1.0 - 1e-9
    if len(by_p) >= 2:
        assert by_p[-1]["ratio_mean"] <= by_p[0]["ratio_mean"] + 0.05

    # Exponential tail: positive fitted rate wherever the fit exists.
    rates = [r["tail_rate"] for r in chemical if not math.isnan(r["tail_rate"])]
    for rate in rates:
        assert rate > 0
