"""Bench E15–E17 — structured fault models on real fabrics (extension).

The headline claims: on a fat-tree at equal nominal survival, fault
*structure* orders routing difficulty (E15); at fixed epicenter
density, fault *correlation* alone degrades connectivity (E16); and at
equal expected fault mass, adversarial *placement* severs what random
damage cannot (E17).
"""

import math


def _nanmax(values):
    finite = [v for v in values if not math.isnan(v)]
    return max(finite) if finite else float("nan")


def test_e15_fault_models(run_experiment):
    table = run_experiment("E15")
    assert len(table) > 0
    trials = max(r["connected_trials"] for r in table.rows)

    for p in sorted({r["p"] for r in table.rows}):
        rows = {r["fault_model"]: r for r in table.filtered(p=p)}
        assert set(rows) == {"iid", "node", "correlated", "adversarial"}
        # Clustering the node-fault mass only hurts: the correlated
        # arm (same epicenter density as the node arm's failure rate,
        # grown into balls) never connects the pinned pair more often
        # than either scattered model (small finite-trial slack).
        assert (
            rows["correlated"]["connected_trials"]
            <= min(
                rows["iid"]["connected_trials"],
                rows["node"]["connected_trials"],
            )
            + 1
        ), p
        # The adversary forces detours: whenever it leaves the pair
        # connected in at least half the trials, its median probe
        # count runs at or above the i.i.d. arm's.
        adv = rows["adversarial"]
        if adv["connected_trials"] >= trials / 2 and not math.isnan(
            rows["iid"]["median_queries"]
        ):
            assert (
                adv["median_queries"] >= rows["iid"]["median_queries"]
            ), p

    # Near full survival the adversary (one removal short of the
    # uplink cut) probes strictly more than every oblivious model.
    top_p = max(r["p"] for r in table.rows)
    rows = {r["fault_model"]: r for r in table.filtered(p=top_p)}
    oblivious = _nanmax(
        rows[m]["median_queries"] for m in ("iid", "node", "correlated")
    )
    adversarial = rows["adversarial"]["median_queries"]
    if not math.isnan(adversarial) and not math.isnan(oblivious):
        assert adversarial >= oblivious


def test_e16_correlated_outages(run_experiment):
    table = run_experiment("E16")
    assert len(table) > 0

    rows = sorted(table.rows, key=lambda r: r["spread"])
    assert rows[0]["spread"] == 0.0  # the i.i.d. baseline ran
    # Coupled radii: realised fault mass grows with spread...
    masses = [r["mean_dead_frac"] for r in rows]
    assert masses == sorted(masses)
    # ...and connectivity of the probe pair can only degrade.
    assert rows[-1]["connected_trials"] <= rows[0]["connected_trials"]


def test_e17_adversarial_budget(run_experiment):
    table = run_experiment("E17")
    assert len(table) > 0

    budgets = sorted({r["budget"] for r in table.rows})
    by_arm = {
        (r["budget"], r["placement"]): r for r in table.rows
    }
    k = table.rows[0]["k"]
    cut = k // 2
    for b in budgets:
        adv = by_arm[(b, "adversarial")]
        rnd = by_arm[(b, "random")]
        # Matched expected mass, worse placement: the adversary never
        # helps connectivity.
        assert adv["connected_trials"] <= rnd["connected_trials"] + 1
        if b >= cut:
            # The uplink cut: severed with certainty...
            assert adv["connected_trials"] == 0
            # ...while the same expected damage placed obliviously
            # leaves the pair connected in most trials.
            assert rnd["connected_trials"] > 0
