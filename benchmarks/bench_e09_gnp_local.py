"""Bench E9 — G(n, c/n) local routing is quadratic (Theorem 10).

Regenerates the queries-vs-n series; queries/n^2 roughly flat.
"""


def test_e09_gnp_local(run_experiment):
    table = run_experiment("E9")
    assert len(table) > 0

    for c in sorted({r["c"] for r in table.rows}):
        rows = sorted(table.filtered(c=c), key=lambda r: r["n"])
        if len(rows) < 2:
            continue
        ratios = [r["queries_over_n2"] for r in rows]
        # Θ(n²): normalised cost within a constant band
        assert max(ratios) < 6 * min(ratios), (c, ratios)
        # and genuinely super-linear growth
        n_ratio = rows[-1]["n"] / rows[0]["n"]
        q_ratio = rows[-1]["mean_queries"] / rows[0]["mean_queries"]
        assert q_ratio > n_ratio, (c, q_ratio, n_ratio)
