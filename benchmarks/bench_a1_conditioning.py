"""Bench A1 — conditioning-method ablation.

Exact (cluster BFS) vs router-based conditioning must agree trial-by-
trial for complete routers.
"""


def test_a1_conditioning(run_experiment):
    table = run_experiment("A1")
    assert len(table) > 0
    assert all(table.column("verdicts_agree"))

    # identical conditioned trials → identical mean queries per graph
    for graph in sorted({r["graph"] for r in table.rows}):
        rows = table.filtered(graph=graph)
        means = {r["mode"]: r["mean_queries"] for r in rows}
        if "exact" in means and "router" in means:
            a, b = means["exact"], means["router"]
            if a == a and b == b:  # both non-NaN
                assert abs(a - b) < 1e-9
