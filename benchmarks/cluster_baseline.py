#!/usr/bin/env python3
"""Record the cluster-vs-process baseline (BENCH_runtime.json "cluster").

Runs one experiment three ways — ``SerialRunner`` (the reference),
``ProcessPoolRunner`` and a self-managed ``ClusterRunner`` (localhost
``repro worker serve`` nodes, the TCP path end-to-end) — verifies all
three tables render identically, and folds the timings into
``results/BENCH_runtime.json`` under ``"cluster"`` so the runtime perf
trajectory stays in one file.  On localhost the cluster can only add
overhead over the pool (same cores, plus socket framing); the number
this records is that overhead, the price of the seam that scales past
one machine.

It also records the **node-pool** baseline (``"node_pool"``): one node
run flat (``--node-workers 1``, the pre-pool execution model) versus
the same node with an execution pool (``--node-workers N``), both
driven through a pipelined coordinator.  Two speedups are measured:

* ``experiment_speedup`` — the CPU-bound experiment; expect about
  ``min(node_workers, cores)`` (1.0 on a single-core host, where
  CPU-bound trials cannot overlap productively);
* ``blocking_speedup`` (the headline ``node_pool_speedup``) — a batch
  of blocking trials, which isolates the scheduling property the pool
  adds (concurrent trial execution within one node) from how many
  cores the host happens to have.

Run:  PYTHONPATH=src python benchmarks/cluster_baseline.py
      (optionally --scale tiny|small|medium --nodes N --experiment E1
       --node-workers N)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.registry import get_experiment
from repro.experiments.spec import SCALES
from repro.runtime import ClusterRunner, ProcessPoolRunner, SerialRunner
from repro.runtime import testing as kit
from repro.runtime.trial import TrialSpec

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

DEFAULT_EXPERIMENT = "E1"

#: Blocking-batch shape for the scheduling-concurrency measurement.
BLOCKING_TRIALS = 12
BLOCKING_SECONDS = 0.15


def _time_run(spec, scale, seed, runner):
    start = time.perf_counter()
    table = spec(scale=scale, seed=seed, runner=runner)
    return time.perf_counter() - start, table


def _blocking_specs():
    return [
        TrialSpec(
            key=("nap", i), fn=kit.sleep_return, args=(BLOCKING_SECONDS, i)
        )
        for i in range(BLOCKING_TRIALS)
    ]


def _time_node(spec, scale, seed, node_workers):
    """Warm one single-node cluster; time the experiment + a blocking
    batch on it.  Returns (experiment_seconds, blocking_seconds, table).
    """
    with kit.local_nodes(1, node_workers=node_workers) as addresses:
        with ClusterRunner(
            nodes=addresses,
            chunksize=1,
            pipeline_depth=max(4, 2 * node_workers),
        ) as runner:
            runner.run_values(kit.square_specs(8))  # warm connection+pool
            experiment_s, table = _time_run(spec, scale, seed, runner)
            start = time.perf_counter()
            runner.run(_blocking_specs())
            blocking_s = time.perf_counter() - start
    return experiment_s, blocking_s, table


def _record_node_pool(spec, scale, seed, node_workers) -> dict:
    """Flat node (pool of 1) versus pooled node (pool of N)."""
    flat_exp_s, flat_block_s, flat_table = _time_node(spec, scale, seed, 1)
    pool_exp_s, pool_block_s, pool_table = _time_node(
        spec, scale, seed, node_workers
    )
    if flat_table.render() != pool_table.render():
        raise AssertionError(
            "flat-node and pooled-node outputs differ (determinism bug)"
        )
    blocking_speedup = round(flat_block_s / pool_block_s, 3)
    return {
        "experiment": spec.experiment_id,
        "scale": scale,
        "node_workers": node_workers,
        "flat_experiment_seconds": round(flat_exp_s, 3),
        "pooled_experiment_seconds": round(pool_exp_s, 3),
        "experiment_speedup": round(flat_exp_s / pool_exp_s, 3),
        "blocking_trials": BLOCKING_TRIALS,
        "blocking_trial_seconds": BLOCKING_SECONDS,
        "flat_blocking_seconds": round(flat_block_s, 3),
        "pooled_blocking_seconds": round(pool_block_s, 3),
        "blocking_speedup": blocking_speedup,
        "node_pool_speedup": blocking_speedup,
        "identical_output": True,
        "note": (
            "one warm localhost node, pipelined coordinator; "
            "node_pool_speedup is the blocking-batch ratio, which "
            "isolates the pool's scheduling concurrency (trials "
            "overlapping within one node) from the host's core count; "
            "experiment_speedup is the CPU-bound ratio and tops out "
            "at min(node_workers, cores)"
        ),
    }


def record(
    scale: str = "small",
    seed: int = 0,
    nodes: int = 2,
    experiment_id: str = DEFAULT_EXPERIMENT,
    out: Path | None = None,
    node_workers: int = 2,
) -> dict:
    """Measure serial/process/cluster, verify parity, update the JSON."""
    # The recorded numbers are defined as "self-managed localhost
    # nodes, explicit knobs": an inherited REPRO_CLUSTER_NODES (or
    # backend/worker/chunk vars) would silently measure something else
    # under the same label, corrupting the perf trajectory.  The vars
    # are restored afterwards so in-process callers keep their config.
    scrubbed = {
        var: os.environ.pop(var, None)
        for var in (
            "REPRO_CLUSTER_NODES",
            "REPRO_BACKEND",
            "REPRO_WORKERS",
            "REPRO_CHUNKSIZE",
            "REPRO_NODE_WORKERS",
            "REPRO_PIPELINE_DEPTH",
            "REPRO_HEARTBEAT",
            "REPRO_NODE_CACHE",
        )
    }
    try:
        return _record_scrubbed(
            scale, seed, nodes, experiment_id, out, node_workers
        )
    finally:
        for var, value in scrubbed.items():
            if value is not None:
                os.environ[var] = value


def _record_scrubbed(
    scale: str,
    seed: int,
    nodes: int,
    experiment_id: str,
    out: Path | None,
    node_workers: int,
) -> dict:
    spec = get_experiment(experiment_id)
    serial_s, serial_table = _time_run(spec, scale, seed, SerialRunner())
    with ProcessPoolRunner(workers=nodes) as pool:
        process_s, process_table = _time_run(spec, scale, seed, pool)
    with ClusterRunner(workers=nodes) as cluster:
        # The first batch pays node spawn + connect; time it separately
        # from a warm pass so the steady-state number is visible.
        cold_s, cluster_table = _time_run(spec, scale, seed, cluster)
        warm_s, warm_table = _time_run(spec, scale, seed, cluster)
    if not (
        serial_table.render()
        == process_table.render()
        == cluster_table.render()
        == warm_table.render()
    ):
        raise AssertionError(
            f"{experiment_id}: backend outputs differ (determinism bug)"
        )
    section = {
        "source": "benchmarks/cluster_baseline.py",
        "experiment": experiment_id,
        "scale": scale,
        "seed": seed,
        "nodes": nodes,
        "serial_seconds": round(serial_s, 3),
        "process_seconds": round(process_s, 3),
        "cluster_cold_seconds": round(cold_s, 3),
        "cluster_warm_seconds": round(warm_s, 3),
        "cluster_overhead_vs_process": round(warm_s / process_s, 3),
        "identical_output": True,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "localhost worker nodes share the machine with the "
            "coordinator, so overhead_vs_process isolates the TCP "
            "protocol cost; cold includes node spawn + connect, warm "
            "reuses the persistent connections"
        ),
    }
    node_pool = _record_node_pool(spec, scale, seed, node_workers)
    section["node_pool"] = node_pool
    out = out or RESULTS_DIR / "BENCH_runtime.json"
    out.parent.mkdir(exist_ok=True)
    if out.exists():
        baseline = json.loads(out.read_text(encoding="utf-8"))
    else:
        baseline = {"benchmark": "trial-runner serial vs parallel wall-clock"}
    baseline["cluster"] = section
    out.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(
        f"{experiment_id} ({scale}): serial {serial_s:.2f}s, "
        f"{nodes}-worker pool {process_s:.2f}s, {nodes}-node cluster "
        f"cold {cold_s:.2f}s / warm {warm_s:.2f}s "
        f"({section['cluster_overhead_vs_process']:.2f}x vs pool)"
    )
    print(
        f"node pool (1 node, --node-workers {node_workers} vs flat): "
        f"blocking {node_pool['flat_blocking_seconds']:.2f}s -> "
        f"{node_pool['pooled_blocking_seconds']:.2f}s "
        f"({node_pool['node_pool_speedup']:.2f}x), cpu-bound "
        f"{node_pool['flat_experiment_seconds']:.2f}s -> "
        f"{node_pool['pooled_experiment_seconds']:.2f}s "
        f"({node_pool['experiment_speedup']:.2f}x)"
    )
    print(f"updated {out} (cluster + node_pool sections)")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--experiment", default=DEFAULT_EXPERIMENT)
    parser.add_argument(
        "--node-workers",
        type=int,
        default=2,
        help="pool size for the pooled side of the node-pool baseline",
    )
    args = parser.parse_args(argv)
    record(
        scale=args.scale,
        seed=args.seed,
        nodes=args.nodes,
        experiment_id=args.experiment.strip().upper(),
        node_workers=args.node_workers,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
