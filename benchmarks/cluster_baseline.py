#!/usr/bin/env python3
"""Record the cluster-vs-process baseline (BENCH_runtime.json "cluster").

Runs one experiment three ways — ``SerialRunner`` (the reference),
``ProcessPoolRunner`` and a self-managed ``ClusterRunner`` (localhost
``repro worker serve`` nodes, the TCP path end-to-end) — verifies all
three tables render identically, and folds the timings into
``results/BENCH_runtime.json`` under ``"cluster"`` so the runtime perf
trajectory stays in one file.  On localhost the cluster can only add
overhead over the pool (same cores, plus socket framing); the number
this records is that overhead, the price of the seam that scales past
one machine.

Run:  PYTHONPATH=src python benchmarks/cluster_baseline.py
      (optionally --scale tiny|small|medium --nodes N --experiment E1)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.registry import get_experiment
from repro.experiments.spec import SCALES
from repro.runtime import ClusterRunner, ProcessPoolRunner, SerialRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

DEFAULT_EXPERIMENT = "E1"


def _time_run(spec, scale, seed, runner):
    start = time.perf_counter()
    table = spec(scale=scale, seed=seed, runner=runner)
    return time.perf_counter() - start, table


def record(
    scale: str = "small",
    seed: int = 0,
    nodes: int = 2,
    experiment_id: str = DEFAULT_EXPERIMENT,
    out: Path | None = None,
) -> dict:
    """Measure serial/process/cluster, verify parity, update the JSON."""
    # The recorded numbers are defined as "self-managed localhost
    # nodes, explicit knobs": an inherited REPRO_CLUSTER_NODES (or
    # backend/worker/chunk vars) would silently measure something else
    # under the same label, corrupting the perf trajectory.  The vars
    # are restored afterwards so in-process callers keep their config.
    scrubbed = {
        var: os.environ.pop(var, None)
        for var in (
            "REPRO_CLUSTER_NODES",
            "REPRO_BACKEND",
            "REPRO_WORKERS",
            "REPRO_CHUNKSIZE",
        )
    }
    try:
        return _record_scrubbed(scale, seed, nodes, experiment_id, out)
    finally:
        for var, value in scrubbed.items():
            if value is not None:
                os.environ[var] = value


def _record_scrubbed(
    scale: str,
    seed: int,
    nodes: int,
    experiment_id: str,
    out: Path | None,
) -> dict:
    spec = get_experiment(experiment_id)
    serial_s, serial_table = _time_run(spec, scale, seed, SerialRunner())
    with ProcessPoolRunner(workers=nodes) as pool:
        process_s, process_table = _time_run(spec, scale, seed, pool)
    with ClusterRunner(workers=nodes) as cluster:
        # The first batch pays node spawn + connect; time it separately
        # from a warm pass so the steady-state number is visible.
        cold_s, cluster_table = _time_run(spec, scale, seed, cluster)
        warm_s, warm_table = _time_run(spec, scale, seed, cluster)
    if not (
        serial_table.render()
        == process_table.render()
        == cluster_table.render()
        == warm_table.render()
    ):
        raise AssertionError(
            f"{experiment_id}: backend outputs differ (determinism bug)"
        )
    section = {
        "source": "benchmarks/cluster_baseline.py",
        "experiment": experiment_id,
        "scale": scale,
        "seed": seed,
        "nodes": nodes,
        "serial_seconds": round(serial_s, 3),
        "process_seconds": round(process_s, 3),
        "cluster_cold_seconds": round(cold_s, 3),
        "cluster_warm_seconds": round(warm_s, 3),
        "cluster_overhead_vs_process": round(warm_s / process_s, 3),
        "identical_output": True,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "localhost worker nodes share the machine with the "
            "coordinator, so overhead_vs_process isolates the TCP "
            "protocol cost; cold includes node spawn + connect, warm "
            "reuses the persistent connections"
        ),
    }
    out = out or RESULTS_DIR / "BENCH_runtime.json"
    out.parent.mkdir(exist_ok=True)
    if out.exists():
        baseline = json.loads(out.read_text(encoding="utf-8"))
    else:
        baseline = {"benchmark": "trial-runner serial vs parallel wall-clock"}
    baseline["cluster"] = section
    out.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(
        f"{experiment_id} ({scale}): serial {serial_s:.2f}s, "
        f"{nodes}-worker pool {process_s:.2f}s, {nodes}-node cluster "
        f"cold {cold_s:.2f}s / warm {warm_s:.2f}s "
        f"({section['cluster_overhead_vs_process']:.2f}x vs pool)"
    )
    print(f"updated {out} (cluster section)")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--experiment", default=DEFAULT_EXPERIMENT)
    args = parser.parse_args(argv)
    record(
        scale=args.scale,
        seed=args.seed,
        nodes=args.nodes,
        experiment_id=args.experiment.strip().upper(),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
