"""Bench A4 — mesh vs torus boundary ablation (Theorem 4 methodology).

The O(n) routing law must not depend on boundary conditions.
"""


def test_a4_boundary(run_experiment):
    table = run_experiment("A4")
    assert len(table) > 0

    for p in sorted({r["p"] for r in table.rows}):
        for n in sorted({r["n"] for r in table.rows}):
            rows = {
                r["boundary"]: r for r in table.filtered(p=p, n=n)
            }
            mesh, torus = rows.get("mesh"), rows.get("torus")
            if mesh and torus:
                ratio = (
                    mesh["queries_per_distance"]
                    / torus["queries_per_distance"]
                )
                assert 1 / 4 < ratio < 4, (p, n, ratio)
