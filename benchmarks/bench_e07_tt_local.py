"""Bench E7 — double-tree local routing is exponential (Theorem 7).

Regenerates the mean-queries-vs-depth series; cost must track p^-depth.
"""


def test_e07_tt_local(run_experiment):
    table = run_experiment("E7")
    assert len(table) > 0

    for p in sorted({r["p"] for r in table.rows}):
        for router in sorted({r["router"] for r in table.rows}):
            rows = sorted(
                table.filtered(p=p, router=router), key=lambda r: r["depth"]
            )
            if len(rows) < 2:
                continue
            first, last = rows[0], rows[-1]
            # super-linear growth in depth (exponential at scale; keep
            # the bench assertion robust at small depth)
            depth_ratio = last["depth"] / first["depth"]
            q_ratio = last["mean_queries"] / first["mean_queries"]
            assert q_ratio > depth_ratio, (p, router, q_ratio)
