#!/usr/bin/env python3
"""Load-test the experiment service (BENCH_serve.json).

Boots a real :class:`~repro.serve.http.ExperimentService` in-process,
then drives it with N concurrent clients issuing a mixed job stream —
repeats of a small set of (experiment, seed) combinations, so some
requests are cache misses that compute and the rest are hits served in
O(lookup).  Records submit→table latency per request (p50/p99), the
hit/miss split, and the cache counters into
``results/BENCH_serve.json``, preserving sections other benchmarks may
have written there.

Run:  PYTHONPATH=src python benchmarks/serve_baseline.py
      (optionally --scale tiny|small --clients N --requests N)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import threading
import time
from pathlib import Path

from repro.serve.testing import (
    get_json,
    request,
    start_service,
    submit_job,
    wait_for_job,
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: The job mix: repeats of few keys → most requests after warm-up hit.
DEFAULT_EXPERIMENTS = ("E1", "E11")
DEFAULT_SEEDS = (0, 1)


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _client(service, jobs, latencies, hits, errors, lock):
    while True:
        with lock:
            if not jobs:
                return
            experiment, seed, scale = jobs.pop()
        start = time.perf_counter()
        try:
            snap = submit_job(
                service, experiment, scale=scale, seed=seed
            )
            done = wait_for_job(service, snap["job_id"])
            status, _ = request(
                service, "GET", f"/jobs/{done['job_id']}/table"
            )
            elapsed = time.perf_counter() - start
            if done["state"] != "done" or status != 200:
                raise AssertionError(
                    f"{experiment} seed={seed}: state={done['state']} "
                    f"table={status}"
                )
        except Exception as exc:
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")
            return
        with lock:
            latencies.append(elapsed)
            if done["cached"]:
                hits.append(done["job_id"])


def record(
    scale: str = "tiny",
    clients: int = 4,
    requests: int = 24,
    experiment_ids=DEFAULT_EXPERIMENTS,
    seeds=DEFAULT_SEEDS,
    out: Path | None = None,
) -> dict:
    """Run the mixed-workload campaign and write the baseline JSON.

    ``requests`` jobs cycle over ``len(experiment_ids) * len(seeds)``
    distinct keys, so the first pass over each key misses (computes
    once — in-flight duplicates coalesce onto the computing job) and
    every later repeat is a pure cache hit; with the defaults 4
    computations serve 24 requests.
    """
    keys = [
        (experiment, seed)
        for experiment in experiment_ids
        for seed in seeds
    ]
    jobs = [
        (*keys[i % len(keys)], scale) for i in range(requests)
    ]
    latencies: list[float] = []
    hits: list[str] = []
    errors: list[str] = []
    lock = threading.Lock()

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        service = start_service(backend="serial", cache_dir=tmp)
        try:
            start = time.perf_counter()
            threads = [
                threading.Thread(
                    target=_client,
                    args=(service, jobs, latencies, hits, errors, lock),
                )
                for _ in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
            if errors:
                raise AssertionError(
                    f"{len(errors)} client error(s): {errors[0]}"
                )
            cache_stats = get_json(service, "/cache/stats")
            health = get_json(service, "/healthz")
        finally:
            service.stop()

    served = len(latencies)
    baseline = {
        "benchmark": (
            "experiment service under concurrent clients, mixed "
            "cache hit/miss job stream"
        ),
        "scale": scale,
        "clients": clients,
        "requests": served,
        "distinct_keys": len(keys),
        "wall_seconds": round(wall, 3),
        "requests_per_second": round(served / wall, 2),
        "latency_seconds": {
            "p50": round(_percentile(latencies, 0.50), 4),
            "p99": round(_percentile(latencies, 0.99), 4),
            "max": round(max(latencies), 4),
        },
        "hit_rate": round(len(hits) / served, 3),
        "cache": {
            counter: cache_stats[counter]
            for counter in (
                "hits", "misses", "stores", "repairs", "entries",
            )
        },
        "jobs": health["jobs"],
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "latency is submit->terminal-snapshot->table per request; "
            "misses include the experiment's compute time, hits are "
            "O(lookup), so p50 vs p99 separates the two populations "
            "when the hit rate is high"
        ),
    }
    print(
        f"{served} requests, {clients} clients: "
        f"p50 {baseline['latency_seconds']['p50']:.3f}s, "
        f"p99 {baseline['latency_seconds']['p99']:.3f}s, "
        f"hit rate {baseline['hit_rate']:.0%}, "
        f"{baseline['requests_per_second']:.1f} req/s"
    )

    out = out or RESULTS_DIR / "BENCH_serve.json"
    out.parent.mkdir(exist_ok=True)
    if out.exists():
        # Keep any section another benchmark folded into this file.
        previous = json.loads(out.read_text(encoding="utf-8"))
        for section, value in previous.items():
            if section not in baseline:
                baseline[section] = value
    out.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("tiny", "small"), default="tiny")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument(
        "--experiments",
        default=",".join(DEFAULT_EXPERIMENTS),
        help=(
            "comma-separated experiment ids "
            f"(default: {','.join(DEFAULT_EXPERIMENTS)})"
        ),
    )
    args = parser.parse_args(argv)
    record(
        scale=args.scale,
        clients=args.clients,
        requests=args.requests,
        experiment_ids=[
            x.strip().upper() for x in args.experiments.split(",") if x.strip()
        ],
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
