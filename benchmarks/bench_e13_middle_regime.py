"""Bench E13 — the hypercube middle regime (extension).

Giant component with poly(n) diameter, yet near-exhaustive routing for
alpha beyond 1/2: structure without searchability.
"""

import math


def test_e13_middle_regime(run_experiment):
    table = run_experiment("E13")
    rows = sorted(table.rows, key=lambda r: r["alpha"])
    assert rows

    # structure exists across the sweep
    assert all(r["giant_fraction"] > 0.1 for r in rows)
    # diameter lower bound stays polynomial (quadratic is generous)
    for r in rows:
        if not math.isnan(r["giant_diameter_lb"]):
            assert r["giant_diameter_lb"] <= r["n"] ** 2

    # routing cost grows across the transition
    measured = [r for r in rows if not math.isnan(r["median_frac_probed"])]
    if len(measured) >= 2:
        assert (
            measured[-1]["median_frac_probed"]
            >= measured[0]["median_frac_probed"]
        )
