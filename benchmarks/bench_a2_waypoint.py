"""Bench A2 — waypoint schedule ablation (Theorems 3(ii)/4 design).

Radius caps trade success for probes; the unbounded schedule is
complete and much cheaper than exhaustive BFS.
"""


def test_a2_waypoint(run_experiment):
    table = run_experiment("A2")
    assert len(table) > 0

    for graph in sorted({r["graph"] for r in table.rows}):
        rows = table.filtered(graph=graph)
        by_name = {r["router"]: r for r in rows}
        unbounded = by_name.get("waypoint")
        bfs = by_name.get("local-bfs")
        if unbounded and bfs:
            assert unbounded["success_rate"] == 1.0
            assert unbounded["mean_queries"] < bfs["mean_queries"]
        # success rate should not decrease as the radius cap grows
        capped = sorted(
            (r for r in rows if "r<=" in r["router"]),
            key=lambda r: int(r["router"].split("<=")[1].rstrip(")")),
        )
        rates = [r["success_rate"] for r in capped]
        assert all(a <= b + 0.25 for a, b in zip(rates, rates[1:])), rates
