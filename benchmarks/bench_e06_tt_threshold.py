"""Bench E6 — double-tree connectivity threshold at 1/sqrt(2) (Lemma 6).

Regenerates the (depth, p) connection-probability table against the
exact Galton-Watson recursion.
"""


def test_e06_tt_threshold(run_experiment):
    table = run_experiment("E6")
    assert len(table) > 0

    # Exactness: empirical matches the recursion within MC noise.
    trials = table.rows[0]["trials"]
    tolerance = 5 / trials**0.5
    for row in table.rows:
        assert row["abs_error"] < tolerance + 0.02, row

    # Threshold shape: at the deepest tree, subcritical p loses to
    # supercritical p decisively.
    deepest = max(table.column("depth"))
    rows = table.filtered(depth=deepest)
    sub = [r["pr_exact"] for r in rows if r["p"] <= 0.65]
    sup = [r["pr_exact"] for r in rows if r["p"] >= 0.75]
    if sub and sup:
        assert max(sub) < min(sup)
