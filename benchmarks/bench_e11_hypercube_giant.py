"""Bench E11 — hypercube structural thresholds (context for Theorem 3).

Regenerates the giant-fraction and connectivity curves that bracket the
routing transition.
"""


def test_e11_hypercube_giant(run_experiment):
    table = run_experiment("E11")
    assert len(table) > 0

    for n in sorted({r["n"] for r in table.rows}):
        giant = sorted(
            table.filtered(section="giant_fraction", n=n),
            key=lambda r: r["p"],
        )
        # the giant fraction grows through p ~ 1/n
        assert giant[-1]["value"] > giant[0]["value"]
        # well above the threshold the giant holds most of the cube
        assert giant[-1]["value"] > 0.5

        conn = sorted(
            table.filtered(section="pr_connected", n=n), key=lambda r: r["p"]
        )
        # connectivity is (weakly) increasing across p = 1/2
        assert conn[-1]["value"] >= conn[0]["value"]
