"""Bench E12 — the Section 6 open question, charted.

Regenerates the per-family percolation vs routing sweep for de Bruijn,
shuffle-exchange and butterfly graphs.
"""

import math


def test_e12_open_question(run_experiment):
    table = run_experiment("E12")
    families = sorted({r["family"] for r in table.rows})
    assert len(families) == 4

    for family in families:
        rows = sorted(table.filtered(family=family), key=lambda r: r["p"])
        # structural transition visible: giant grows with p
        assert rows[-1]["giant_fraction"] >= rows[0]["giant_fraction"]
        # routing measured somewhere in the supercritical phase
        measured = [
            r
            for r in rows
            if not math.isnan(r["median_frac_probed"])
        ]
        assert measured, family
        for r in measured:
            assert 0 < r["median_frac_probed"] <= 1
