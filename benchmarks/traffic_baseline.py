#!/usr/bin/env python3
"""Record the demand-matrix routing baseline (BENCH_runtime.json).

Times the same chunk of ``run_traffic_trial`` specs twice on one core —
through the per-trial loop (``spec.execute()`` each: one percolation
draw and one router call per commodity, sequentially) and through the
commodity-batched chunk kernel (:func:`repro.runtime.execute_specs`,
which vectorizes the draw and routes every commodity of every trial in
lockstep frontier blocks) — asserts the records are ``repr``-identical,
and folds throughputs plus speedups into the ``traffic`` section of
``results/BENCH_runtime.json``.

The batched win grows with the commodity count: a k-commodity trial
gives the frontier engine k× the rows per mask draw, so the fixed
per-trial costs (model set-up, edge-mask materialisation) amortise
across the whole demand matrix instead of one probe pair.

Run:  PYTHONPATH=src python benchmarks/traffic_baseline.py
      (optionally --scale tiny|small|medium --seed N;
       $REPRO_BENCH_SCALE is honoured when --scale is absent)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.core.traffic import (
    AllToAllTraffic,
    HotspotTraffic,
    PermutationTraffic,
    traffic_specs,
)
from repro.experiments.spec import SCALES, pick
from repro.graphs.clos import FatTree
from repro.graphs.hypercube import Hypercube
from repro.routers.bfs import LocalBFSRouter
from repro.routers.waypoint import HypercubeWaypointRouter, WaypointRouter
from repro.runtime import supports_run_chunk
from repro.runtime.chunkexec import execute_specs

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _scenarios(scale: str, seed: int):
    """The measured regimes, heavy enough to time at the given scale."""
    n = pick(scale, tiny=6, small=9, medium=10)
    k = pick(scale, tiny=4, small=6, medium=8)
    commodities = pick(scale, tiny=8, small=24, medium=48)
    trials = pick(scale, tiny=10, small=24, medium=40)
    hypercube = Hypercube(n)
    fattree = FatTree(k)
    supercritical = float(n) ** -0.3
    cases = [
        # The gated scenarios: many-commodity permutation traffic where
        # the batched routing stage carries the whole wall clock.
        ("permutation-hypercube", hypercube, supercritical,
         LocalBFSRouter(), PermutationTraffic(commodities)),
        ("permutation-fattree", fattree, 0.85,
         WaypointRouter(), PermutationTraffic(commodities)),
        ("hotspot-hypercube", hypercube, supercritical,
         HypercubeWaypointRouter(), HotspotTraffic(commodities, 0.7)),
        ("alltoall-hypercube", hypercube, supercritical,
         HypercubeWaypointRouter(),
         AllToAllTraffic(max(3, commodities // 4))),
        # The greedy geodesic router probes so few edges per commodity
        # that the sequential loop leaves less overhead to amortise —
        # the smallest win in the table, kept as the honest floor.
        ("greedy-waypoint-hypercube", hypercube, supercritical,
         HypercubeWaypointRouter(), PermutationTraffic(commodities)),
    ]
    for label, graph, p, router, demands in cases:
        yield label, traffic_specs(
            graph,
            p,
            router,
            demands,
            trials=trials,
            seed=seed,
            key=("traffic-bench", label),
        )


def record(scale: str = "small", seed: int = 0, out: Path | None = None):
    """Measure every scenario, verify parity, update the JSON."""
    entries = []
    for label, specs in _scenarios(scale, seed):
        workload = specs[0].workload
        if not supports_run_chunk(workload):  # also warms the compile
            raise AssertionError(f"{label}: workload has no chunk kernel")
        # Best of three interleaved passes, as in kernel_baseline: the
        # first kernel pass pays one-time compile/index costs that are
        # not steady-state throughput.
        loop_s = kernel_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            loop = [spec.execute() for spec in specs]
            loop_s = min(loop_s, time.perf_counter() - start)
            start = time.perf_counter()
            kernel = execute_specs(specs)
            kernel_s = min(kernel_s, time.perf_counter() - start)
            if repr(kernel) != repr(loop):
                raise AssertionError(f"{label}: kernel records diverge")
        trials = len(specs)
        commodities = loop[0].value.traffic.commodities
        entries.append(
            {
                "scenario": label,
                "trials": trials,
                "commodities_per_trial": commodities,
                "per_trial_loop_seconds": round(loop_s, 4),
                "kernel_seconds": round(kernel_s, 4),
                "loop_trials_per_second": round(trials / loop_s, 1),
                "kernel_trials_per_second": round(trials / kernel_s, 1),
                "speedup": round(loop_s / kernel_s, 2),
                "identical_records": True,
            }
        )
        print(
            f"{label}: loop {loop_s:.3f}s, kernel {kernel_s:.3f}s "
            f"(speedup {loop_s / kernel_s:.1f}x, {trials} trials x "
            f"{commodities} commodities)"
        )

    section = {
        "benchmark": (
            "sequential demand routing vs commodity-batched kernel, "
            "one core"
        ),
        "scale": scale,
        "seed": seed,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "same specs, same records (asserted repr-identical); "
            "timings are the best of three interleaved passes. the "
            "per-trial loop routes each trial's commodities one router "
            "call at a time; the kernel draws every trial's edge mask "
            "in one vector pass and routes all commodities of all "
            "trials through the lockstep frontier engines, replaying "
            "the exact sequential probe order per commodity"
        ),
        "results": entries,
    }
    out = out or RESULTS_DIR / "BENCH_runtime.json"
    out.parent.mkdir(exist_ok=True)
    if out.exists():
        # runtime_baseline.py owns the top-level document; this script
        # only replaces its own section, like kernel/ipc/cluster do.
        baseline = json.loads(out.read_text(encoding="utf-8"))
    else:
        baseline = {}
    baseline["traffic"] = section
    out.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=os.environ.get("REPRO_BENCH_SCALE", "small"),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_SEED", "0")),
    )
    args = parser.parse_args(argv)
    record(scale=args.scale, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
