"""Bench E14 — routing transition under node faults (extension).

Site faults at survival p act like edge faults at ~p^2: the routing
blow-up *onsets* at smaller alpha.  Past the onset the comparison in
"fraction of all edges probed" inverts — under heavy site faults the
surviving subgraph itself shrinks, so the probed share of the *full*
edge set drops even though routing is no easier — hence the assertions
below target the onset region (alpha <= 0.5) and connectivity decay.
"""

import math


def test_e14_site_faults(run_experiment):
    table = run_experiment("E14")
    assert len(table) > 0

    for alpha in sorted({r["alpha"] for r in table.rows}):
        rows = {r["fault_model"]: r for r in table.filtered(alpha=alpha)}
        edge, site = rows.get("edge"), rows.get("site")
        if not (edge and site):
            continue
        # site faults never connect more often than edge faults
        assert site["connected_trials"] <= edge["connected_trials"] + 1
        both = (
            not math.isnan(site["median_frac_probed"])
            and not math.isnan(edge["median_frac_probed"])
        )
        if both and alpha <= 0.5:
            # onset region: routing under site faults costs at least
            # about as much as under edge faults at the same nominal p
            assert (
                site["median_frac_probed"]
                >= 0.5 * edge["median_frac_probed"]
            ), (alpha, site, edge)
