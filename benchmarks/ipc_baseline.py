#!/usr/bin/env python3
"""Record the IPC baseline of the workload protocol (BENCH_ipc.json).

The shared-payload refactor's claim is mechanical: a per-trial spec
used to pickle its whole measurement context (graph, router,
percolation factory) into ``args``, so for explicit topologies IPC —
not routing — dominated parallel wall-clock.  This benchmark quantifies
that on the fattest payload in the registry, a routing sweep over a
``RandomMatchingCycle`` (the Bollobás–Chung cycle-plus-matching whose
matching is stored, not computed):

* **fat bytes/trial** — the wire size of the pre-refactor spec, a
  :class:`TrialSpec` with the context inlined (reconstructed from the
  workload, byte-faithful to the old emission);
* **slim bytes/trial** — the wire size of the workload-referencing
  spec actually emitted now (per-trial tail + 32-hex content id);
* **payload bytes** — the one-off workload shipment each worker pays
  once per sweep point, however many trials follow;
* wall-clock for the sweep under a serial runner and under a process
  pool, plus a second (warm) pool batch showing persistent-pool reuse —
  with outputs verified identical along the way.

Writes ``results/BENCH_ipc.json`` and folds the headline
reduction into ``results/BENCH_runtime.json`` under ``"ipc"`` so the
perf trajectory lives in one place.

Run:  PYTHONPATH=src python benchmarks/ipc_baseline.py
      (optionally --scale tiny|small|medium --workers N)
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import time
from pathlib import Path

from repro.core.complexity import complexity_specs
from repro.experiments.spec import SCALES, pick
from repro.graphs.cycle_matching import RandomMatchingCycle
from repro.routers.bfs import LocalBFSRouter
from repro.runtime import ProcessPoolRunner, SerialRunner, TrialSpec
from repro.util.rng import derive_seed

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _sweep_specs(scale: str, seed: int):
    """The explicit-graph sweep: one group of specs per retention level."""
    order = pick(scale, tiny=6, small=10, medium=13)
    trials = pick(scale, tiny=6, small=10, medium=12)
    ps = pick(
        scale,
        tiny=[0.5, 0.7],
        small=[0.4, 0.5, 0.6, 0.7, 0.8],
        medium=[0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    )
    graph = RandomMatchingCycle(2**order, seed=derive_seed(seed, "ipc-bench"))
    router = LocalBFSRouter()
    groups = [
        (
            p,
            complexity_specs(
                graph,
                p=p,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "ipc", p),
                key=("ipc", p),
            ),
        )
        for p in ps
    ]
    return graph, groups


def _fat_equivalent(spec: TrialSpec) -> TrialSpec:
    """Reconstruct the pre-refactor wire form of a slim spec.

    PR 2 emitted ``run_trial`` specs with the shared context inlined:
    ``args=(graph, p, router, source, target, trial, seed)`` plus the
    config kwargs.  The workload carries exactly those leading
    arguments, so splicing it back in reproduces the old payload byte
    for byte.
    """
    workload = spec.workload
    return TrialSpec(
        key=spec.key,
        fn=workload.fn,
        args=tuple(workload.args) + tuple(spec.args),
        kwargs={**workload.kwargs, **spec.kwargs},
    )


def measure_bytes(groups) -> dict:
    """Pickled bytes per trial, fat (pre-refactor) vs slim (now)."""
    flat = [spec for _, specs in groups for spec in specs]
    slim = [len(pickle.dumps(spec)) for spec in flat]
    fat = [len(pickle.dumps(_fat_equivalent(spec))) for spec in flat]
    payloads = {
        spec.workload.workload_id: len(pickle.dumps(spec.workload))
        for spec in flat
    }
    fat_per_trial = sum(fat) / len(fat)
    slim_per_trial = sum(slim) / len(slim)
    return {
        "trials": len(flat),
        "sweep_points": len(groups),
        "fat_bytes_per_trial": round(fat_per_trial, 1),
        "slim_bytes_per_trial": round(slim_per_trial, 1),
        "payload_bytes_once_per_worker": sum(payloads.values()),
        "reduction_factor": round(fat_per_trial / slim_per_trial, 1),
    }


def measure_wallclock(scale: str, seed: int, workers: int) -> dict:
    """Serial vs cold-pool vs warm-pool wall-clock, outputs verified."""
    _, groups = _sweep_specs(scale, seed)
    start = time.perf_counter()
    serial_out = SerialRunner().run_grouped(groups)
    serial_s = time.perf_counter() - start

    with ProcessPoolRunner(workers=workers, chunksize=1) as pool:
        start = time.perf_counter()
        cold_out = pool.run_grouped(groups)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_out = pool.run_grouped(groups)
        warm_s = time.perf_counter() - start
    if not (repr(serial_out) == repr(cold_out) == repr(warm_out)):
        raise AssertionError("parallel output differs from serial")
    return {
        "serial_seconds": round(serial_s, 3),
        "pool_cold_seconds": round(cold_s, 3),
        "pool_warm_seconds": round(warm_s, 3),
        "identical_output": True,
    }


def record(
    scale: str = "small",
    seed: int = 0,
    workers: int = 4,
    out: Path | None = None,
) -> dict:
    """Measure, verify, and write the IPC baseline JSON."""
    graph, groups = _sweep_specs(scale, seed)
    sizes = measure_bytes(groups)
    timings = measure_wallclock(scale, seed, workers)
    baseline = {
        "benchmark": "workload protocol: pickled bytes/trial + wall-clock",
        "graph": graph.name,
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "bytes": sizes,
        "wallclock": timings,
        "note": (
            "fat = pre-refactor spec with the graph inlined per trial; "
            "slim = workload-referencing spec (per-trial tail + content "
            "id); the payload ships to each worker once per sweep point. "
            "pool_warm reuses the persistent pool of pool_cold."
        ),
    }
    out = out or RESULTS_DIR / "BENCH_ipc.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(
        f"{graph.name}: fat {sizes['fat_bytes_per_trial']:.0f} B/trial vs "
        f"slim {sizes['slim_bytes_per_trial']:.0f} B/trial "
        f"({sizes['reduction_factor']:.1f}x smaller); serial "
        f"{timings['serial_seconds']}s, pool cold "
        f"{timings['pool_cold_seconds']}s, warm "
        f"{timings['pool_warm_seconds']}s"
    )
    print(f"wrote {out}")
    _fold_into_runtime_baseline(sizes, scale)
    return baseline


def _fold_into_runtime_baseline(sizes: dict, scale: str) -> None:
    """Keep the headline before/after in BENCH_runtime.json too."""
    path = RESULTS_DIR / "BENCH_runtime.json"
    if not path.exists():
        return
    runtime = json.loads(path.read_text(encoding="utf-8"))
    runtime["ipc"] = {
        "source": "benchmarks/ipc_baseline.py",
        "scale": scale,
        "before_fat_bytes_per_trial": sizes["fat_bytes_per_trial"],
        "after_slim_bytes_per_trial": sizes["slim_bytes_per_trial"],
        "reduction_factor": sizes["reduction_factor"],
    }
    path.write_text(
        json.dumps(runtime, indent=2) + "\n", encoding="utf-8"
    )
    print(f"updated {path} (ipc section)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)
    record(scale=args.scale, seed=args.seed, workers=args.workers)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
