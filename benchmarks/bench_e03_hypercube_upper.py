"""Bench E3 — hypercube poly(n) upper bound (Theorem 3(ii)).

Regenerates the success-rate and query-scaling series of the paper's
waypoint algorithm for alpha < 1/2.
"""


def test_e03_hypercube_upper(run_experiment):
    table = run_experiment("E3")
    assert len(table) > 0

    rates = table.column("success_rate")
    assert sum(rates) / len(rates) > 0.7, "success should be the norm"

    # poly(n), not exponential: the largest-n rows must not blow past a
    # generous polynomial multiple of the smallest-n rows per alpha.
    for alpha in sorted({r["alpha"] for r in table.rows}):
        rows = sorted(table.filtered(alpha=alpha), key=lambda r: r["n"])
        measured = [
            r for r in rows if r["median_queries"] == r["median_queries"]
        ]
        if len(measured) >= 2:
            first, last = measured[0], measured[-1]
            n_ratio = last["n"] / first["n"]
            q_ratio = last["median_queries"] / max(1, first["median_queries"])
            assert q_ratio < n_ratio**6, (alpha, q_ratio, n_ratio)
