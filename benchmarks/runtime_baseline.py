#!/usr/bin/env python3
"""Record the serial-vs-parallel wall-clock baseline (BENCH_runtime.json).

Runs the heaviest runner-based experiments with a ``SerialRunner`` and
with a ``ProcessPoolRunner``, verifies the outputs match (the
determinism contract of :mod:`repro.runtime`), and writes timings plus
machine context to ``results/BENCH_runtime.json`` so future PRs have a
perf trajectory to compare against.

Run:  PYTHONPATH=src python benchmarks/runtime_baseline.py
      (optionally --scale tiny|small|medium --workers N)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.registry import get_experiment
from repro.experiments.spec import SCALES
from repro.runtime import ProcessPoolRunner, SerialRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

DEFAULT_EXPERIMENTS = ("E1", "E11", "E15")


def _time_run(spec, scale, seed, runner):
    start = time.perf_counter()
    table = spec(scale=scale, seed=seed, runner=runner)
    return time.perf_counter() - start, table


def record(
    scale: str = "small",
    seed: int = 0,
    workers: int = 4,
    experiment_ids=DEFAULT_EXPERIMENTS,
    out: Path | None = None,
) -> dict:
    """Measure, verify determinism, and write the baseline JSON.

    The parallel runner is shared across all measured experiments and
    its pool persists between them (the workload protocol's reuse
    path), so ``parallel_seconds`` of the first experiment includes
    pool start-up and later ones ride the warm pool — matching how
    ``repro run all --workers N`` behaves.
    """
    entries = []
    with ProcessPoolRunner(workers=workers) as parallel:
        for experiment_id in experiment_ids:
            spec = get_experiment(experiment_id)
            serial_s, serial_table = _time_run(
                spec, scale, seed, SerialRunner()
            )
            parallel_s, parallel_table = _time_run(
                spec, scale, seed, parallel
            )
            if serial_table.render() != parallel_table.render():
                raise AssertionError(
                    f"{experiment_id}: parallel output differs from serial"
                )
            entries.append(
                {
                    "experiment": experiment_id,
                    "serial_seconds": round(serial_s, 3),
                    "parallel_seconds": round(parallel_s, 3),
                    "speedup": round(serial_s / parallel_s, 3),
                    "identical_output": True,
                }
            )
            print(
                f"{experiment_id}: serial {serial_s:.2f}s, "
                f"{workers}-worker {parallel_s:.2f}s "
                f"(speedup {serial_s / parallel_s:.2f}x)"
            )

    baseline = {
        "benchmark": "trial-runner serial vs parallel wall-clock",
        "granularity": (
            "per-trial: every Monte-Carlo trial of every sweep point is "
            "its own work unit, so single points parallelise too; "
            "shared contexts ship once per worker as workloads and the "
            "pool persists across experiments"
        ),
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "speedup is bounded by cpu_count; on a single-core runner "
            "the pool only adds overhead, but identical_output must "
            "hold everywhere"
        ),
        "results": entries,
    }
    out = out or RESULTS_DIR / "BENCH_runtime.json"
    out.parent.mkdir(exist_ok=True)
    if out.exists():
        # benchmarks/ipc_baseline.py, benchmarks/cluster_baseline.py
        # and benchmarks/kernel_baseline.py fold their headline numbers
        # into this file; keep every section this run did not measure.
        previous = json.loads(out.read_text(encoding="utf-8"))
        for section, value in previous.items():
            if section not in baseline:
                baseline[section] = value
    out.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--experiments",
        default=",".join(DEFAULT_EXPERIMENTS),
        help=(
            "comma-separated experiment ids "
            f"(default: {','.join(DEFAULT_EXPERIMENTS)})"
        ),
    )
    args = parser.parse_args(argv)
    record(
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        experiment_ids=[
            x.strip().upper() for x in args.experiments.split(",") if x.strip()
        ],
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
