#!/usr/bin/env python3
"""Record the per-trial-loop vs chunk-kernel baseline (BENCH_runtime.json).

Times the same chunk of ``run_trial`` specs twice on one core — through
the per-trial loop (``spec.execute()`` each) and through the vectorized
chunk kernel (:func:`repro.runtime.execute_specs`) — asserts the
records are ``repr``-identical, and folds throughputs plus speedups
into the ``kernel`` section of ``results/BENCH_runtime.json``.

The speedup is regime-dependent by design: where trials rarely
condition in (subcritical), the per-trial cost is percolation set-up
plus a cluster BFS and batching wins an order of magnitude or more;
where most trials route (supercritical), the probe-by-probe router —
which the kernel must keep bit-exact — dominates both paths and the
win shrinks towards the mask-draw savings.

Run:  PYTHONPATH=src python benchmarks/kernel_baseline.py
      (optionally --scale tiny|small|medium --seed N;
       $REPRO_BENCH_SCALE is honoured when --scale is absent)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.core.complexity import complexity_specs
from repro.experiments.defs.e14_site_faults import _site_factory
from repro.experiments.spec import SCALES, pick
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from repro.routers.waypoint import MeshWaypointRouter, WaypointRouter
from repro.runtime import supports_run_chunk
from repro.runtime.chunkexec import execute_specs

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _scenarios(scale: str, seed: int):
    """The measured regimes, heavy enough to time at the given scale."""
    n = pick(scale, tiny=8, small=11, medium=12)
    side = pick(scale, tiny=12, small=20, medium=24)
    trials = pick(scale, tiny=20, small=40, medium=60)
    hypercube = Hypercube(n)
    mesh = Mesh(2, side)
    supercritical = float(n) ** -0.3
    cases = [
        ("hypercube-subcritical", hypercube, float(n) ** -1.0,
         WaypointRouter(), None),
        ("hypercube-supercritical", hypercube, supercritical,
         WaypointRouter(), None),
        ("mesh-subcritical", mesh, 0.40, MeshWaypointRouter(), None),
        ("mesh-supercritical", mesh, 0.70, MeshWaypointRouter(), None),
        ("site-supercritical", hypercube, float(n) ** -0.1,
         WaypointRouter(), _site_factory),
        ("site-subcritical", hypercube, float(n) ** -1.0,
         WaypointRouter(), _site_factory),
        # Routing-dominated regimes: supercritical, so (nearly) every
        # trial conditions in and the wall clock is the router itself —
        # the lockstep frontier engines against the per-trial loop.
        ("routing-local-bfs", hypercube, supercritical,
         LocalBFSRouter(), None),
        ("routing-bidirectional", hypercube, supercritical,
         BidirectionalBFSRouter(), None),
        ("routing-waypoint", mesh, 0.75, WaypointRouter(), None),
    ]
    for label, graph, p, router, factory in cases:
        yield label, complexity_specs(
            graph,
            p=p,
            router=router,
            trials=trials,
            seed=seed,
            model_factory=factory,
            key=("kernel-bench", label),
        )


def record(scale: str = "small", seed: int = 0, out: Path | None = None):
    """Measure every scenario, verify parity, update the JSON."""
    entries = []
    for label, specs in _scenarios(scale, seed):
        workload = specs[0].workload
        if not supports_run_chunk(workload):  # also warms the compile
            raise AssertionError(f"{label}: workload has no chunk kernel")
        # Best of three interleaved passes: the first kernel pass pays
        # one-time costs (incidence build, key-blob serialisation)
        # that are not steady-state throughput, and the fastest
        # regimes finish in milliseconds where single-pass timing is
        # noise-bound.
        loop_s = kernel_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            loop = [spec.execute() for spec in specs]
            loop_s = min(loop_s, time.perf_counter() - start)
            start = time.perf_counter()
            kernel = execute_specs(specs)
            kernel_s = min(kernel_s, time.perf_counter() - start)
            if repr(kernel) != repr(loop):
                raise AssertionError(f"{label}: kernel records diverge")
        trials = len(specs)
        entries.append(
            {
                "scenario": label,
                "trials": trials,
                "per_trial_loop_seconds": round(loop_s, 4),
                "kernel_seconds": round(kernel_s, 4),
                "loop_trials_per_second": round(trials / loop_s, 1),
                "kernel_trials_per_second": round(trials / kernel_s, 1),
                "speedup": round(loop_s / kernel_s, 2),
                "identical_records": True,
            }
        )
        print(
            f"{label}: loop {loop_s:.3f}s, kernel {kernel_s:.3f}s "
            f"(speedup {loop_s / kernel_s:.1f}x, {trials} trials)"
        )

    section = {
        "benchmark": "per-trial loop vs vectorized chunk kernel, one core",
        "scale": scale,
        "seed": seed,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "same specs, same records (asserted repr-identical); "
            "timings are the best of three interleaved passes. the "
            "kernel batches percolation draws, connectivity BFS and — "
            "for registered routers — the routing stage itself "
            "(lockstep frontier engines replaying the exact per-trial "
            "probe sequence). subcritical regimes gain from the "
            "batched draw+BFS; the routing-* scenarios measure the "
            "vectorized routing stage where it dominates the wall "
            "clock. site-subcritical, once the seam's known loss "
            "(eager site draw vs the lazy per-trial model), now draws "
            "coins lazily per frontier block and stays at or above "
            "parity"
        ),
        "results": entries,
    }
    out = out or RESULTS_DIR / "BENCH_runtime.json"
    out.parent.mkdir(exist_ok=True)
    if out.exists():
        # runtime_baseline.py owns the top-level document; this script
        # only replaces its own section, like ipc/cluster do.
        baseline = json.loads(out.read_text(encoding="utf-8"))
    else:
        baseline = {}
    baseline["kernel"] = section
    out.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=os.environ.get("REPRO_BENCH_SCALE", "small"),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_SEED", "0")),
    )
    args = parser.parse_args(argv)
    record(scale=args.scale, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
