"""Run every docstring example in the package as a test.

Doctests double as API documentation; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # experiment defs register on import; importing them here is fine,
    # but they hold no doctests — skip for speed.
    if not name.startswith("repro.experiments.defs")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
