"""Execute the ``python`` code blocks of the docs, verbatim.

Every fenced block whose info string is exactly ``python`` runs, in
order, sharing one namespace per document — so the docs cannot drift
from the code without failing CI.  Blocks tagged ``python notest``
are illustrative only (e.g. global registry mutations) and skipped.
"""

from __future__ import annotations

import re
import sys
import types
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

DOCS = [
    REPO / "docs" / "ARCHITECTURE.md",
    REPO / "docs" / "ADDING_EXPERIMENTS.md",
]

_FENCE = re.compile(
    r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$",
    re.DOTALL | re.MULTILINE,
)


def python_blocks(path: Path) -> list[str]:
    """The executable blocks of one document, in order."""
    return [
        match.group("body")
        for match in _FENCE.finditer(path.read_text(encoding="utf-8"))
        if match.group("info").strip() == "python"
    ]


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_document_examples_execute(path):
    blocks = python_blocks(path)
    assert blocks, f"{path.name} has no executable python blocks"
    # Execute inside a real registered module so functions defined by
    # the examples pickle by reference (workload content ids need it).
    name = f"_doc_example_{path.stem.lower()}"
    module = types.ModuleType(name)
    module.__file__ = str(path)
    sys.modules[name] = module
    try:
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"{path.name}[block {i}]", "exec"),
                     module.__dict__)
            except Exception as exc:  # pragma: no cover - failure path
                pytest.fail(
                    f"{path.name} block {i} raised "
                    f"{type(exc).__name__}: {exc}\n---\n{block}"
                )
    finally:
        sys.modules.pop(name, None)


def test_every_tracked_doc_is_executed():
    tracked = sorted((REPO / "docs").glob("*.md"))
    assert tracked, "docs/ directory is empty"
    assert [p.name for p in DOCS] == [p.name for p in tracked] or set(
        p.name for p in DOCS
    ) == set(p.name for p in tracked), (
        "new file under docs/: add it to DOCS so its examples run"
    )
