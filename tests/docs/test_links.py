"""Link and anchor checker for README.md and docs/.

Every relative markdown link must point at an existing file (or
directory), and every ``#fragment`` must match a heading anchor in the
target document, using GitHub's slugification.  External links are not
fetched — only their syntax keeps them out of scope.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

DOCUMENTS = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"^```.*?^```\s*$", re.DOTALL | re.MULTILINE)


def _slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    body = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {_slug(m.group(1)) for m in _HEADING.finditer(body)}


def _links(path: Path) -> list[str]:
    body = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return _LINK.findall(body)


@pytest.mark.parametrize("doc", DOCUMENTS, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(doc):
    problems = []
    for raw in _links(doc):
        if raw.startswith(("http://", "https://", "mailto:")):
            continue
        target_part, _, fragment = raw.partition("#")
        if target_part:
            target = (doc.parent / target_part).resolve()
            if not target.exists():
                problems.append(f"{raw}: {target_part} does not exist")
                continue
        else:
            target = doc
        if fragment:
            if target.is_dir() or target.suffix.lower() != ".md":
                continue  # anchors only checked in markdown targets
            if fragment.lower() not in _anchors(target):
                problems.append(
                    f"{raw}: no heading for #{fragment} in "
                    f"{target.relative_to(REPO)}"
                )
    assert not problems, "\n".join(problems)


def test_readme_links_to_the_docs():
    body = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in body
    assert "docs/ADDING_EXPERIMENTS.md" in body
