"""Bit parity of the batched percolation draws and mask-backed models.

Every row of a batched draw must equal the per-trial model it stands in
for — same seed derivation, same coins, same answers — or tables change
under the kernel, which the whole seam forbids.
"""

from __future__ import annotations

import pytest

from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh, Torus
from repro.kernels import (
    MaskEdgePercolation,
    MaskSitePercolation,
    build_edge_index,
    site_up_masks,
    table_edge_masks,
)
from repro.percolation.models import TablePercolation
from repro.percolation.site import SitePercolation
from repro.util.rng import derive_seed

SEEDS = [derive_seed(7, "kernel-mask", t) for t in range(6)]


@pytest.mark.parametrize(
    "graph,p",
    [
        (Hypercube(5), 0.35),
        (Mesh(2, 6), 0.55),
        (Torus(2, 4), 0.5),
    ],
    ids=["hypercube", "mesh", "torus"],
)
def test_table_edge_masks_match_table_percolation(graph, p):
    edges = list(graph.edges())
    masks = table_edge_masks(p, SEEDS, len(edges))
    assert masks.shape == (len(SEEDS), len(edges))
    for row, seed in zip(masks, SEEDS):
        model = TablePercolation(graph, p, seed=seed)
        assert row.tolist() == [model.is_open(u, v) for u, v in edges]


@pytest.mark.parametrize("pinned", [(), None], ids=["bare", "pinned"])
def test_site_up_masks_match_site_percolation(pinned):
    graph = Hypercube(5)
    p = 0.6
    verts = list(graph.vertices())
    if pinned is None:
        pinned = graph.canonical_pair()
    codes = [verts.index(v) for v in pinned]
    up = site_up_masks(p, SEEDS, verts, pinned_codes=codes)
    for row, seed in zip(up, SEEDS):
        model = SitePercolation(graph, p, seed=seed, pinned=pinned)
        assert row.tolist() == [model.is_up(v) for v in verts]


def test_site_up_masks_reject_out_of_range_seed():
    with pytest.raises(ValueError):
        site_up_masks(0.5, [-1], [0, 1])


@pytest.mark.parametrize(
    "graph,p", [(Hypercube(4), 0.45), (Mesh(2, 5), 0.6)],
    ids=["hypercube", "mesh"],
)
def test_mask_edge_model_answers_like_table(graph, p):
    index = build_edge_index(graph)
    seed = SEEDS[0]
    mask = table_edge_masks(p, [seed], index.num_edges)[0]
    kernel = MaskEdgePercolation(index, p, mask)
    ref = TablePercolation(graph, p, seed=seed)
    verts = list(graph.vertices())
    for u, v in graph.edges():
        assert kernel.is_open(u, v) == ref.is_open(u, v)
        assert kernel.is_open(v, u) == ref.is_open(v, u)
    for v in verts:
        # Routers never call open_neighbors (probes are the measured
        # quantity); only the neighbour *set* must agree.
        assert set(kernel.open_neighbors(v)) == set(ref.open_neighbors(v))
        assert kernel.open_degree(v) == ref.open_degree(v)
    assert kernel.num_open_edges() == ref.num_open_edges()
    # Non-edges are closed, exactly like the set-membership answer.
    a, b = verts[0], verts[-1]
    if not graph.is_edge(a, b):
        assert kernel.is_open(a, b) is False
        assert ref.is_open(a, b) is False


def test_mask_edge_open_neighbors_order_matches_incidence():
    # open_neighbors comes from the incidence rows, whose slots follow
    # edges() order — deterministic, whatever the per-trial model's
    # adjacency-dict insertion order was.
    graph = Torus(2, 4)
    index = build_edge_index(graph)
    mask = table_edge_masks(0.7, [SEEDS[1]], index.num_edges)[0]
    kernel = MaskEdgePercolation(index, 0.7, mask)
    ref = TablePercolation(graph, 0.7, seed=SEEDS[1])
    for v in graph.vertices():
        assert set(kernel.open_neighbors(v)) == set(ref.open_neighbors(v))


def test_mask_site_model_answers_like_site():
    graph = Hypercube(4)
    p = 0.55
    pinned = graph.canonical_pair()
    index = build_edge_index(graph)
    verts = index.verts
    codes = [index.code[v] for v in pinned]
    seed = SEEDS[2]
    up = site_up_masks(p, [seed], verts, pinned_codes=codes)[0]
    kernel = MaskSitePercolation(index, p, up)
    ref = SitePercolation(graph, p, seed=seed, pinned=pinned)
    for v in verts:
        assert kernel.is_up(v) == ref.is_up(v)
        assert kernel.open_neighbors(v) == ref.open_neighbors(v)
    for u, v in graph.edges():
        assert kernel.is_open(u, v) == ref.is_open(u, v)
    # SitePercolation answers non-adjacent pairs too (both up); the
    # mask-backed model must mirror that quirk, not the edge-mask view.
    a, b = verts[0], verts[-1]
    assert not graph.is_edge(a, b)
    assert kernel.is_open(a, b) == ref.is_open(a, b)
