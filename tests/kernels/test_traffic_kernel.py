"""Parity gate for the demand-matrix chunk kernel (repro.kernels.traffic).

The invariant is the same one every kernel in this package carries:
``execute_specs`` over a traffic workload must produce records
**repr-identical** to ``spec.execute()`` — same demands, same probe
counts, same congestion floats.  Golden cases pin the batched waypoint
/ BFS paths, hypothesis sweeps the parameter space, and the fallback
cases check the split behaviour (vector draw + sequential routing for
unregistered routers; full decline for unindexable workloads).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.traffic import (
    AllToAllTraffic,
    FixedTraffic,
    HotspotTraffic,
    PermutationTraffic,
    traffic_specs,
)
from repro.graphs.clos import FatTree
from repro.graphs.hypercube import Hypercube
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from repro.routers.dfs import DirectedDFSRouter
from repro.routers.waypoint import HypercubeWaypointRouter, WaypointRouter
from repro.runtime.chunkexec import chunk_runner, execute_specs


@pytest.fixture(autouse=True)
def _kernel_on(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "on")


def _exotic_factory(graph, p, seed):
    """A picklable percolation factory no kernel is registered for."""
    from repro.percolation.models import TablePercolation

    return TablePercolation(graph, p, seed=seed)


def _parity(specs):
    sequential = [repr(s.execute().value) for s in specs]
    kernel = [repr(r.value) for r in execute_specs(specs)]
    assert kernel == sequential


class TestGoldenParity:
    @pytest.mark.parametrize(
        "router",
        [LocalBFSRouter(), BidirectionalBFSRouter(), HypercubeWaypointRouter()],
        ids=lambda r: r.name,
    )
    @pytest.mark.parametrize(
        "demands",
        [
            PermutationTraffic(6),
            PermutationTraffic(1),
            HotspotTraffic(5, 0.7),
            AllToAllTraffic(3),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_hypercube_batched_routing(self, router, demands):
        graph = Hypercube(4)
        specs = traffic_specs(
            graph, 0.75, router, demands, trials=8, seed=13
        )
        runner = chunk_runner(specs[0].workload)
        assert runner is not None
        assert runner.stages()["routing"] == "kernel"
        _parity(specs)

    def test_fattree_waypoint(self):
        graph = FatTree(4)
        specs = traffic_specs(
            graph, 0.8, WaypointRouter(), PermutationTraffic(5),
            trials=8, seed=3,
        )
        runner = chunk_runner(specs[0].workload)
        assert runner is not None
        _parity(specs)

    def test_budget_parity(self):
        graph = Hypercube(4)
        specs = traffic_specs(
            graph, 0.7, LocalBFSRouter(), PermutationTraffic(4),
            trials=8, seed=5, budget=25,
        )
        _parity(specs)

    def test_fixed_single_pair_is_degenerate_case(self):
        graph = Hypercube(4)
        source, target = graph.canonical_pair()
        specs = traffic_specs(
            graph, 0.75, LocalBFSRouter(),
            FixedTraffic(((source, target),)), trials=8, seed=7,
        )
        _parity(specs)


class TestFallbacks:
    def test_unregistered_router_takes_sequential_routing(self):
        graph = Hypercube(4)
        specs = traffic_specs(
            graph, 0.7, DirectedDFSRouter(), PermutationTraffic(4),
            trials=6, seed=3,
        )
        runner = chunk_runner(specs[0].workload)
        assert runner is not None
        assert runner.stages() == {
            "draw": "kernel",
            "conditioning": "per-trial",
            "routing": "per-trial",
        }
        _parity(specs)

    def test_unregistered_model_factory_declines(self):
        graph = Hypercube(4)
        specs = traffic_specs(
            graph, 0.7, LocalBFSRouter(), PermutationTraffic(3),
            trials=3, seed=1, model_factory=_exotic_factory,
        )
        assert chunk_runner(specs[0].workload) is None

    def test_stage_split_reports_kernel_draw_and_routing(self):
        graph = Hypercube(4)
        specs = traffic_specs(
            graph, 0.7, LocalBFSRouter(), PermutationTraffic(3),
            trials=3, seed=1,
        )
        runner = chunk_runner(specs[0].workload)
        assert runner.stages() == {
            "draw": "kernel",
            "conditioning": "kernel",
            "routing": "kernel",
        }


class TestHypothesisParity:
    @settings(max_examples=25, deadline=None)
    @given(
        p=st.floats(min_value=0.3, max_value=1.0),
        commodities=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        trials=st.integers(min_value=1, max_value=6),
        router_idx=st.integers(min_value=0, max_value=2),
        budget=st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
    )
    def test_permutation_parity(
        self, p, commodities, seed, trials, router_idx, budget
    ):
        graph = Hypercube(4)
        router = [
            LocalBFSRouter(),
            BidirectionalBFSRouter(),
            HypercubeWaypointRouter(),
        ][router_idx]
        specs = traffic_specs(
            graph, p, router, PermutationTraffic(commodities),
            trials=trials, seed=seed, budget=budget,
        )
        _parity(specs)

    @settings(max_examples=15, deadline=None)
    @given(
        skew=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_hotspot_parity(self, skew, seed):
        graph = Hypercube(4)
        specs = traffic_specs(
            graph, 0.7, LocalBFSRouter(), HotspotTraffic(5, skew),
            trials=4, seed=seed,
        )
        _parity(specs)
