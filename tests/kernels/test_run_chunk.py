"""Golden parity: the compiled chunk kernel vs the per-trial loop.

For every supported ingredient combination, ``execute_specs`` (kernel
path) must produce records ``repr``-identical to ``spec.execute()``
(per-trial path) — same trials, same seeds, same connectivity verdicts,
same :class:`RoutingResult` fields, probe for probe.  Unsupported
ingredients must *decline* into the per-trial loop, never change
results.
"""

from __future__ import annotations

import pytest

import repro.runtime.chunkexec as chunkexec
from repro.core.complexity import complexity_specs
from repro.core.router import Router
from repro.experiments.defs.e14_site_faults import _site_factory
from repro.experiments.defs.e15_clos_faults import _node_factory
from repro.graphs.clos import FatTree
from repro.graphs.debruijn import DeBruijn
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh, Torus
from repro.percolation.models import HashPercolation, TablePercolation
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from repro.routers.dfs import DirectedDFSRouter
from repro.routers.waypoint import MeshWaypointRouter, WaypointRouter
from repro.runtime import (
    TrialExecutionError,
    run_chunk,
    supports_run_chunk,
)
from repro.runtime.chunkexec import execute_specs


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    # Compiled verdicts are cached by workload content id; start each
    # test from a cold cache so support checks compile for real.
    chunkexec._COMPILED.clear()
    yield
    chunkexec._COMPILED.clear()


CASES = [
    pytest.param(
        Hypercube(5), 0.5, WaypointRouter(), None, "exact", None,
        id="hypercube-waypoint-exact",
    ),
    pytest.param(
        Hypercube(5), 0.3, WaypointRouter(), None, "exact", None,
        id="hypercube-subcritical",
    ),
    pytest.param(
        Hypercube(5), 0.6, DirectedDFSRouter(), 150, "exact", None,
        id="hypercube-dfs-budget",
    ),
    pytest.param(
        Hypercube(5), 0.7, WaypointRouter(), None, "router", None,
        id="hypercube-router-conditioning",
    ),
    pytest.param(
        Hypercube(5), 0.6, LocalBFSRouter(), 120, "none", None,
        id="hypercube-none-conditioning",
    ),
    pytest.param(
        Mesh(2, 5), 0.6, MeshWaypointRouter(), None, "exact", None,
        id="mesh-waypoint-exact",
    ),
    pytest.param(
        Torus(2, 4), 0.55, LocalBFSRouter(), 200, "exact", None,
        id="torus-bfs-budget",
    ),
    pytest.param(
        DeBruijn(4), 0.6, LocalBFSRouter(), None, "exact", None,
        id="debruijn-bfs",
    ),
    pytest.param(
        Hypercube(5), 0.7, WaypointRouter(), None, "exact",
        _site_factory,
        id="hypercube-site-faults",
    ),
    pytest.param(
        Hypercube(5), 0.55, LocalBFSRouter(), 150, "exact", None,
        id="hypercube-local-bfs",
    ),
    pytest.param(
        Hypercube(5), 0.55, BidirectionalBFSRouter(), 150, "exact",
        None,
        id="hypercube-bidirectional-bfs",
    ),
    pytest.param(
        FatTree(4), 0.8, WaypointRouter(), None, "exact",
        _node_factory,
        id="fat-tree-node-faults",
    ),
]


@pytest.mark.parametrize(
    "graph,p,router,budget,conditioning,factory", CASES
)
def test_kernel_records_match_per_trial_loop(
    graph, p, router, budget, conditioning, factory
):
    specs = complexity_specs(
        graph,
        p=p,
        router=router,
        trials=12,
        seed=97,
        budget=budget,
        model_factory=factory,
        conditioning=conditioning,
        key=("golden",),
    )
    assert supports_run_chunk(specs[0].workload)
    reference = [spec.execute() for spec in specs]
    got = execute_specs(specs)
    assert repr(got) == repr(reference)
    # The connected flag must be a plain bool, not a numpy scalar —
    # repr parity above depends on it, but make the contract explicit.
    assert all(
        type(r.value.connected) is bool for r in got  # noqa: E721
    )


def test_run_chunk_explicit_api():
    specs = complexity_specs(
        Hypercube(4), p=0.5, router=WaypointRouter(), trials=6, seed=5
    )
    workload = specs[0].workload
    got = run_chunk(workload, specs)
    assert repr(got) == repr([spec.execute() for spec in specs])


def test_run_chunk_rejects_unsupported_workload():
    specs = complexity_specs(
        Hypercube(4),
        p=0.5,
        router=WaypointRouter(),
        trials=2,
        seed=5,
        model_factory=HashPercolation,
    )
    workload = specs[0].workload
    assert not supports_run_chunk(workload)
    with pytest.raises(ValueError, match="does not support run_chunk"):
        run_chunk(workload, specs)


def _unregistered_factory(graph, p, seed):
    return TablePercolation(graph, p, seed)


@pytest.mark.parametrize(
    "factory", [HashPercolation, _unregistered_factory],
    ids=["hash", "unregistered"],
)
def test_unsupported_factory_falls_back_identically(factory):
    specs = complexity_specs(
        Hypercube(4),
        p=0.5,
        router=WaypointRouter(),
        trials=6,
        seed=17,
        model_factory=factory,
    )
    assert not supports_run_chunk(specs[0].workload)
    got = execute_specs(specs)
    assert repr(got) == repr([spec.execute() for spec in specs])


def test_kernel_env_off_disables_seam(monkeypatch):
    specs = complexity_specs(
        Hypercube(4), p=0.5, router=WaypointRouter(), trials=6, seed=23
    )
    on = execute_specs(specs)
    monkeypatch.setenv("REPRO_KERNEL", "off")
    assert not supports_run_chunk(specs[0].workload)
    off = execute_specs(specs)
    assert repr(on) == repr(off)


class _BoomRouter(Router):
    name = "boom"

    def _route(self, oracle, source, target):
        raise RuntimeError("boom")


def test_kernel_wraps_per_trial_errors_with_spec_key():
    # p=1.0: every trial is connected, so the router runs and raises;
    # the kernel must attribute the failure to the right spec key, just
    # like spec.execute() does.
    specs = complexity_specs(
        Hypercube(4),
        p=1.0,
        router=_BoomRouter(),
        trials=4,
        seed=3,
        key=("boom-point",),
    )
    assert supports_run_chunk(specs[0].workload)
    with pytest.raises(TrialExecutionError) as kernel_err:
        execute_specs(specs)
    with pytest.raises(TrialExecutionError) as fallback_err:
        specs[0].execute()
    assert kernel_err.value.key == ("boom-point", 0)
    assert kernel_err.value.key == fallback_err.value.key
    assert "RuntimeError: boom" in kernel_err.value.detail
