"""Chunk-wide reachability equals the per-trial cluster BFS."""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels.bfs as bfs
from repro.graphs.debruijn import DeBruijn
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.kernels import (
    MaskEdgePercolation,
    batched_connected,
    build_edge_index,
    table_edge_masks,
)
from repro.percolation.cluster import connected
from repro.util.rng import derive_seed

SEEDS = [derive_seed(11, "kernel-bfs", t) for t in range(24)]


@pytest.mark.parametrize(
    "graph,p",
    [
        (Hypercube(5), 0.2),
        (Hypercube(5), 0.5),
        (Hypercube(5), 0.9),
        (Mesh(2, 6), 0.45),
        (Mesh(2, 6), 0.65),
        (DeBruijn(4), 0.5),
    ],
    ids=["hc-sub", "hc-mid", "hc-super", "mesh-sub", "mesh-super", "db"],
)
def test_batched_connected_matches_per_trial_bfs(graph, p):
    index = build_edge_index(graph)
    source, target = graph.canonical_pair()
    masks = table_edge_masks(p, SEEDS, index.num_edges)
    got = batched_connected(
        index, masks, index.code[source], index.code[target]
    )
    for row, seed, verdict in zip(masks, SEEDS, got.tolist()):
        model = MaskEdgePercolation(index, p, row)
        assert verdict == connected(model, source, target), seed


def test_same_source_and_target_is_trivially_connected():
    graph = Hypercube(4)
    index = build_edge_index(graph)
    masks = np.zeros((3, index.num_edges), dtype=bool)
    assert batched_connected(index, masks, 5, 5).all()


def test_blocked_sweep_agrees_with_single_block(monkeypatch):
    # Force multiple blocks through a tiny workspace cap; results must
    # not depend on the blocking.
    graph = Mesh(2, 5)
    index = build_edge_index(graph)
    source, target = graph.canonical_pair()
    masks = table_edge_masks(0.55, SEEDS, index.num_edges)
    whole = batched_connected(
        index, masks, index.code[source], index.code[target]
    )
    monkeypatch.setattr(bfs, "BLOCK_BYTES", 1)
    blocked = batched_connected(
        index, masks, index.code[source], index.code[target]
    )
    assert (whole == blocked).all()
