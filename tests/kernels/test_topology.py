"""Edge-order parity of the compiled topology indexes.

The batched mask kernels reproduce ``TablePercolation`` bit for bit
only if :class:`EdgeIndex` lists edges in exactly ``graph.edges()``
order — these tests pin every arithmetic builder (and the generic
walker) against the real enumeration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.complete import CompleteGraph
from repro.graphs.debruijn import DeBruijn
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh, Torus
from repro.kernels import build_edge_index
from repro.kernels.topology import MAX_INDEX_VERTICES

GRAPHS = [
    Hypercube(1),
    Hypercube(4),
    Hypercube(6),
    Mesh(1, 5),
    Mesh(2, 5),
    Mesh(3, 3),
    Torus(1, 4),
    Torus(2, 4),
    Torus(3, 3),
    DeBruijn(3),
    DeBruijn(5),
    CompleteGraph(8),  # no arithmetic builder: the generic walker
]


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_edge_order_matches_enumeration(graph):
    index = build_edge_index(graph)
    assert index is not None
    verts = index.verts
    compiled = [
        (verts[u], verts[v])
        for u, v in zip(index.edge_u.tolist(), index.edge_v.tolist())
    ]
    assert compiled == list(graph.edges())


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_vertex_codes_match_enumeration(graph):
    index = build_edge_index(graph)
    assert index.verts == list(graph.vertices())
    assert index.code == {v: i for i, v in enumerate(graph.vertices())}
    assert index.num_vertices == graph.num_vertices()
    assert index.num_edges == len(list(graph.edges()))


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_eid_maps_canonical_keys(graph):
    index = build_edge_index(graph)
    for e, (u, v) in enumerate(graph.edges()):
        assert index.eid[graph.edge_key(u, v)] == e


@pytest.mark.parametrize(
    "graph", [Hypercube(4), Mesh(2, 4), Torus(2, 3), DeBruijn(3)],
    ids=lambda g: g.name,
)
def test_incidence_lists_every_incident_edge(graph):
    index = build_edge_index(graph)
    inc_nbr, inc_eid, inc_valid = index.incidence()
    edges = list(graph.edges())
    for row, v in enumerate(index.verts):
        slots = {
            (index.verts[inc_nbr[row, s]], int(inc_eid[row, s]))
            for s in range(inc_nbr.shape[1])
            if inc_valid[row, s]
        }
        expected = {
            ((b if a == v else a), e)
            for e, (a, b) in enumerate(edges)
            if v in (a, b)
        }
        assert slots == expected
    # Padding slots must be masked out, never trusted.
    assert int(inc_valid.sum()) == 2 * len(edges)


def test_too_large_graph_declines():
    big = Hypercube(21)  # 2**21 > MAX_INDEX_VERTICES
    assert big.num_vertices() > MAX_INDEX_VERTICES
    assert build_edge_index(big) is None


def test_subclass_of_indexed_graph_uses_generic_walker():
    # A subclass may reorder neighbours (Torus reorders Mesh's), so the
    # arithmetic builders apply to exact types only; the walker is the
    # always-correct fallback.
    class Sub(Hypercube):
        pass

    index = build_edge_index(Sub(3))
    verts = index.verts
    compiled = [
        (verts[u], verts[v])
        for u, v in zip(index.edge_u.tolist(), index.edge_v.tolist())
    ]
    assert compiled == list(Sub(3).edges())


class _Edgeless(CompleteGraph):
    """Two isolated vertices — exercises the empty-edge-array path."""

    def neighbors(self, v):
        return []


def test_edgeless_graph_incidence_shape():
    index = build_edge_index(_Edgeless(2))
    assert index.num_edges == 0
    inc_nbr, inc_eid, inc_valid = index.incidence()
    assert inc_valid.shape == (2, 1)
    assert not inc_valid.any()
    assert inc_nbr.dtype == np.int64
