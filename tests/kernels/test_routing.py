"""Golden + property parity for the vectorized routing engines.

The routing stage of the chunk kernel replays each router's exact
probe sequence across all trials in lockstep, so every
:class:`RoutingResult` — success flag, query count, path, failure
reason — must be ``repr``-identical to ``router.route`` on the same
percolated graph.  The golden grid pins the supported ingredient
combinations (including budget-exhaustion boundaries and disconnected
trials); the hypothesis suite drives batched-frontier routing against
the per-trial reference over random graphs, masks and pairs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runtime.chunkexec as chunkexec
from repro.core.complexity import complexity_specs
from repro.graphs.explicit import ExplicitGraph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.kernels.routing import (
    register_router_kernel,
    router_kernel_for,
    routing_incidence,
)
from repro.kernels.topology import build_edge_index
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from repro.routers.waypoint import HypercubeWaypointRouter, WaypointRouter
from repro.runtime import TrialExecutionError
from repro.runtime.chunkexec import chunk_runner, execute_specs


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    chunkexec._COMPILED.clear()
    yield
    chunkexec._COMPILED.clear()


def _assert_parity(specs, *, routing="kernel"):
    runner = chunk_runner(specs[0].workload)
    assert runner is not None
    assert runner.stages()["routing"] == routing
    reference = [spec.execute() for spec in specs]
    got = execute_specs(specs)
    assert repr(got) == repr(reference)
    return got


CASES = [
    pytest.param(
        Hypercube(5), 0.6, LocalBFSRouter(), None, "exact",
        id="local-bfs-exact",
    ),
    pytest.param(
        Hypercube(5), 0.25, LocalBFSRouter(), 200, "none",
        id="local-bfs-disconnected-exhausted",
    ),
    pytest.param(
        Hypercube(5), 0.55, BidirectionalBFSRouter(), 100, "exact",
        id="bidirectional-budget",
    ),
    pytest.param(
        Hypercube(5), 0.25, BidirectionalBFSRouter(), 200, "none",
        id="bidirectional-disconnected",
    ),
    pytest.param(
        Hypercube(6), 0.55, BidirectionalBFSRouter(), None, "router",
        id="bidirectional-router-conditioning",
    ),
    pytest.param(
        Mesh(2, 6), 0.7, WaypointRouter(), 300, "exact",
        id="mesh-waypoint-budget",
    ),
    pytest.param(
        Mesh(2, 6), 0.6, WaypointRouter(max_radius=2), 300, "exact",
        id="waypoint-capped-gave-up",
    ),
    pytest.param(
        Hypercube(6), 0.6, HypercubeWaypointRouter(alpha=0.3), 200,
        "exact",
        id="hypercube-waypoint-alpha",
    ),
    pytest.param(
        Hypercube(5), 0.7, WaypointRouter(), 8, "none",
        id="waypoint-tiny-budget",
    ),
]


@pytest.mark.parametrize("graph,p,router,budget,conditioning", CASES)
def test_router_engine_matches_per_trial(
    graph, p, router, budget, conditioning
):
    specs = complexity_specs(
        graph,
        p=p,
        router=router,
        trials=16,
        seed=43,
        budget=budget,
        conditioning=conditioning,
        key=("routing-golden",),
    )
    _assert_parity(specs)


@pytest.mark.parametrize(
    "router",
    [LocalBFSRouter(), BidirectionalBFSRouter(), WaypointRouter()],
    ids=["local", "bidirectional", "waypoint"],
)
@pytest.mark.parametrize("budget", [1, 2, 3, 5, 8])
def test_budget_exhaustion_boundaries(router, budget):
    # Tiny budgets make almost every trial raise mid-neighbourhood;
    # the exact query count at the raise (and the tie between "budget
    # hit" and "target discovered on the same probe") must match the
    # per-trial oracle.
    specs = complexity_specs(
        Hypercube(4),
        p=0.6,
        router=router,
        trials=16,
        seed=71,
        budget=budget,
        conditioning="none",
        key=("budget-boundary",),
    )
    got = _assert_parity(specs)
    from repro.core.result import FailureReason

    assert any(
        r.value.result.failure is FailureReason.BUDGET for r in got
    )


@pytest.mark.parametrize(
    "router",
    [LocalBFSRouter(), BidirectionalBFSRouter(), WaypointRouter()],
    ids=["local", "bidirectional", "waypoint"],
)
def test_source_equals_target(router):
    graph = Hypercube(4)
    v = next(iter(graph.vertices()))
    specs = complexity_specs(
        graph,
        p=0.5,
        router=router,
        pair=(v, v),
        trials=4,
        seed=9,
        key=("self-pair",),
    )
    got = _assert_parity(specs)
    assert all(r.value.result.path == [v] for r in got)
    assert all(r.value.result.queries == 0 for r in got)


def test_kernel_declines_budget_below_one():
    # budget < 1 makes the per-trial ProbeOracle raise ValueError; the
    # kernel declines so that error keeps surfacing through the
    # unchanged per-trial path.
    index = build_edge_index(Hypercube(3))
    assert (
        router_kernel_for(LocalBFSRouter(), index, 0, 1, 0) is None
    )
    assert (
        router_kernel_for(LocalBFSRouter(), index, 0, 1, 1) is not None
    )


def test_waypoint_declines_on_disconnected_base_graph():
    # WaypointRouter needs a shortest path in the *base* graph; on a
    # disconnected pair that lookup fails.  The kernel declines at
    # compile time and the per-trial error surfaces unchanged.
    graph = ExplicitGraph(
        [(0, 1), (2, 3)], vertices=range(4), name="two-components"
    )
    index = build_edge_index(graph)
    assert router_kernel_for(WaypointRouter(), index, 0, 3, None) is None
    specs = complexity_specs(
        graph,
        p=1.0,
        router=WaypointRouter(),
        pair=(0, 3),
        trials=2,
        seed=5,
        conditioning="none",
        key=("disconnected-base",),
    )
    with pytest.raises(TrialExecutionError) as kernel_err:
        execute_specs(specs)
    with pytest.raises(TrialExecutionError) as fallback_err:
        specs[0].execute()
    assert kernel_err.value.key == fallback_err.value.key


class _SubclassedLocalBFS(LocalBFSRouter):
    """Same algorithm, different type: must not inherit the kernel."""


def test_unregistered_subclass_routes_per_trial_identically():
    specs = complexity_specs(
        Hypercube(4),
        p=0.6,
        router=_SubclassedLocalBFS(),
        trials=8,
        seed=13,
        budget=50,
        key=("subclass",),
    )
    _assert_parity(specs, routing="per-trial")


def test_register_router_kernel_is_exact_type():
    class _Custom(LocalBFSRouter):
        name = "custom"

    class _CustomChild(_Custom):
        name = "custom-child"

    sentinel = object()
    register_router_kernel(
        _Custom, lambda router, index, s, t, budget: sentinel
    )
    try:
        index = build_edge_index(Hypercube(3))
        assert router_kernel_for(_Custom(), index, 0, 1, None) is sentinel
        assert (
            router_kernel_for(_CustomChild(), index, 0, 1, None) is None
        )
    finally:
        from repro.kernels.routing import _ROUTER_KERNELS

        _ROUTER_KERNELS.pop(_Custom, None)


def test_routing_incidence_is_neighbor_ordered():
    graph = Hypercube(3)
    index = build_edge_index(graph)
    inc_nbr, inc_eid, inc_valid = routing_incidence(index)
    code, eid = index.code, index.eid
    for v in graph.vertices():
        c = code[v]
        row = [
            (code[w], eid[graph.edge_key(v, w)])
            for w in graph.neighbors(v)
        ]
        assert inc_valid[c].sum() == len(row)
        got = list(zip(inc_nbr[c, : len(row)], inc_eid[c, : len(row)]))
        assert [(int(a), int(b)) for a, b in got] == row
    # Padding carries sentinels, never a real vertex or edge id.
    assert (inc_nbr[~inc_valid] == index.num_vertices).all()
    assert (inc_eid[~inc_valid] == index.num_edges).all()


# -- hypothesis: random graphs x masks x pairs -------------------------


_ROUTERS = [LocalBFSRouter(), BidirectionalBFSRouter(), WaypointRouter()]


@st.composite
def _random_case(draw):
    n = draw(st.integers(min_value=3, max_value=9))
    # A spanning path keeps the base graph connected (WaypointRouter
    # needs a base shortest path); extra random edges vary the shape.
    spine = [(i, i + 1) for i in range(n - 1)]
    possible = [
        (i, j)
        for i in range(n)
        for j in range(i + 2, n)
    ]
    extra = draw(
        st.lists(
            st.sampled_from(possible), unique=True, max_size=len(possible)
        )
        if possible
        else st.just([])
    )
    source = draw(st.integers(min_value=0, max_value=n - 1))
    target = draw(st.integers(min_value=0, max_value=n - 1))
    p = draw(
        st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
    )
    budget = draw(st.one_of(st.none(), st.integers(1, 12)))
    router = draw(st.sampled_from(range(len(_ROUTERS))))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return (n, spine + extra, source, target, p, budget, router, seed)


@settings(max_examples=60, deadline=None)
@given(_random_case())
def test_batched_routing_equals_per_trial_probe_for_probe(case):
    n, edges, source, target, p, budget, router_i, seed = case
    graph = ExplicitGraph(edges, vertices=range(n), name="random")
    specs = complexity_specs(
        graph,
        p=p,
        router=_ROUTERS[router_i],
        pair=(source, target),
        trials=5,
        seed=seed,
        budget=budget,
        conditioning="none",
        key=("property",),
    )
    chunkexec._COMPILED.clear()
    runner = chunk_runner(specs[0].workload)
    assert runner is not None
    assert runner.stages()["routing"] == "kernel"
    reference = [spec.execute() for spec in specs]
    got = execute_specs(specs)
    assert repr(got) == repr(reference)
