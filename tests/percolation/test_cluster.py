"""Tests for repro.percolation.cluster, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.graphs.explicit import ExplicitGraph, cycle_graph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import (
    chemical_distance,
    component,
    component_sizes,
    connected,
    largest_component,
    largest_component_size,
)
from repro.percolation.models import HashPercolation, TablePercolation


def _as_networkx(model):
    """Build the open subgraph in networkx as an independent oracle."""
    g = nx.Graph()
    g.add_nodes_from(model.graph.vertices())
    for e in model.graph.edges():
        if model.is_open(*e):
            g.add_edge(*e)
    return g


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_component_sizes_match(self, seed):
        model = TablePercolation(Mesh(2, 8), 0.5, seed=seed)
        ours = component_sizes(model)
        theirs = sorted(
            (len(c) for c in nx.connected_components(_as_networkx(model))),
            reverse=True,
        )
        assert ours == theirs

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_connectivity_matches(self, seed):
        model = TablePercolation(Hypercube(5), 0.4, seed=seed)
        oracle = _as_networkx(model)
        vertices = list(model.graph.vertices())
        for u in vertices[::5]:
            for v in vertices[::7]:
                assert connected(model, u, v) == nx.has_path(oracle, u, v)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chemical_distance_matches(self, seed):
        model = TablePercolation(Mesh(2, 7), 0.7, seed=seed)
        oracle = _as_networkx(model)
        u = (0, 0)
        lengths = nx.single_source_shortest_path_length(oracle, u)
        for v in model.graph.vertices():
            ours = chemical_distance(model, u, v)
            theirs = lengths.get(v)
            assert ours == theirs


class TestComponent:
    def test_isolated_vertex(self):
        model = TablePercolation(path_graph(3), 0.0, seed=0)
        assert component(model, 1) == {1}

    def test_full_graph(self):
        model = TablePercolation(cycle_graph(7), 1.0, seed=0)
        assert component(model, 0) == set(range(7))

    def test_max_size_truncates(self):
        model = TablePercolation(path_graph(20), 1.0, seed=0)
        comp = component(model, 0, max_size=5)
        assert len(comp) == 5

    def test_unknown_vertex_raises(self):
        model = TablePercolation(path_graph(3), 1.0, seed=0)
        with pytest.raises(ValueError):
            component(model, 99)


class TestConnected:
    def test_self_connected(self):
        model = TablePercolation(path_graph(3), 0.0, seed=0)
        assert connected(model, 1, 1)

    def test_direct_edge(self):
        g = ExplicitGraph([(0, 1)])
        model = TablePercolation(g, 1.0, seed=0)
        assert connected(model, 0, 1)

    def test_blocked(self):
        model = TablePercolation(path_graph(2), 0.0, seed=0)
        assert not connected(model, 0, 2)

    def test_hash_model_works_too(self):
        model = HashPercolation(Hypercube(4), 1.0, seed=0)
        assert connected(model, 0, 15)


class TestChemicalDistance:
    def test_zero_for_same_vertex(self):
        model = TablePercolation(path_graph(4), 0.5, seed=0)
        assert chemical_distance(model, 2, 2) == 0

    def test_equals_graph_distance_at_p1(self):
        g = Mesh(2, 5)
        model = TablePercolation(g, 1.0, seed=0)
        assert chemical_distance(model, (0, 0), (4, 4)) == 8

    def test_none_when_disconnected(self):
        model = TablePercolation(path_graph(2), 0.0, seed=0)
        assert chemical_distance(model, 0, 2) is None

    def test_at_least_graph_distance(self):
        g = Mesh(2, 8)
        model = TablePercolation(g, 0.7, seed=1)
        for v in [(3, 3), (7, 7), (0, 5)]:
            d = chemical_distance(model, (0, 0), v)
            if d is not None:
                assert d >= g.distance((0, 0), v)


class TestLargestComponent:
    def test_everything_at_p1(self):
        model = TablePercolation(cycle_graph(9), 1.0, seed=0)
        assert largest_component_size(model) == 9
        assert largest_component(model) == set(range(9))

    def test_singletons_at_p0(self):
        model = TablePercolation(cycle_graph(9), 0.0, seed=0)
        assert largest_component_size(model) == 1

    def test_sizes_sum_to_n(self):
        model = TablePercolation(Mesh(2, 6), 0.5, seed=5)
        assert sum(component_sizes(model)) == 36

    def test_sizes_sorted_descending(self):
        model = TablePercolation(Mesh(2, 6), 0.4, seed=2)
        sizes = component_sizes(model)
        assert sizes == sorted(sizes, reverse=True)
