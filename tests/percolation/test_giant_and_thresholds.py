"""Tests for repro.percolation.giant and repro.percolation.thresholds."""

import math

import pytest

from repro.graphs.double_tree import DoubleBinaryTree
from repro.graphs.explicit import cycle_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.galton_watson import level_reach_probability
from repro.percolation.giant import (
    estimate_threshold,
    full_connectivity_scan,
    giant_fraction,
    giant_fraction_scan,
    pair_connectivity_scan,
)
from repro.percolation.models import TablePercolation
from repro.percolation.thresholds import (
    MESH_PC,
    double_tree_threshold,
    gnp_connectivity_threshold,
    gnp_giant_threshold,
    hypercube_connectivity_threshold,
    hypercube_giant_threshold,
    hypercube_routing_threshold,
    mesh_critical_probability,
)


class TestThresholdRegistry:
    def test_kesten_exact(self):
        assert mesh_critical_probability(2) == 0.5

    def test_tabulated_values_decreasing(self):
        values = [mesh_critical_probability(d) for d in sorted(MESH_PC)]
        assert values == sorted(values, reverse=True)

    def test_high_dimension_fallback(self):
        pc = mesh_critical_probability(12)
        assert 0.0 < pc < MESH_PC[7]
        assert pc == pytest.approx(1 / 23)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            mesh_critical_probability(0)

    def test_hypercube_thresholds_ordered(self):
        # giant (1/n)  <  routing (n^-1/2)  <  connectivity (1/2) for n > 4
        n = 16
        assert (
            hypercube_giant_threshold(n)
            < hypercube_routing_threshold(n)
            < hypercube_connectivity_threshold()
        )

    def test_double_tree_threshold(self):
        assert double_tree_threshold() == pytest.approx(1 / math.sqrt(2))

    def test_gnp_thresholds(self):
        assert gnp_giant_threshold(100) == 0.01
        assert gnp_connectivity_threshold(100) == pytest.approx(
            math.log(100) / 100
        )
        assert gnp_giant_threshold(100) < gnp_connectivity_threshold(100)


class TestGiantFraction:
    def test_full_graph(self):
        model = TablePercolation(cycle_graph(10), 1.0, seed=0)
        assert giant_fraction(model) == 1.0

    def test_empty_graph(self):
        model = TablePercolation(cycle_graph(10), 0.0, seed=0)
        assert giant_fraction(model) == pytest.approx(0.1)


class TestScans:
    def test_giant_scan_monotone_far_from_threshold(self):
        g = Mesh(2, 12)
        rows = giant_fraction_scan(g, ps=[0.1, 0.5, 0.9], trials=5, seed=1)
        fracs = [r["giant_fraction"] for r in rows]
        assert fracs[0] < fracs[2]
        assert fracs[2] > 0.9

    def test_giant_scan_row_schema(self):
        rows = giant_fraction_scan(Mesh(2, 6), ps=[0.5], trials=3, seed=0)
        assert set(rows[0]) == {
            "p",
            "giant_fraction",
            "ci_lo",
            "ci_hi",
            "second_fraction",
            "trials",
        }

    def test_second_cluster_small_when_supercritical(self):
        rows = giant_fraction_scan(Mesh(2, 15), ps=[0.8], trials=5, seed=2)
        assert rows[0]["second_fraction"] < 0.05

    def test_pair_connectivity_increases(self):
        g = DoubleBinaryTree(4)
        rows = pair_connectivity_scan(g, ps=[0.4, 0.95], trials=30, seed=3)
        assert rows[0]["pr_connected"] < rows[1]["pr_connected"]

    def test_pair_connectivity_matches_gw_recursion(self):
        # Lemma 6: Pr[x ~ y] in TT_n equals binary-GW level-n reach with p².
        depth, p = 4, 0.85
        g = DoubleBinaryTree(depth)
        rows = pair_connectivity_scan(g, ps=[p], trials=400, seed=4)
        exact = level_reach_probability(2, p * p, depth)
        estimate = rows[0]["pr_connected"]
        tolerance = 5 * math.sqrt(exact * (1 - exact) / 400)
        assert abs(estimate - exact) < tolerance

    def test_full_connectivity_scan_hypercube(self):
        g = Hypercube(4)
        rows = full_connectivity_scan(g, ps=[0.2, 0.95], trials=20, seed=5)
        assert rows[0]["pr_connected"] < rows[1]["pr_connected"]
        assert rows[1]["pr_connected"] > 0.8

    def test_scan_validation(self):
        with pytest.raises(ValueError):
            giant_fraction_scan(Mesh(2, 4), ps=[], trials=3, seed=0)
        with pytest.raises(ValueError):
            giant_fraction_scan(Mesh(2, 4), ps=[0.5], trials=0, seed=0)


class TestEstimateThreshold:
    def test_interpolates_crossing(self):
        rows = [
            {"p": 0.2, "y": 0.1},
            {"p": 0.4, "y": 0.3},
            {"p": 0.6, "y": 0.7},
        ]
        est = estimate_threshold(rows, "y", target=0.5)
        assert est == pytest.approx(0.5)

    def test_exact_hit(self):
        rows = [{"p": 0.1, "y": 0.0}, {"p": 0.3, "y": 0.5}, {"p": 0.5, "y": 1.0}]
        assert estimate_threshold(rows, "y", 0.5) == pytest.approx(0.3)

    def test_raises_without_crossing(self):
        rows = [{"p": 0.1, "y": 0.6}, {"p": 0.2, "y": 0.9}]
        with pytest.raises(ValueError):
            estimate_threshold(rows, "y", 0.5)

    def test_mesh_threshold_scan_near_half(self):
        # End-to-end sanity: p_c(ℤ²) = 1/2 should emerge from a coarse scan
        # on a finite box (finite-size effects allowed).
        g = Mesh(2, 16)
        rows = giant_fraction_scan(
            g, ps=[0.3, 0.4, 0.5, 0.6, 0.7], trials=8, seed=6
        )
        est = estimate_threshold(rows, "giant_fraction", target=0.4)
        assert 0.35 < est < 0.65
