"""Property suites for the structured fault models.

The fault-model seam promises three things (see
:mod:`repro.percolation.faults`): the determinism contract (pure
function of ``(seed, key)``, monotone-coupled in the dials), exact
structural semantics (a node fault kills exactly its incident edges;
an adversary never exceeds its budget), and sample-for-sample
agreement with the independent implementations it claims to match
(:class:`SitePercolation`).  Hypothesis drives all three across seeds
and parameters.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.clos import FatTree
from repro.graphs.hypercube import Hypercube
from repro.percolation.cluster import connected
from repro.percolation.faults import (
    AdversarialCutPercolation,
    CorrelatedFaultPercolation,
    NodeFaultPercolation,
)
from repro.percolation.site import SitePercolation
from repro.util.rng import derive_seed

SEEDS = st.integers(min_value=0, max_value=2**48)
PROBS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
SPREADS = st.floats(
    min_value=0.0, max_value=0.9, allow_nan=False, exclude_max=False
)


def _graph():
    return Hypercube(4)


def _open_set(model):
    return set(model.open_edges())


class TestNodeFaultPercolation:
    @given(seed=SEEDS, p=PROBS)
    @settings(max_examples=60)
    def test_same_seed_determinism(self, seed, p):
        g = _graph()
        a = NodeFaultPercolation(g, p, seed=seed)
        b = NodeFaultPercolation(g, p, seed=seed)
        assert a.failed_nodes() == b.failed_nodes()
        assert _open_set(a) == _open_set(b)

    @given(seed=SEEDS, p=st.floats(min_value=0.2, max_value=0.8))
    @settings(max_examples=60)
    def test_kills_exactly_incident_edges(self, seed, p):
        g = _graph()
        m = NodeFaultPercolation(g, p, seed=seed)
        killed = m.killed_edges()
        every = {g.edge_key(*e) for e in g.edges()}
        # Killed and open partition the edge set.
        assert killed | _open_set(m) == every
        assert killed & _open_set(m) == set()
        # Killed is exactly the incident set of the failed nodes...
        for e in killed:
            assert m.failed_nodes().intersection(e)
        # ...and every incident edge of a failed node is killed.
        for v in m.failed_nodes():
            for w in g.neighbors(v):
                assert g.edge_key(v, w) in killed
                assert not m.is_open(v, w)

    @given(seed=SEEDS, p=PROBS)
    @settings(max_examples=60)
    def test_matches_site_percolation_sample_for_sample(self, seed, p):
        # Two independent implementations of the same coin stream must
        # agree on every vertex and every edge, not just in law.
        g = _graph()
        node = NodeFaultPercolation(g, p, seed=seed)
        site = SitePercolation(g, p, seed=seed)
        for v in g.vertices():
            assert node.is_up(v) == site.is_up(v)
        for e in g.edges():
            assert node.is_open(*e) == site.is_open(*e)

    @given(seed=SEEDS, p_lo=PROBS, p_hi=PROBS)
    @settings(max_examples=60)
    def test_monotone_coupling_in_p(self, seed, p_lo, p_hi):
        if p_lo > p_hi:
            p_lo, p_hi = p_hi, p_lo
        g = _graph()
        lo = NodeFaultPercolation(g, p_lo, seed=seed)
        hi = NodeFaultPercolation(g, p_hi, seed=seed)
        assert hi.failed_nodes() <= lo.failed_nodes()
        assert _open_set(lo) <= _open_set(hi)

    @given(seed=SEEDS)
    @settings(max_examples=40)
    def test_pinned_never_fail(self, seed):
        g = _graph()
        pair = g.canonical_pair()
        m = NodeFaultPercolation(g, 0.0, seed=seed, pinned=pair)
        assert set(pair).isdisjoint(m.failed_nodes())
        assert all(m.is_up(v) for v in pair)
        # Everything unpinned died at p=0.
        assert len(m.failed_nodes()) == g.num_vertices() - 2

    def test_trial_streams_independent(self):
        # Seeds derived for distinct trial indices must give distinct
        # samples (the per-trial independence the runner relies on).
        g = Hypercube(6)
        outcomes = {
            NodeFaultPercolation(
                g, 0.5, seed=derive_seed(11, "complexity", t)
            ).failed_nodes()
            for t in range(16)
        }
        assert len(outcomes) == 16

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            NodeFaultPercolation(_graph(), 1.5, seed=0)


class TestCorrelatedFaultPercolation:
    @given(seed=SEEDS, rate=PROBS, spread=SPREADS)
    @settings(max_examples=60)
    def test_same_seed_determinism(self, seed, rate, spread):
        g = _graph()
        a = CorrelatedFaultPercolation(
            g, 0.9, seed=seed, epicenter_rate=rate, spread=spread
        )
        b = CorrelatedFaultPercolation(
            g, 0.9, seed=seed, epicenter_rate=rate, spread=spread
        )
        assert a.dead_nodes() == b.dead_nodes()
        assert _open_set(a) == _open_set(b)

    @given(seed=SEEDS, rate=PROBS)
    @settings(max_examples=60)
    def test_spread_zero_is_iid_node_faults(self, seed, rate):
        g = _graph()
        m = CorrelatedFaultPercolation(
            g, 1.0, seed=seed, epicenter_rate=rate, spread=0.0
        )
        assert m.dead_nodes() == m.epicenters()

    @given(seed=SEEDS)
    @settings(max_examples=40)
    def test_no_epicenters_no_deaths(self, seed):
        g = _graph()
        m = CorrelatedFaultPercolation(
            g, 1.0, seed=seed, epicenter_rate=0.0, spread=0.5
        )
        assert m.epicenters() == frozenset()
        assert m.dead_nodes() == frozenset()
        assert len(_open_set(m)) == g.num_edges()

    @given(seed=SEEDS, rate=PROBS, s_lo=SPREADS, s_hi=SPREADS)
    @settings(max_examples=60)
    def test_monotone_coupling_in_spread(self, seed, rate, s_lo, s_hi):
        if s_lo > s_hi:
            s_lo, s_hi = s_hi, s_lo
        g = _graph()
        lo = CorrelatedFaultPercolation(
            g, 1.0, seed=seed, epicenter_rate=rate, spread=s_lo
        )
        hi = CorrelatedFaultPercolation(
            g, 1.0, seed=seed, epicenter_rate=rate, spread=s_hi
        )
        # Same epicenters, only the balls grow.
        assert lo.epicenters() == hi.epicenters()
        assert lo.dead_nodes() <= hi.dead_nodes()

    @given(seed=SEEDS, p_lo=PROBS, p_hi=PROBS)
    @settings(max_examples=60)
    def test_monotone_coupling_in_edge_p(self, seed, p_lo, p_hi):
        if p_lo > p_hi:
            p_lo, p_hi = p_hi, p_lo
        g = _graph()
        lo = CorrelatedFaultPercolation(
            g, p_lo, seed=seed, epicenter_rate=0.1, spread=0.3
        )
        hi = CorrelatedFaultPercolation(
            g, p_hi, seed=seed, epicenter_rate=0.1, spread=0.3
        )
        assert _open_set(lo) <= _open_set(hi)

    @given(seed=SEEDS, rate=PROBS, spread=SPREADS)
    @settings(max_examples=60)
    def test_dead_endpoints_close_edges(self, seed, rate, spread):
        g = _graph()
        m = CorrelatedFaultPercolation(
            g, 1.0, seed=seed, epicenter_rate=rate, spread=spread
        )
        for e in g.edges():
            if m.dead_nodes().intersection(e):
                assert not m.is_open(*e)
            else:
                assert m.is_open(*e)  # p=1: survival is the only gate

    @given(seed=SEEDS)
    @settings(max_examples=40)
    def test_pinned_survive_inside_a_ball(self, seed):
        g = _graph()
        pair = g.canonical_pair()
        m = CorrelatedFaultPercolation(
            g,
            1.0,
            seed=seed,
            epicenter_rate=1.0,
            spread=0.0,
            pinned=pair,
        )
        assert set(pair).isdisjoint(m.dead_nodes())
        assert all(m.is_up(v) for v in pair)

    def test_rejects_bad_parameters(self):
        g = _graph()
        with pytest.raises(ValueError):
            CorrelatedFaultPercolation(
                g, 0.5, seed=0, epicenter_rate=1.5, spread=0.0
            )
        with pytest.raises(ValueError):
            CorrelatedFaultPercolation(
                g, 0.5, seed=0, epicenter_rate=0.5, spread=1.0
            )


class TestAdversarialCutPercolation:
    @given(seed=SEEDS, budget=st.integers(min_value=0, max_value=12))
    @settings(max_examples=60)
    def test_never_exceeds_budget(self, seed, budget):
        g = FatTree(4)
        m = AdversarialCutPercolation(g, 1.0, seed=seed, budget=budget)
        removed = m.removed_edges()
        assert len(removed) <= budget
        every = {g.edge_key(*e) for e in g.edges()}
        assert set(removed) <= every
        assert len(set(removed)) == len(removed)  # no double spend
        for e in removed:
            assert not m.is_open(*e)

    @given(budget=st.integers(min_value=0, max_value=8))
    @settings(max_examples=30)
    def test_prefix_monotone_in_budget(self, budget):
        g = FatTree(4)
        small = AdversarialCutPercolation(g, 1.0, seed=0, budget=budget)
        large = AdversarialCutPercolation(
            g, 1.0, seed=0, budget=budget + 1
        )
        prefix = large.removed_edges()[: len(small.removed_edges())]
        assert prefix == small.removed_edges()

    @given(seed=SEEDS, p=PROBS)
    @settings(max_examples=60)
    def test_placement_ignores_coins(self, seed, p):
        # The adversary sees topology and pair, never the randomness:
        # removals must not depend on seed or p.
        g = FatTree(4)
        m = AdversarialCutPercolation(g, p, seed=seed, budget=2)
        baseline = AdversarialCutPercolation(g, 1.0, seed=0, budget=2)
        assert m.removed_edges() == baseline.removed_edges()

    @given(seed=SEEDS, p_lo=PROBS, p_hi=PROBS)
    @settings(max_examples=60)
    def test_monotone_coupling_in_p(self, seed, p_lo, p_hi):
        if p_lo > p_hi:
            p_lo, p_hi = p_hi, p_lo
        g = FatTree(4)
        lo = AdversarialCutPercolation(g, p_lo, seed=seed, budget=1)
        hi = AdversarialCutPercolation(g, p_hi, seed=seed, budget=1)
        assert _open_set(lo) <= _open_set(hi)

    def test_finds_the_uplink_cut(self):
        # FatTree(k) pairs are separated by the k/2 uplinks of the
        # source edge switch; the greedy adversary must find that cut
        # with exactly k/2 removals, then stop spending.
        g = FatTree(4)
        m = AdversarialCutPercolation(g, 1.0, seed=0, budget=10)
        assert len(m.removed_edges()) == 2
        assert not connected(m, *m.pair)
        source = g.canonical_pair()[0]
        for e in m.removed_edges():
            assert source in e

    def test_random_damage_of_equal_mass_rarely_severs(self):
        # The E17 contrast in miniature: budget-2 targeted removal
        # always severs; 2 random removals almost never do.
        g = FatTree(6)
        cut = g.k // 2  # 3
        m = AdversarialCutPercolation(g, 1.0, seed=0, budget=cut)
        assert not connected(m, *m.pair)
        p_matched = (g.num_edges() - cut) / g.num_edges()
        severed = sum(
            not connected(
                AdversarialCutPercolation(
                    g, p_matched, seed=s, budget=0
                ),
                *g.canonical_pair(),
            )
            for s in range(30)
        )
        assert severed <= 3

    def test_background_fraction_matches_p(self):
        g = Hypercube(9)  # 2304 edges; budget 0 → pure i.i.d.
        p = 0.4
        m = AdversarialCutPercolation(g, p, seed=5, budget=0)
        frac = m.num_open_edges() / g.num_edges()
        assert abs(frac - p) < 5 * math.sqrt(
            p * (1 - p) / g.num_edges()
        )

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            AdversarialCutPercolation(FatTree(4), 1.0, seed=0, budget=-1)

    def test_self_probe_spends_nothing(self):
        g = FatTree(4)
        v = ("edge", 0, 0)
        m = AdversarialCutPercolation(
            g, 1.0, seed=0, budget=5, pair=(v, v)
        )
        assert m.removed_edges() == ()
