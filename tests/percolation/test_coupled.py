"""Tests for repro.percolation.coupled — exact coupled thresholds."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.explicit import ExplicitGraph, cycle_graph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import connected
from repro.percolation.coupled import (
    edge_level,
    giant_threshold,
    pair_threshold,
    threshold_sample,
)
from repro.percolation.models import HashPercolation


class TestEdgeLevel:
    def test_matches_hash_model(self):
        g = Hypercube(5)
        seed = 3
        for e in list(g.edges())[:40]:
            level = edge_level(g, seed, *e)
            below = HashPercolation(g, max(0.0, level - 1e-9), seed)
            above = HashPercolation(g, min(1.0, level + 1e-9), seed)
            assert not below.is_open(*e)
            assert above.is_open(*e)

    def test_orientation_independent(self):
        g = cycle_graph(6)
        assert edge_level(g, 0, 0, 1) == edge_level(g, 0, 1, 0)


class TestPairThreshold:
    def test_path_graph_is_max_of_levels(self):
        g = path_graph(5)
        seed = 7
        levels = [edge_level(g, seed, i, i + 1) for i in range(5)]
        assert pair_threshold(g, seed, 0, 5) == pytest.approx(max(levels))

    def test_cycle_is_minimax(self):
        # two disjoint routes: threshold = min over routes of max level
        g = cycle_graph(6)
        seed = 11
        cw = [edge_level(g, seed, i, (i + 1) % 6) for i in range(3)]
        ccw = [edge_level(g, seed, (i + 3) % 6, (i + 4) % 6) for i in range(3)]
        expected = min(max(cw), max(ccw))
        assert pair_threshold(g, seed, 0, 3) == pytest.approx(expected)

    def test_same_vertex(self):
        assert pair_threshold(path_graph(2), 0, 1, 1) == 0.0

    def test_disconnected_graph_infinite(self):
        g = ExplicitGraph([(0, 1), (2, 3)])
        assert pair_threshold(g, 0, 0, 3) == math.inf

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20)
    def test_consistent_with_hash_percolation(self, seed):
        """p > threshold ⇔ connected under HashPercolation(p, seed)."""
        g = Mesh(2, 4)
        u, v = g.canonical_pair()
        threshold = pair_threshold(g, seed, u, v)
        for delta in (-0.05, 0.05):
            p = threshold + delta
            if not 0.0 <= p <= 1.0:
                continue
            model = HashPercolation(g, p, seed)
            assert connected(model, u, v) == (delta > 0)

    def test_threshold_distribution_on_hypercube(self):
        # the median pair threshold sits between the giant (1/n) and
        # connectivity (1/2 at the corner: needs an open incident edge)
        g = Hypercube(6)
        u, v = g.canonical_pair()
        samples = [pair_threshold(g, s, u, v) for s in range(60)]
        samples.sort()
        median = samples[len(samples) // 2]
        assert 1 / 6 < median < 0.6


class TestGiantThreshold:
    def test_full_fraction_on_path_is_max(self):
        g = path_graph(4)
        seed = 5
        levels = [edge_level(g, seed, i, i + 1) for i in range(4)]
        assert giant_threshold(g, seed, 1.0) == pytest.approx(max(levels))

    def test_small_fraction_trivial(self):
        g = path_graph(4)
        assert giant_threshold(g, 0, fraction=0.1) == 0.0

    def test_monotone_in_fraction(self):
        g = Mesh(2, 6)
        t_half = giant_threshold(g, 1, 0.5)
        t_full = giant_threshold(g, 1, 1.0)
        assert t_half <= t_full

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            giant_threshold(path_graph(2), 0, 0.0)

    def test_consistency_with_largest_component(self):
        from repro.percolation.cluster import largest_component_size

        g = Mesh(2, 5)
        seed = 9
        threshold = giant_threshold(g, seed, 0.6)
        target = 0.6 * g.num_vertices()
        just_below = HashPercolation(g, threshold - 1e-9, seed)
        just_above = HashPercolation(g, threshold + 1e-9, seed)
        assert largest_component_size(just_below) < target
        assert largest_component_size(just_above) >= target


class TestThresholdSample:
    def test_rows_and_determinism(self):
        g = Mesh(2, 5)
        rows1 = threshold_sample(g, trials=5, seed=1, giant_fraction=0.5)
        rows2 = threshold_sample(g, trials=5, seed=1, giant_fraction=0.5)
        assert rows1 == rows2
        assert all("giant_threshold" in r for r in rows1)

    def test_cdf_matches_direct_scan(self):
        # empirical CDF of pair thresholds == pair-connectivity curve
        g = cycle_graph(8)
        u, v = 0, 4
        trials = 300
        rows = threshold_sample(g, trials=trials, seed=2, pair=(u, v))
        thresholds = sorted(r["pair_threshold"] for r in rows)
        p = 0.7
        cdf_at_p = sum(1 for t in thresholds if t < p) / trials
        # direct MC with the same model family
        hits = 0
        from repro.util.rng import derive_seed

        for t in range(trials):
            model = HashPercolation(g, p, derive_seed(2, "coupled", t))
            hits += connected(model, u, v)
        assert cdf_at_p == pytest.approx(hits / trials)

    def test_validates_trials(self):
        with pytest.raises(ValueError):
            threshold_sample(path_graph(2), trials=0, seed=0)
