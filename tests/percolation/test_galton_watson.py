"""Tests for repro.percolation.galton_watson.

Closed forms are checked against exact algebra (b=2 admits a quadratic)
and against Monte-Carlo simulation of the branching process.
"""

import math
import random

import pytest

from repro.percolation.galton_watson import (
    critical_probability,
    expected_subcritical_progeny,
    extinction_probability,
    level_reach_probability,
    survival_probability,
)


def _simulate_reach(b, p, depth, trials, seed):
    """Monte-Carlo estimate of root-to-level-`depth` survival."""
    rng = random.Random(seed)
    hits = 0
    for _ in range(trials):
        generation = 1
        for _level in range(depth):
            # each individual has Binomial(b, p) children; we only need
            # whether the next generation is nonempty, but tracking counts
            # (capped) keeps the estimate exact.
            nxt = 0
            for _ in range(min(generation, 500)):
                for _ in range(b):
                    if rng.random() < p:
                        nxt += 1
            generation = nxt
            if generation == 0:
                break
        if generation > 0:
            hits += 1
    return hits / trials


class TestCriticalProbability:
    def test_binary(self):
        assert critical_probability(2) == 0.5

    def test_rejects_bad_b(self):
        with pytest.raises(ValueError):
            critical_probability(0)


class TestSurvival:
    def test_zero_below_critical(self):
        assert survival_probability(2, 0.3) == pytest.approx(0.0, abs=1e-9)
        assert survival_probability(2, 0.5) == pytest.approx(0.0, abs=1e-5)

    def test_closed_form_binary(self):
        # For b=2, θ solves θ = 1-(1-pθ)²  ⇒  θ = (2p-1)/p² for p > 1/2.
        for p in [0.6, 0.75, 0.9, 1.0]:
            expected = (2 * p - 1) / (p * p)
            assert survival_probability(2, p) == pytest.approx(expected, abs=1e-9)

    def test_one_at_p_one_binary(self):
        assert survival_probability(2, 1.0) == pytest.approx(1.0)

    def test_extinction_complements_survival(self):
        for p in [0.2, 0.5, 0.8]:
            assert extinction_probability(3, p) + survival_probability(
                3, p
            ) == pytest.approx(1.0)

    def test_monotone_in_p(self):
        values = [survival_probability(2, p) for p in [0.5, 0.6, 0.7, 0.8, 0.9]]
        assert values == sorted(values)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            survival_probability(2, 1.2)


class TestLevelReach:
    def test_depth_zero_is_certain(self):
        assert level_reach_probability(2, 0.1, 0) == 1.0

    def test_depth_one_binary(self):
        # reach level 1 iff at least one of 2 edges open: 1-(1-p)^2
        p = 0.4
        assert level_reach_probability(2, p, 1) == pytest.approx(
            1 - (1 - p) ** 2
        )

    def test_decreasing_in_depth(self):
        probs = [level_reach_probability(2, 0.55, d) for d in range(8)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_converges_to_survival(self):
        p = 0.7
        deep = level_reach_probability(2, p, 300)
        assert deep == pytest.approx(survival_probability(2, p), abs=1e-6)

    def test_subcritical_decays_like_mean_power(self):
        # below criticality Pr[reach n] ≈ C (bp)^n
        b, p = 2, 0.3
        q10 = level_reach_probability(b, p, 10)
        q11 = level_reach_probability(b, p, 11)
        assert q11 / q10 == pytest.approx(b * p, rel=0.1)

    def test_matches_monte_carlo(self):
        b, p, depth = 2, 0.6, 6
        exact = level_reach_probability(b, p, depth)
        estimate = _simulate_reach(b, p, depth, trials=4000, seed=0)
        assert abs(exact - estimate) < 5 * math.sqrt(exact * (1 - exact) / 4000)

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            level_reach_probability(2, 0.5, -1)


class TestSubcriticalProgeny:
    def test_closed_form(self):
        assert expected_subcritical_progeny(2, 0.25) == pytest.approx(2.0)

    def test_blows_up_at_critical(self):
        with pytest.raises(ValueError):
            expected_subcritical_progeny(2, 0.5)

    def test_grows_towards_critical(self):
        values = [expected_subcritical_progeny(2, p) for p in [0.1, 0.3, 0.45]]
        assert values == sorted(values)
