"""Tests for site percolation and cluster-diameter estimation."""

import math

import pytest

from repro.graphs.explicit import cycle_graph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import (
    approx_cluster_diameter,
    cluster_eccentricity,
    component,
    connected,
)
from repro.percolation.models import TablePercolation
from repro.percolation.site import SitePercolation


class TestSitePercolation:
    def test_p1_everything_open(self):
        g = Hypercube(4)
        model = SitePercolation(g, 1.0, seed=0)
        assert all(model.is_open(*e) for e in g.edges())

    def test_p0_everything_closed_except_pinned(self):
        g = path_graph(3)
        model = SitePercolation(g, 0.0, seed=0, pinned=(0, 1))
        assert model.is_open(0, 1)
        assert not model.is_open(1, 2)

    def test_deterministic(self):
        g = Mesh(2, 5)
        m1 = SitePercolation(g, 0.6, seed=4)
        m2 = SitePercolation(g, 0.6, seed=4)
        assert all(m1.is_open(*e) == m2.is_open(*e) for e in g.edges())

    def test_dead_vertex_kills_all_incident_edges(self):
        g = Hypercube(5)
        model = SitePercolation(g, 0.5, seed=1)
        for v in range(16):
            if not model.is_up(v):
                assert model.open_neighbors(v) == []
                for w in g.neighbors(v):
                    assert not model.is_open(v, w)

    def test_up_fraction_matches_p(self):
        g = Hypercube(10)
        p = 0.35
        model = SitePercolation(g, p, seed=2)
        ups = sum(model.is_up(v) for v in g.vertices())
        n = g.num_vertices()
        assert abs(ups / n - p) < 5 * math.sqrt(p * (1 - p) / n)

    def test_pinned_vertices_validated(self):
        with pytest.raises(ValueError):
            SitePercolation(path_graph(2), 0.5, seed=0, pinned=(99,))

    def test_open_neighbors_consistent_with_is_open(self):
        g = Mesh(2, 5)
        model = SitePercolation(g, 0.7, seed=3)
        for v in g.vertices():
            expected = [w for w in g.neighbors(v) if model.is_open(v, w)]
            assert model.open_neighbors(v) == expected

    def test_site_harsher_than_bond_at_same_p(self):
        # Pr[edge open] = p^2 under site vs p under bond: cluster of a
        # pinned source is stochastically smaller.  Check on averages.
        g = Mesh(2, 8)
        p = 0.7
        site_sizes = []
        bond_sizes = []
        for seed in range(20):
            site = SitePercolation(g, p, seed=seed, pinned=((0, 0),))
            bond = TablePercolation(g, p, seed=seed)
            site_sizes.append(len(component(site, (0, 0))))
            bond_sizes.append(len(component(bond, (0, 0))))
        assert sum(site_sizes) < sum(bond_sizes)

    def test_routers_work_unchanged(self):
        from repro.routers.bfs import LocalBFSRouter

        g = Hypercube(5)
        u, v = g.canonical_pair()
        model = SitePercolation(g, 0.8, seed=5, pinned=(u, v))
        result = LocalBFSRouter().route(model, u, v)
        assert result.success == connected(model, u, v)


class TestClusterDiameter:
    def test_eccentricity_full_cycle(self):
        g = cycle_graph(10)
        model = TablePercolation(g, 1.0, seed=0)
        ecc, far = cluster_eccentricity(model, 0)
        assert ecc == 5
        assert far == 5

    def test_eccentricity_isolated(self):
        g = path_graph(3)
        model = TablePercolation(g, 0.0, seed=0)
        assert cluster_eccentricity(model, 1) == (0, 1)

    def test_two_sweep_exact_on_path(self):
        g = path_graph(9)
        model = TablePercolation(g, 1.0, seed=0)
        # starting mid-path, one sweep reaches an end, second spans it
        assert approx_cluster_diameter(model, 4, sweeps=2) == 9

    def test_lower_bound_property(self):
        g = Mesh(2, 7)
        model = TablePercolation(g, 0.7, seed=1)
        estimate = approx_cluster_diameter(model, (3, 3), sweeps=2)
        comp = component(model, (3, 3))
        # exact diameter of the cluster via all-pairs BFS
        from repro.percolation.cluster import chemical_distance

        exact = max(
            chemical_distance(model, a, b) for a in comp for b in comp
        )
        assert estimate <= exact
        assert estimate >= exact / 2  # two-sweep guarantee

    def test_rejects_zero_sweeps(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(ValueError):
            approx_cluster_diameter(model, 0, sweeps=0)

    def test_percolated_diameter_at_least_full_graph_distance(self):
        g = Mesh(2, 8)
        model = TablePercolation(g, 0.85, seed=2)
        comp = component(model, (0, 0))
        if len(comp) > 30:
            estimate = approx_cluster_diameter(model, (0, 0))
            assert estimate >= 7  # spans most of the box, detours only add
