"""Tests for repro.percolation.models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.complete import CompleteGraph
from repro.graphs.explicit import cycle_graph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.models import (
    GnpPercolation,
    HashPercolation,
    TablePercolation,
)


class TestHashPercolation:
    def test_deterministic(self):
        g = Hypercube(6)
        m1 = HashPercolation(g, 0.5, seed=11)
        m2 = HashPercolation(g, 0.5, seed=11)
        assert all(m1.is_open(*e) == m2.is_open(*e) for e in g.edges())

    def test_orientation_independent(self):
        g = Hypercube(6)
        m = HashPercolation(g, 0.5, seed=1)
        for e in list(g.edges())[:50]:
            u, v = e
            assert m.is_open(u, v) == m.is_open(v, u)

    def test_extreme_probabilities(self):
        g = Mesh(2, 4)
        all_open = HashPercolation(g, 1.0, seed=0)
        all_closed = HashPercolation(g, 0.0, seed=0)
        for e in g.edges():
            assert all_open.is_open(*e)
            assert not all_closed.is_open(*e)

    def test_open_fraction_matches_p(self):
        g = Hypercube(9)  # 2304 edges
        p = 0.4
        m = HashPercolation(g, p, seed=5)
        edges = list(g.edges())
        frac = sum(m.is_open(*e) for e in edges) / len(edges)
        assert abs(frac - p) < 5 * math.sqrt(p * (1 - p) / len(edges))

    def test_seeds_decorrelate(self):
        g = Hypercube(7)
        m1 = HashPercolation(g, 0.5, seed=1)
        m2 = HashPercolation(g, 0.5, seed=2)
        agree = sum(m1.is_open(*e) == m2.is_open(*e) for e in g.edges())
        total = g.num_edges()
        assert abs(agree / total - 0.5) < 5 * math.sqrt(0.25 / total)

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50)
    def test_monotone_coupling_in_p(self, seed, p1, p2):
        g = Hypercube(4)
        lo, hi = min(p1, p2), max(p1, p2)
        m_lo = HashPercolation(g, lo, seed=seed)
        m_hi = HashPercolation(g, hi, seed=seed)
        for e in g.edges():
            if m_lo.is_open(*e):
                assert m_hi.is_open(*e)

    def test_open_neighbors_subset(self):
        g = Mesh(2, 5)
        m = HashPercolation(g, 0.6, seed=3)
        for v in [(0, 0), (2, 2), (4, 4)]:
            opens = m.open_neighbors(v)
            assert set(opens) <= set(g.neighbors(v))
            assert m.open_degree(v) == len(opens)

    def test_path_is_open(self):
        g = path_graph(3)
        m = HashPercolation(g, 1.0, seed=0)
        assert m.path_is_open([0, 1, 2, 3])
        m0 = HashPercolation(g, 0.0, seed=0)
        assert not m0.path_is_open([0, 1])
        assert m0.path_is_open([2])  # empty edge set

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            HashPercolation(path_graph(2), 1.5, seed=0)


class TestTablePercolation:
    def test_matches_its_own_index(self):
        g = Mesh(2, 6)
        m = TablePercolation(g, 0.5, seed=7)
        for v in g.vertices():
            for w in g.neighbors(v):
                assert (w in m.open_neighbors(v)) == m.is_open(v, w)

    def test_extremes(self):
        g = cycle_graph(10)
        assert TablePercolation(g, 1.0, seed=0).num_open_edges() == 10
        assert TablePercolation(g, 0.0, seed=0).num_open_edges() == 0

    def test_deterministic_given_seed(self):
        g = Mesh(2, 5)
        m1 = TablePercolation(g, 0.5, seed=9)
        m2 = TablePercolation(g, 0.5, seed=9)
        assert m1.open_edges() == m2.open_edges()

    def test_open_fraction_matches_p(self):
        g = Mesh(2, 30)  # 1740 edges
        p = 0.55
        m = TablePercolation(g, p, seed=2)
        frac = m.num_open_edges() / g.num_edges()
        assert abs(frac - p) < 5 * math.sqrt(p * (1 - p) / g.num_edges())

    def test_adjacency_is_symmetric(self):
        g = Mesh(2, 5)
        m = TablePercolation(g, 0.5, seed=4)
        for v in g.vertices():
            for w in m.open_neighbors(v):
                assert v in m.open_neighbors(w)

    def test_isolated_vertex_has_no_open_neighbors(self):
        g = path_graph(2)
        m = TablePercolation(g, 0.0, seed=0)
        assert m.open_neighbors(1) == []


class TestGnpPercolation:
    def test_graph_is_complete(self):
        m = GnpPercolation(n=20, p=0.2, seed=0)
        assert isinstance(m.graph, CompleteGraph)
        assert m.graph.num_vertices() == 20

    def test_deterministic(self):
        m1 = GnpPercolation(n=40, p=0.1, seed=5)
        m2 = GnpPercolation(n=40, p=0.1, seed=5)
        assert m1._open == m2._open

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.05
        total = n * (n - 1) // 2
        m = GnpPercolation(n=n, p=p, seed=1)
        expected = total * p
        assert abs(m.num_open_edges() - expected) < 5 * math.sqrt(
            total * p * (1 - p)
        )

    def test_is_open_consistency(self):
        m = GnpPercolation(n=30, p=0.2, seed=3)
        for i in range(30):
            for j in m.open_neighbors(i):
                assert m.is_open(i, j)
                assert m.is_open(j, i)

    def test_self_pair_closed(self):
        m = GnpPercolation(n=10, p=1.0, seed=0)
        assert not m.is_open(3, 3)

    def test_p_one_is_complete(self):
        m = GnpPercolation(n=12, p=1.0, seed=0)
        assert m.num_open_edges() == 66
        assert sorted(m.open_neighbors(0)) == list(range(1, 12))

    def test_p_zero_is_empty(self):
        m = GnpPercolation(n=12, p=0.0, seed=0)
        assert m.num_open_edges() == 0

    def test_mean_degree_scaling(self):
        # G(n, c/n) has mean degree ~ c.
        n, c = 500, 3.0
        m = GnpPercolation(n=n, p=c / n, seed=8)
        mean_degree = 2 * m.num_open_edges() / n
        assert 2.0 < mean_degree < 4.0
