"""Tests for repro.analysis.theory."""

import math

import pytest

from repro.analysis.theory import (
    double_tree_connection_probability,
    gnp_giant_fraction,
    gnp_local_lower_bound,
    gnp_oracle_lower_bound,
    hypercube_eta_series_ratio,
    log10_ak_bound,
    log10_hypercube_eta,
    log10_hypercube_lower_bound_queries,
    theorem3ii_success_probability,
    theorem7_bound,
)


class TestHypercubeBounds:
    def test_series_ratio_formula(self):
        assert hypercube_eta_series_ratio(16, 0.75, 0.2) == pytest.approx(
            16 ** (1 + 0.4 - 1.5)
        )

    def test_series_converges_iff_beta_small(self):
        assert hypercube_eta_series_ratio(100, 0.8, 0.25) < 1
        assert hypercube_eta_series_ratio(100, 0.8, 0.35) > 1

    def test_eta_decreases_with_alpha(self):
        etas = [log10_hypercube_eta(64, a, 0.1) for a in (0.7, 0.8, 0.9)]
        assert etas == sorted(etas, reverse=True)

    def test_eta_diverging_series_raises(self):
        with pytest.raises(ValueError):
            log10_hypercube_eta(64, 0.6, 0.4)

    def test_eta_is_tiny(self):
        # l = n^β = 2^6 = 64 flips of weight n^{β-α} each
        assert log10_hypercube_eta(2**20, 0.85, 0.3) < -50

    def test_lower_bound_queries_grow_with_n(self):
        qs = [
            log10_hypercube_lower_bound_queries(n, 0.8, 0.2)
            for n in (64, 256, 1024)
        ]
        assert qs == sorted(qs)

    def test_lower_bound_superpolynomial(self):
        # 2^{Ω(n^β)}: at n = 2^24, β = 0.3 the bound exceeds n^20
        n = 2**24
        lb = log10_hypercube_lower_bound_queries(n, 0.85, 0.3)
        assert lb > 20 * math.log10(n)

    def test_ak_bound_log_matches_exact(self):
        from repro.analysis.path_counting import ak_bound

        n, l, k = 8, 4, 3
        assert log10_ak_bound(n, l, k) == pytest.approx(
            math.log10(ak_bound(n, l, k))
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            log10_hypercube_eta(1, 0.8, 0.2)
        with pytest.raises(ValueError):
            log10_hypercube_lower_bound_queries(64, 1.5, 0.2)


class TestTheorem3ii:
    def test_probability_increases_with_n(self):
        ps = [theorem3ii_success_probability(n, 0.3) for n in (4, 16, 64)]
        assert ps == sorted(ps)

    def test_tends_to_one(self):
        assert theorem3ii_success_probability(10**4, 0.4) > 0.999

    def test_rejects_alpha_beyond_half(self):
        with pytest.raises(ValueError):
            theorem3ii_success_probability(16, 0.6)


class TestDoubleTree:
    def test_depth_zero(self):
        assert double_tree_connection_probability(0.9, 0) == 1.0

    def test_monotone_in_p(self):
        values = [
            double_tree_connection_probability(p, 6)
            for p in (0.5, 0.7, 0.8, 0.95)
        ]
        assert values == sorted(values)

    def test_subcritical_vanishes(self):
        # p = 0.6 < 1/√2: deep trees disconnect
        assert double_tree_connection_probability(0.6, 60) < 1e-3

    def test_supercritical_persists(self):
        # p = 0.85 > 1/√2: limit is positive
        deep = double_tree_connection_probability(0.85, 200)
        deeper = double_tree_connection_probability(0.85, 400)
        assert deep > 0.2
        assert deep == pytest.approx(deeper, abs=1e-6)

    def test_theorem7_bound_linear_in_t(self):
        b1 = theorem7_bound(0.8, 20, 10)
        b2 = theorem7_bound(0.8, 20, 20)
        assert b2 == pytest.approx(2 * b1)

    def test_theorem7_bound_capped(self):
        assert theorem7_bound(0.8, 4, 10**9) == 1.0

    def test_theorem7_exponential_query_requirement(self):
        # to reach bound 1/2 one needs t ≈ c(p)/(2 p^n): grows like p^-n
        p = 0.8
        t_needed = []
        for depth in (6, 12, 18):
            c = double_tree_connection_probability(p, depth)
            t_needed.append(0.5 * c / p**depth)
        # each +6 depth multiplies the requirement by ≈ p^-6 ≈ 3.8
        assert t_needed[1] / t_needed[0] > 3
        assert t_needed[2] / t_needed[1] > 3


class TestGnp:
    def test_giant_fraction_zero_subcritical(self):
        assert gnp_giant_fraction(0.8) == 0.0
        assert gnp_giant_fraction(1.0) == 0.0

    def test_giant_fraction_known_value(self):
        # c = 2: θ solves θ = 1 - e^{-2θ} ⇒ θ ≈ 0.79681
        assert gnp_giant_fraction(2.0) == pytest.approx(0.79681, abs=1e-4)

    def test_giant_fraction_monotone(self):
        values = [gnp_giant_fraction(c) for c in (1.2, 2.0, 4.0, 8.0)]
        assert values == sorted(values)

    def test_local_lower_bound_shape(self):
        # quadrupling k doubles the bound (√k scaling)
        b1 = gnp_local_lower_bound(10**5, 2.0, 10_000, a=0.5)
        b2 = gnp_local_lower_bound(10**5, 2.0, 40_000, a=0.5)
        assert b2 == pytest.approx(2 * b1)

    def test_local_lower_bound_small_for_subquadratic_k(self):
        n = 10**5
        assert gnp_local_lower_bound(n, 2.0, n, a=0.5) < 0.1

    def test_oracle_lower_bound_shape(self):
        n = 10**4
        b_small = gnp_oracle_lower_bound(n, 1.0, 0.001)
        b_large = gnp_oracle_lower_bound(n, 1.0, 0.5)
        assert b_small < b_large

    def test_oracle_lower_bound_caps(self):
        assert gnp_oracle_lower_bound(100, 3.0, 10.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gnp_giant_fraction(-1)
        with pytest.raises(ValueError):
            gnp_local_lower_bound(1, 2.0, 1, 0.5)
        with pytest.raises(ValueError):
            gnp_oracle_lower_bound(100, 0.0, 0.1)
