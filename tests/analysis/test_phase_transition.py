"""Tests for repro.analysis.phase_transition."""

import math

import numpy as np
import pytest

from repro.analysis.phase_transition import (
    crossing_point,
    exponential_tail_rate,
    scaling_exponent,
    sharpest_rise,
)


class TestCrossingPoint:
    def test_linear_interpolation(self):
        assert crossing_point([0, 1], [0, 1], 0.25) == pytest.approx(0.25)

    def test_first_crossing_wins(self):
        xs = [0, 1, 2, 3]
        ys = [0, 1, 0, 1]
        assert crossing_point(xs, ys, 0.5) == pytest.approx(0.5)

    def test_never_crosses(self):
        with pytest.raises(ValueError):
            crossing_point([0, 1], [0.8, 0.9], 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            crossing_point([0], [1], 0.5)


class TestSharpestRise:
    def test_sigmoid_center(self):
        xs = list(np.linspace(-3, 3, 61))
        ys = [1 / (1 + math.exp(-4 * x)) for x in xs]
        assert abs(sharpest_rise(xs, ys)) < 0.2

    def test_step_function(self):
        xs = [0, 1, 2, 3]
        ys = [0, 0, 1, 1]
        assert sharpest_rise(xs, ys) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            sharpest_rise([1], [1])


class TestScalingExponent:
    def test_recovers_power_law(self):
        ns = [16, 32, 64, 128, 256]
        qs = [7.0 * n**1.5 for n in ns]
        fit = scaling_exponent(ns, qs)
        assert fit["exponent"] == pytest.approx(1.5, abs=1e-9)
        assert fit["r2"] == pytest.approx(1.0)

    def test_ci_contains_truth_with_noise(self):
        rng = np.random.default_rng(0)
        ns = [2**k for k in range(4, 11)]
        qs = [n**2.0 * math.exp(rng.normal(0, 0.05)) for n in ns]
        fit = scaling_exponent(ns, qs, seed=1)
        assert fit["ci_lo"] <= 2.0 <= fit["ci_hi"] + 0.2

    def test_deterministic(self):
        ns = [10, 20, 40]
        qs = [5, 12, 22]
        assert scaling_exponent(ns, qs, seed=4) == scaling_exponent(
            ns, qs, seed=4
        )


class TestExponentialTailRate:
    def test_recovers_rate(self):
        rng = np.random.default_rng(2)
        lam = 0.5
        sample = rng.exponential(1 / lam, size=4000)
        rate = exponential_tail_rate(sample, tail_from=1.0)
        assert rate == pytest.approx(lam, rel=0.25)

    def test_heavier_tail_has_smaller_rate(self):
        rng = np.random.default_rng(3)
        light = rng.exponential(1.0, size=3000)
        heavy = rng.exponential(3.0, size=3000)
        assert exponential_tail_rate(heavy, 1.0) < exponential_tail_rate(
            light, 1.0
        )

    def test_needs_tail_points(self):
        with pytest.raises(ValueError):
            exponential_tail_rate([1.0, 1.0], tail_from=5.0)
