"""Tests for repro.analysis.path_counting — the Theorem 3(i) argument."""

import pytest

from repro.analysis.path_counting import (
    ak_bound,
    open_walk_probability_bound,
    walk_count,
)
from repro.core.lower_bounds import ball
from repro.graphs.explicit import cycle_graph
from repro.graphs.hypercube import Hypercube


class TestWalkCount:
    def test_zero_length(self):
        g = cycle_graph(5)
        assert walk_count(g, g.vertices(), 0, 0, 0) == 1
        assert walk_count(g, g.vertices(), 0, 1, 0) == 0

    def test_single_step(self):
        g = cycle_graph(5)
        assert walk_count(g, g.vertices(), 0, 1, 1) == 1

    def test_counts_walks_not_paths(self):
        # cycle of 4: walks of length 2 from 0 back to 0: via 1 or via 3
        g = cycle_graph(4)
        assert walk_count(g, g.vertices(), 0, 0, 2) == 2

    def test_region_restriction(self):
        g = cycle_graph(6)
        # only the arc {0,1,2,3} allowed: the walk 0→5→4→3 is barred
        assert walk_count(g, {0, 1, 2, 3}, 0, 3, 3) == 1
        assert walk_count(g, g.vertices(), 0, 3, 3) == 2

    def test_parity_on_hypercube(self):
        g = Hypercube(4)
        # walks between vertices of even distance must have even length
        assert walk_count(g, g.vertices(), 0, 3, 3) == 0
        assert walk_count(g, g.vertices(), 0, 3, 2) == 2

    def test_validation(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            walk_count(g, {0, 1}, 0, 3, 2)
        with pytest.raises(ValueError):
            walk_count(g, g.vertices(), 0, 1, -1)


class TestAkBoundDominates:
    """The heart of Theorem 3(i): |A_k| ≤ n^k l^{2k} l! — verified exactly."""

    @pytest.mark.parametrize("n", [4, 5, 6])
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_bound_dominates_exact_count(self, n, k):
        g = Hypercube(n)
        l = 2
        target = 0
        s = ball(g, target, l)
        # boundary vertex at distance exactly l from target
        x = (1 << l) - 1  # bits 0..l-1 set → distance l from 0
        exact = walk_count(g, s, target, x, l + 2 * k)
        assert exact <= ak_bound(n, l, k), (exact, ak_bound(n, l, k))

    def test_k0_exact_value(self):
        # paths of length l using each coordinate once: exactly l! walks
        # inside the ball (all orderings of the l bit flips stay in S)
        n, l = 5, 3
        g = Hypercube(n)
        s = ball(g, 0, l)
        x = (1 << l) - 1
        assert walk_count(g, s, 0, x, l) == ak_bound(n, l, 0)


class TestOpenWalkProbabilityBound:
    def test_convergent_closed_form(self):
        n, l, p = 100, 3, 0.01
        lead = (l * p) ** l
        ratio = n * l * l * p * p
        assert open_walk_probability_bound(n, l, p) == pytest.approx(
            lead / (1 - ratio)
        )

    def test_caps_at_one(self):
        assert open_walk_probability_bound(4, 3, 1.0) == 1.0

    def test_decreasing_in_alpha_regime(self):
        # l = 4 = n^(1/3): the series converges for alpha > 1/3 + 1/2;
        # the bound should be << 1 and shrink as alpha grows.
        n = 64
        l = 4
        values = [
            open_walk_probability_bound(n, l, n**-a)
            for a in (0.85, 0.9, 0.95)
        ]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 1e-3

    def test_dominates_true_connection_probability(self):
        # Monte-Carlo: Pr[(v ~ x) in S] for the hypercube ball must stay
        # below the series bound.
        from repro.percolation.models import TablePercolation

        n, l = 6, 2
        p = 0.25
        g = Hypercube(n)
        s = ball(g, 0, l)
        x = 0b11
        trials = 400
        hits = 0
        for seed in range(trials):
            model = TablePercolation(g, p, seed=seed)
            # reachability within S
            from repro.core.lower_bounds import _reachable_within

            if x in _reachable_within(model, 0, s):
                hits += 1
        estimate = hits / trials
        bound = open_walk_probability_bound(n, l, p)
        assert estimate <= bound + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            open_walk_probability_bound(0, 2, 0.5)
        with pytest.raises(ValueError):
            open_walk_probability_bound(4, 2, 1.5)
