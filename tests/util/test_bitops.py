"""Tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bit_indices,
    flip_bit,
    gray_code,
    hamming_distance,
    hypercube_geodesic,
    iter_pairs,
    pair_from_index,
    pair_index,
    popcount,
)

NONNEG = st.integers(min_value=0, max_value=2**48)


class TestPopcount:
    @pytest.mark.parametrize(
        "x,expected", [(0, 0), (1, 1), (0b1011, 3), (2**40, 1), (2**10 - 1, 10)]
    )
    def test_known_values(self, x, expected):
        assert popcount(x) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(NONNEG)
    def test_matches_bin_count(self, x):
        assert popcount(x) == bin(x).count("1")


class TestHammingDistance:
    def test_zero_iff_equal(self):
        assert hamming_distance(37, 37) == 0

    def test_single_bit(self):
        assert hamming_distance(0b1000, 0b0000) == 1

    @given(NONNEG, NONNEG)
    def test_symmetry(self, x, y):
        assert hamming_distance(x, y) == hamming_distance(y, x)

    @given(NONNEG, NONNEG, NONNEG)
    def test_triangle_inequality(self, x, y, z):
        assert hamming_distance(x, z) <= (
            hamming_distance(x, y) + hamming_distance(y, z)
        )


class TestFlipBit:
    def test_flip_twice_is_identity(self):
        assert flip_bit(flip_bit(0b1010, 3), 3) == 0b1010

    def test_flip_changes_distance_by_one(self):
        x = 0b1100
        assert hamming_distance(x, flip_bit(x, 0)) == 1

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            flip_bit(1, -1)


class TestBitIndices:
    def test_empty_for_zero(self):
        assert bit_indices(0) == []

    def test_known(self):
        assert bit_indices(0b10110) == [1, 2, 4]

    @given(NONNEG)
    def test_roundtrip(self, x):
        assert sum(1 << i for i in bit_indices(x)) == x

    @given(NONNEG)
    def test_sorted_and_unique(self, x):
        idx = bit_indices(x)
        assert idx == sorted(set(idx))


class TestHypercubeGeodesic:
    def test_trivial(self):
        assert hypercube_geodesic(5, 5) == [5]

    def test_endpoints(self):
        path = hypercube_geodesic(0b000, 0b101)
        assert path[0] == 0b000
        assert path[-1] == 0b101

    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=2**12 - 1),
    )
    def test_length_is_distance_plus_one(self, u, v):
        path = hypercube_geodesic(u, v)
        assert len(path) == hamming_distance(u, v) + 1

    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=2**12 - 1),
    )
    def test_consecutive_steps_are_neighbours(self, u, v):
        path = hypercube_geodesic(u, v)
        for a, b in zip(path, path[1:]):
            assert hamming_distance(a, b) == 1

    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=2**12 - 1),
    )
    def test_no_repeated_vertices(self, u, v):
        path = hypercube_geodesic(u, v)
        assert len(set(path)) == len(path)


class TestGrayCode:
    def test_first_words(self):
        assert [gray_code(k) for k in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    @given(st.integers(min_value=0, max_value=2**20))
    def test_consecutive_words_are_neighbours(self, k):
        assert hamming_distance(gray_code(k), gray_code(k + 1)) == 1

    def test_is_bijection_on_prefix(self):
        n = 1 << 10
        assert len({gray_code(k) for k in range(n)}) == n


class TestPairIndexing:
    def test_triangular_order(self):
        assert [pair_index(i, j) for i, j in [(0, 1), (0, 2), (1, 2), (0, 3)]] == [
            0,
            1,
            2,
            3,
        ]

    def test_order_insensitive(self):
        assert pair_index(7, 3) == pair_index(3, 7)

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            pair_index(4, 4)

    def test_iter_pairs_matches_indices(self):
        pairs = list(iter_pairs(6))
        assert len(pairs) == 15
        for idx, (i, j) in enumerate(pairs):
            assert pair_index(i, j) == idx
            assert pair_from_index(idx) == (i, j)

    @given(st.integers(min_value=0, max_value=10**12))
    def test_roundtrip_from_index(self, index):
        i, j = pair_from_index(index)
        assert 0 <= i < j
        assert pair_index(i, j) == index

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_roundtrip_from_pair(self, a, b):
        if a == b:
            b += 1
        i, j = min(a, b), max(a, b)
        assert pair_from_index(pair_index(i, j)) == (i, j)
