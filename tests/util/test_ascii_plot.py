"""Tests for repro.util.ascii_plot."""

import pytest

from repro.util.ascii_plot import bar_chart, scatter_plot, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▅█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_length_preserved(self):
        assert len(sparkline(range(17))) == 17


class TestBarChart:
    def test_basic_shape(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value fills the width
        assert lines[0].count("#") == 5

    def test_labels_aligned(self):
        out = bar_chart(["x", "longer"], [1, 1])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1])

    def test_all_zero_safe(self):
        out = bar_chart(["a"], [0.0])
        assert "#" not in out


class TestScatterPlot:
    def test_contains_markers(self):
        out = scatter_plot([1, 2, 3], [1, 4, 9])
        assert out.count("*") >= 2  # collisions may merge points

    def test_axis_annotations(self):
        out = scatter_plot([1, 10], [2, 20])
        assert "x: 1 .. 10" in out
        assert "y: 2 .. 20" in out

    def test_log_axes(self):
        out = scatter_plot([1, 10, 100], [1, 100, 10000], logx=True, logy=True)
        assert "1e" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scatter_plot([0, 1], [1, 2], logx=True)

    def test_dimension_bounds(self):
        with pytest.raises(ValueError):
            scatter_plot([1], [1], width=1)

    def test_single_point_centered_grid(self):
        out = scatter_plot([5], [5], width=8, height=4)
        assert out.count("*") == 1

    def test_grid_size(self):
        out = scatter_plot([1, 2], [1, 2], width=20, height=5)
        rows = [l for l in out.splitlines() if l.startswith("|")]
        assert len(rows) == 5
        assert all(len(r) == 21 for r in rows)

    def test_monotone_data_has_monotone_shape(self):
        # the topmost marker must be in the rightmost marker column
        out = scatter_plot([1, 2, 3, 4], [1, 2, 3, 4], width=12, height=6)
        rows = [l[1:] for l in out.splitlines() if l.startswith("|")]
        top_row = next(r for r in rows if "*" in r)
        assert top_row.rindex("*") == max(r.rindex("*") for r in rows if "*" in r)
