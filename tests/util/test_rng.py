"""Tests for repro.util.rng — determinism, coupling, distribution."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import MAX_SEED, derive_seed, edge_coin, uniform_for

KEYS = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=12),
    st.tuples(st.integers(min_value=0, max_value=2**20), st.integers()),
)


class TestUniformFor:
    def test_deterministic(self):
        assert uniform_for(1, "x") == uniform_for(1, "x")

    def test_in_unit_interval(self):
        for k in range(100):
            u = uniform_for(3, k)
            assert 0.0 <= u < 1.0

    def test_seed_changes_value(self):
        values = {uniform_for(seed, "edge", (0, 1)) for seed in range(32)}
        assert len(values) == 32

    def test_key_changes_value(self):
        values = {uniform_for(5, "edge", (0, i)) for i in range(64)}
        assert len(values) == 64

    def test_key_structure_matters(self):
        # (1, 2) vs (12,) vs "12" must be distinguishable.
        assert uniform_for(0, (1, 2)) != uniform_for(0, (12,))
        assert uniform_for(0, (1, 2)) != uniform_for(0, "12")

    def test_mean_near_half(self):
        n = 4000
        total = sum(uniform_for(9, "m", i) for i in range(n))
        # standard error ~ 1/sqrt(12 n) ≈ 0.0046; 5 sigma tolerance
        assert abs(total / n - 0.5) < 5 / math.sqrt(12 * n)

    def test_rejects_bad_seed(self):
        with pytest.raises(ValueError):
            uniform_for(-1, "x")
        with pytest.raises(ValueError):
            uniform_for(MAX_SEED + 1, "x")

    @given(st.integers(min_value=0, max_value=MAX_SEED), KEYS)
    def test_property_stable_and_bounded(self, seed, key):
        u = uniform_for(seed, key)
        assert u == uniform_for(seed, key)
        assert 0.0 <= u < 1.0


class TestEdgeCoin:
    def test_p_zero_always_closed(self):
        assert not any(edge_coin(1, (0, i), 0.0) for i in range(200))

    def test_p_one_always_open(self):
        assert all(edge_coin(1, (0, i), 1.0) for i in range(200))

    def test_frequency_matches_p(self):
        n = 5000
        p = 0.3
        opens = sum(edge_coin(2, ("e", i), p) for i in range(n))
        # 5 sigma binomial tolerance
        assert abs(opens / n - p) < 5 * math.sqrt(p * (1 - p) / n)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            edge_coin(0, (0, 1), -0.1)
        with pytest.raises(ValueError):
            edge_coin(0, (0, 1), 1.1)

    @given(
        st.integers(min_value=0, max_value=MAX_SEED),
        KEYS,
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_monotone_coupling(self, seed, edge, p1, p2):
        """Raising p can only open edges, never close them."""
        lo, hi = min(p1, p2), max(p1, p2)
        if edge_coin(seed, edge, lo):
            assert edge_coin(seed, edge, hi)

    def test_coin_independent_of_p_representation(self):
        # open iff uniform < p: boundary exactness
        u = uniform_for(7, "edge", ("a", "b"))
        assert edge_coin(7, ("a", "b"), u) is False  # strict inequality
        assert edge_coin(7, ("a", "b"), min(1.0, u + 1e-12)) is True


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_children(self):
        children = {derive_seed(1, "trial", i) for i in range(128)}
        assert len(children) == 128

    def test_child_in_range(self):
        for i in range(50):
            child = derive_seed(99, i)
            assert 0 <= child <= MAX_SEED

    def test_does_not_collide_with_uniform_keyspace(self):
        # derive_seed prefixes its key, so deriving with key "edge" must
        # not be the same stream as edge coins.
        child = derive_seed(3, "edge", (0, 1))
        assert child / 2**64 != uniform_for(3, "edge", (0, 1))

    @given(
        st.integers(min_value=0, max_value=MAX_SEED),
        st.integers(min_value=0, max_value=MAX_SEED),
    )
    def test_property_valid_seed(self, seed, k):
        child = derive_seed(seed, k)
        assert 0 <= child <= MAX_SEED


class TestSeedDerivationContract:
    """The (experiment, sweep-point, trial) contract behind repro.runtime.

    Every TrialSpec's seed is ``derive_seed(master, experiment,
    *point_labels, trial)`` (the point seed derived once, then
    ``("complexity", t)`` per trial).  Parallel correctness rests on
    those seeds being (a) stable — the same triple always yields the
    same child, wherever it is evaluated — and (b) distinct across
    triples, so no two work units share a random stream.
    """

    TRIPLES = st.tuples(
        st.sampled_from(["e1", "e9", "a4", "complexity", "coupled"]),
        st.tuples(
            st.integers(min_value=0, max_value=64),
            # strictly positive: 0.0 == -0.0 but repr-keys differently
            st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        ),
        st.integers(min_value=0, max_value=10_000),
    )

    @given(st.integers(min_value=0, max_value=MAX_SEED), TRIPLES, TRIPLES)
    def test_distinct_across_triples(self, master, a, b):
        ka = derive_seed(master, a[0], *a[1], a[2])
        kb = derive_seed(master, b[0], *b[1], b[2])
        assert (ka == kb) == (a == b)

    @given(st.integers(min_value=0, max_value=MAX_SEED), TRIPLES)
    def test_stable_under_recomputation(self, master, triple):
        experiment, point, trial = triple
        point_seed = derive_seed(master, experiment, *point)
        child = derive_seed(point_seed, "complexity", trial)
        # re-derive from scratch, as a worker process would
        again = derive_seed(
            derive_seed(master, experiment, *point), "complexity", trial
        )
        assert child == again
        assert 0 <= child <= MAX_SEED

    def test_exhaustive_distinctness_small_grid(self):
        # A dense grid of the index triples an actual suite run uses.
        seen = set()
        for experiment in ("e1", "e3", "e7"):
            for n in (6, 8, 10):
                for alpha in (0.2, 0.5, 0.8):
                    point_seed = derive_seed(0, experiment, n, alpha)
                    for trial in range(30):
                        seen.add(derive_seed(point_seed, "complexity", trial))
        assert len(seen) == 3 * 3 * 3 * 30

    def test_trial_seed_independent_of_sibling_count(self):
        # Adding trials to a sweep point must not move existing streams.
        point_seed = derive_seed(7, "e1", 8, 0.3)
        first_ten = [
            derive_seed(point_seed, "complexity", t) for t in range(10)
        ]
        assert [
            derive_seed(point_seed, "complexity", t) for t in range(100)
        ][:10] == first_ten
