"""Tests for repro.util.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    bootstrap_ci,
    geometric_mean,
    linear_fit,
    loglog_slope,
    mean_ci,
    proportion_ci,
    quantile,
    summarize,
)

FLOATS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestSummarize:
    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_single_value_has_zero_std(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.p90 == 7.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "median", "p90", "max"}

    @given(st.lists(FLOATS, min_size=1, max_size=50))
    def test_bounds(self, values):
        s = summarize(values)
        tol = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - tol <= s.median <= s.maximum + tol
        assert s.minimum - tol <= s.mean <= s.maximum + tol


class TestQuantile:
    def test_median(self):
        assert quantile([1, 2, 3], 0.5) == 2

    def test_extremes(self):
        assert quantile([5, 1, 3], 0.0) == 1
        assert quantile([5, 1, 3], 1.0) == 5

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestMeanCI:
    def test_contains_mean(self):
        m, lo, hi = mean_ci([1.0, 2.0, 3.0])
        assert lo <= m <= hi

    def test_single_sample_degenerate(self):
        m, lo, hi = mean_ci([4.0])
        assert m == lo == hi == 4.0

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = rng.normal(size=20)
        large = rng.normal(size=2000)
        _, lo_s, hi_s = mean_ci(small)
        _, lo_l, hi_l = mean_ci(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)


class TestProportionCI:
    def test_half(self):
        p, lo, hi = proportion_ci(50, 100)
        assert p == 0.5
        assert lo < 0.5 < hi

    def test_extreme_zero(self):
        p, lo, hi = proportion_ci(0, 30)
        assert p == 0.0
        assert lo == 0.0
        assert hi > 0.0  # Wilson keeps a margin

    def test_extreme_all(self):
        p, lo, hi = proportion_ci(30, 30)
        assert p == 1.0
        assert hi == pytest.approx(1.0)
        assert lo < 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            proportion_ci(1, 0)
        with pytest.raises(ValueError):
            proportion_ci(5, 3)

    def test_coverage_sanity(self):
        # interval for a fair coin over 1000 flips should be tight
        _, lo, hi = proportion_ci(500, 1000)
        assert hi - lo < 0.07


class TestBootstrapCI:
    def test_deterministic_given_seed(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)

    def test_contains_point_estimate(self):
        point, lo, hi = bootstrap_ci([1.0, 2.0, 3.0, 4.0], seed=1)
        assert lo <= point <= hi

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept, r2 = linear_fit([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_rejects_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_fit([1, 1], [2, 3])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_r2_below_one_with_noise(self):
        rng = np.random.default_rng(0)
        x = np.arange(50, dtype=float)
        y = 2 * x + rng.normal(scale=5.0, size=50)
        slope, _, r2 = linear_fit(x, y)
        assert 1.5 < slope < 2.5
        assert 0.5 < r2 < 1.0


class TestLogLogSlope:
    def test_power_law_exact(self):
        xs = [1, 2, 4, 8, 16]
        ys = [x**1.5 for x in xs]
        slope, r2 = loglog_slope(xs, ys)
        assert slope == pytest.approx(1.5)
        assert r2 == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope([0, 1], [1, 2])

    def test_exponential_is_not_power_law(self):
        # On an exponential curve the local log-log slope keeps growing;
        # check the fitted slope over a wide range is large.
        xs = [4, 8, 12, 16, 20]
        ys = [math.exp(x) for x in xs]
        slope, _ = loglog_slope(xs, ys)
        assert slope > 5
