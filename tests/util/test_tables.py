"""Tests for repro.util.tables."""

from repro.util.tables import format_value, render_csv, render_table, write_csv


class TestFormatValue:
    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_float_trims_zeros(self):
        assert format_value(2.5000) == "2.5"

    def test_small_float_scientific(self):
        assert "e" in format_value(1.2e-7)

    def test_large_float_scientific(self):
        assert "e" in format_value(3.2e9)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_bool_not_treated_as_number(self):
        assert format_value(True) == "True"


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(
            [{"n": 1, "queries": 10}, {"n": 22, "queries": 5}],
            columns=["n", "queries"],
        )
        lines = text.splitlines()
        assert lines[0].startswith("n ")
        assert "queries" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_infers_columns_in_first_seen_order(self):
        text = render_table([{"b": 1}, {"a": 2, "b": 3}])
        assert text.splitlines()[0].split("|")[0].strip() == "b"

    def test_missing_cells_render_empty(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 9}], columns=["a", "b"])
        row = text.splitlines()[2]
        assert row.split("|")[1].strip() == ""

    def test_title_included(self):
        text = render_table([{"a": 1}], title="E1: demo")
        assert text.splitlines()[0] == "E1: demo"

    def test_empty_rows_ok(self):
        assert render_table([], title="nothing") == "nothing\n"


class TestCSV:
    def test_render_csv(self):
        csv_text = render_csv([{"a": 1, "b": 2.5}], columns=["a", "b"])
        assert csv_text == "a,b\n1,2.5\n"

    def test_write_csv(self, tmp_path):
        out = write_csv(tmp_path / "deep" / "t.csv", [{"x": 1}])
        assert out.exists()
        assert out.read_text() == "x\n1\n"
