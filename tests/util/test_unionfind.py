"""Tests for repro.util.unionfind."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.unionfind import DisjointSets


class TestBasics:
    def test_new_elements_are_singletons(self):
        ds = DisjointSets(["a", "b"])
        assert ds.n_sets == 2
        assert not ds.connected("a", "b")

    def test_union_connects(self):
        ds = DisjointSets()
        assert ds.union(1, 2)
        assert ds.connected(1, 2)
        assert ds.n_sets == 1

    def test_union_idempotent(self):
        ds = DisjointSets()
        ds.union(1, 2)
        assert not ds.union(2, 1)
        assert ds.n_sets == 1

    def test_transitivity(self):
        ds = DisjointSets()
        ds.union("a", "b")
        ds.union("b", "c")
        assert ds.connected("a", "c")

    def test_set_size(self):
        ds = DisjointSets()
        ds.union(0, 1)
        ds.union(1, 2)
        assert ds.set_size(0) == 3
        assert ds.set_size(5) == 1

    def test_len_counts_elements(self):
        ds = DisjointSets()
        ds.union(0, 1)
        ds.find(2)
        assert len(ds) == 3

    def test_contains(self):
        ds = DisjointSets()
        ds.add("x")
        assert "x" in ds
        assert "y" not in ds

    def test_largest_set_size(self):
        ds = DisjointSets()
        assert ds.largest_set_size() == 0
        ds.union(0, 1)
        ds.union(1, 2)
        ds.union(10, 11)
        assert ds.largest_set_size() == 3

    def test_sets_partition_elements(self):
        ds = DisjointSets()
        ds.union(0, 1)
        ds.union(2, 3)
        ds.add(4)
        groups = ds.sets()
        flattened = sorted(x for g in groups for x in g)
        assert flattened == [0, 1, 2, 3, 4]
        assert sorted(len(g) for g in groups) == [1, 2, 2]

    def test_works_with_tuple_elements(self):
        ds = DisjointSets()
        ds.union((0, 0), (0, 1))
        assert ds.connected((0, 1), (0, 0))


class _NaiveConnectivity:
    """Quadratic reference implementation used as a hypothesis oracle."""

    def __init__(self):
        self.groups: list[set] = []

    def union(self, x, y):
        gx = self._find(x)
        gy = self._find(y)
        if gx is gy:
            return
        self.groups.remove(gy)
        gx |= gy

    def _find(self, x):
        for g in self.groups:
            if x in g:
                return g
        g = {x}
        self.groups.append(g)
        return g

    def connected(self, x, y):
        return self._find(x) is self._find(y)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
        ),
        max_size=40,
    )
)
def test_matches_naive_reference(operations):
    ds = DisjointSets()
    naive = _NaiveConnectivity()
    for x, y in operations:
        ds.union(x, y)
        naive.union(x, y)
    for x in range(16):
        for y in range(16):
            assert ds.connected(x, y) == naive.connected(x, y)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),
            st.integers(min_value=0, max_value=31),
        ),
        max_size=60,
    )
)
def test_n_sets_invariant(operations):
    ds = DisjointSets()
    for x, y in operations:
        ds.union(x, y)
    assert ds.n_sets == len(ds.sets())
    assert sum(len(g) for g in ds.sets()) == len(ds)
