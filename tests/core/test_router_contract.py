"""Contract tests for the Router base class.

A router implementation is untrusted: `route()` must catch bad outputs
(closed edges, wrong endpoints), erase transient loops, classify
failures by completeness, and build the right oracle for the router's
locality class.
"""

import pytest

from repro.core.probe import LocalProbeOracle, ProbeOracle
from repro.core.result import FailureReason, InvalidPathError
from repro.core.router import Router
from repro.graphs.explicit import cycle_graph, path_graph
from repro.percolation.models import TablePercolation


class _ScriptedRouter(Router):
    """Returns a pre-scripted path without probing (for contract tests)."""

    name = "scripted"
    is_local = False
    is_complete = False

    def __init__(self, path):
        self._path = path

    def _route(self, oracle, source, target):
        return self._path


class _ProbingScriptedRouter(_ScriptedRouter):
    """Probes the scripted path's edges before returning it."""

    def _route(self, oracle, source, target):
        if self._path:
            for a, b in zip(self._path, self._path[1:]):
                oracle.probe(a, b)
        return self._path


class TestPathPolicing:
    def test_wrong_endpoints_rejected(self):
        g = path_graph(3)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(InvalidPathError):
            _ScriptedRouter([1, 2]).route(model, 0, 2)

    def test_closed_edge_rejected(self):
        g = path_graph(2)
        model = TablePercolation(g, 0.0, seed=0)
        with pytest.raises(InvalidPathError):
            _ScriptedRouter([0, 1, 2]).route(model, 0, 2)

    def test_non_edge_rejected(self):
        g = path_graph(3)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(InvalidPathError):
            _ScriptedRouter([0, 2, 3]).route(model, 0, 3)

    def test_transient_loops_are_erased(self):
        g = cycle_graph(6)
        model = TablePercolation(g, 1.0, seed=0)
        result = _ScriptedRouter([0, 1, 2, 1, 0, 5]).route(model, 0, 5)
        assert result.success
        assert result.path == [0, 5]

    def test_unknown_vertices_rejected_before_routing(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(ValueError):
            _ScriptedRouter([0, 1]).route(model, 0, 99)


class TestFailureTaxonomy:
    def test_incomplete_failure_is_gave_up(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        router = _ScriptedRouter(None)
        result = router.route(model, 0, 2)
        assert result.failure == FailureReason.GAVE_UP

    def test_complete_failure_is_exhausted(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)

        class CompleteNone(_ScriptedRouter):
            is_complete = True

        result = CompleteNone(None).route(model, 0, 2)
        assert result.failure == FailureReason.EXHAUSTED

    def test_budget_exception_becomes_censored_result(self):
        g = cycle_graph(8)
        model = TablePercolation(g, 1.0, seed=0)
        router = _ProbingScriptedRouter(list(range(8)) + [0])
        # path needs 8 probes; budget of 2 must censor, not crash
        result = router.route(model, 0, 0 if False else 7, budget=2)
        assert not result.success
        assert result.failure == FailureReason.BUDGET
        assert result.queries == 2


class TestOracleSelection:
    def test_local_router_gets_local_oracle(self):
        class LocalScripted(_ScriptedRouter):
            is_local = True

        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        oracle = LocalScripted(None).make_oracle(model, 0)
        assert isinstance(oracle, LocalProbeOracle)
        assert oracle.source == 0

    def test_oracle_router_gets_plain_oracle(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        oracle = _ScriptedRouter(None).make_oracle(model, 0)
        assert type(oracle) is ProbeOracle

    def test_queries_counted_through_route(self):
        g = path_graph(4)
        model = TablePercolation(g, 1.0, seed=0)
        router = _ProbingScriptedRouter([0, 1, 2, 3, 4])
        result = router.route(model, 0, 4)
        assert result.success
        assert result.queries == 4


class TestWaypointOnBfsGeodesics:
    def test_waypoint_works_without_analytic_metric(self):
        # Butterfly has no closed-form shortest_path; the base-class BFS
        # geodesic must suffice.
        from repro.graphs.butterfly import Butterfly
        from repro.routers.waypoint import WaypointRouter

        g = Butterfly(3)
        model = TablePercolation(g, 0.9, seed=1)
        u, v = g.canonical_pair()
        result = WaypointRouter().route(model, u, v)
        from repro.percolation.cluster import connected

        assert result.success == connected(model, u, v)
