"""Golden tests for the measure_complexity spec/kernel/assembly split.

``_reference_measure`` below is a frozen copy of the pre-split inline
loop (the seed-state behaviour).  The per-trial pipeline —
:func:`complexity_specs` → :func:`run_trial` → a runner →
:func:`assemble_measurement` — must reproduce its exact
:class:`TrialRecord` stream, field for field, for every conditioning
mode, with budgets, and under the early-stopping cut.
"""

import pytest

from repro.core.complexity import (
    ComplexityMeasurement,
    TrialRecord,
    assemble_measurement,
    complexity_specs,
    measure_complexity,
    run_trial,
)
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers.bfs import LocalBFSRouter
from repro.routers.waypoint import MeshWaypointRouter
from repro.runtime import ProcessPoolRunner, SerialRunner
from repro.util.rng import derive_seed


def _reference_measure(
    graph,
    p,
    router,
    pair=None,
    trials=20,
    seed=0,
    budget=None,
    conditioning="exact",
    max_conditioned=None,
):
    """The pre-split implementation, kept verbatim as the golden oracle."""
    source, target = pair if pair is not None else graph.canonical_pair()
    measurement = ComplexityMeasurement(
        graph_name=graph.name,
        router_name=router.name,
        p=p,
        source=source,
        target=target,
        budget=budget,
    )
    attempted = 0
    for t in range(trials):
        trial_seed = derive_seed(seed, "complexity", t)
        model = TablePercolation(graph, p, trial_seed)
        if conditioning == "exact":
            is_conn = connected(model, source, target)
            result = None
            if is_conn:
                result = router.route(model, source, target, budget=budget)
                attempted += 1
        elif conditioning == "router":
            result = router.route(model, source, target, budget=None)
            is_conn = result.success
            attempted += 1
        else:  # "none"
            result = router.route(model, source, target, budget=budget)
            is_conn = result.success
            attempted += 1
        measurement.records.append(
            TrialRecord(
                trial=t, seed=trial_seed, connected=is_conn, result=result
            )
        )
        if max_conditioned is not None and attempted >= max_conditioned:
            break
    return measurement


def _assert_same_stream(golden, measured):
    assert len(golden.records) == len(measured.records)
    assert repr(golden.records) == repr(measured.records)
    for a, b in zip(golden.records, measured.records):
        assert (a.trial, a.seed, a.connected) == (b.trial, b.seed, b.connected)
    assert golden.graph_name == measured.graph_name
    assert golden.router_name == measured.router_name
    assert golden.budget == measured.budget
    assert (golden.source, golden.target) == (measured.source, measured.target)


CASES = [
    dict(conditioning="exact"),
    dict(conditioning="exact", budget=5),
    dict(conditioning="router"),
    dict(conditioning="none", budget=8),
]


@pytest.mark.parametrize("kwargs", CASES)
def test_specs_reproduce_reference_stream(kwargs):
    graph = Hypercube(4)
    router = LocalBFSRouter()
    golden = _reference_measure(
        graph, 0.55, router, trials=25, seed=13, **kwargs
    )
    specs = complexity_specs(
        graph, 0.55, router, trials=25, seed=13, **kwargs
    )
    records = SerialRunner().run_values(specs)
    measured = assemble_measurement(
        graph, 0.55, router, records, **{
            k: v for k, v in kwargs.items() if k == "budget"
        }
    )
    _assert_same_stream(golden, measured)


@pytest.mark.parametrize("kwargs", CASES)
def test_wrapper_matches_reference(kwargs):
    graph = Hypercube(4)
    router = LocalBFSRouter()
    golden = _reference_measure(
        graph, 0.55, router, trials=25, seed=13, **kwargs
    )
    for runner in (None, SerialRunner(), ProcessPoolRunner(workers=2)):
        measured = measure_complexity(
            graph, 0.55, router, trials=25, seed=13, runner=runner, **kwargs
        )
        _assert_same_stream(golden, measured)


def test_max_conditioned_cut_matches_reference():
    graph = Mesh(2, 6)
    router = MeshWaypointRouter()
    golden = _reference_measure(
        graph, 0.7, router, trials=200, seed=3, max_conditioned=7
    )
    lazy = measure_complexity(
        graph, 0.7, router, trials=200, seed=3, max_conditioned=7
    )
    _assert_same_stream(golden, lazy)
    # With a runner every trial is scheduled up front; the assembled
    # stream must still be the identical truncated prefix.
    pooled = measure_complexity(
        graph,
        0.7,
        router,
        trials=200,
        seed=3,
        max_conditioned=7,
        runner=ProcessPoolRunner(workers=2),
    )
    _assert_same_stream(golden, pooled)


def test_run_trial_is_pure():
    graph = Hypercube(4)
    router = LocalBFSRouter()
    source, target = graph.canonical_pair()
    trial_seed = derive_seed(13, "complexity", 4)
    a = run_trial(graph, 0.55, router, source, target, 4, trial_seed)
    b = run_trial(graph, 0.55, router, source, target, 4, trial_seed)
    assert repr(a) == repr(b)
    assert a.seed == trial_seed and a.trial == 4
