"""Tests for repro.core.lower_bounds — the Lemma 5 certificate."""

import math

import pytest

from repro.core.complexity import measure_complexity
from repro.core.lower_bounds import (
    Lemma5Certificate,
    ball,
    cut_edges,
    estimate_certificate,
)
from repro.graphs.double_tree import DoubleBinaryTree
from repro.graphs.explicit import ExplicitGraph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.routers.bfs import LocalBFSRouter
from repro.routers.dfs import DirectedDFSRouter


class TestBallAndCut:
    def test_ball_radius_zero(self):
        g = Hypercube(3)
        assert ball(g, 0, 0) == {0}

    def test_ball_radius_one(self):
        g = Hypercube(3)
        assert ball(g, 0, 1) == {0, 1, 2, 4}

    def test_ball_rejects_negative(self):
        with pytest.raises(ValueError):
            ball(Hypercube(3), 0, -1)

    def test_cut_edges_of_ball(self):
        g = path_graph(5)
        s = {0, 1, 2}
        assert cut_edges(g, s) == [(2, 3)]

    def test_cut_edges_count_hypercube(self):
        g = Hypercube(4)
        s = ball(g, 0, 1)  # center + 4 neighbours
        # each neighbour has 3 edges leaving the ball (one goes to 0,
        # none to sibling neighbours since those are at distance 2)
        assert len(cut_edges(g, s)) == 12


class TestCertificateMath:
    def test_bound_formula(self):
        cert = Lemma5Certificate(
            eta_max=0.01,
            eta_mean=0.005,
            pr_uv_in_s=0.1,
            pr_uv=0.8,
            trials=100,
            cut_size=10,
        )
        assert cert.bound(10) == pytest.approx((10 * 0.01 + 0.1) / 0.8)

    def test_bound_capped_at_one(self):
        cert = Lemma5Certificate(1.0, 1.0, 0.0, 0.5, 10, 2)
        assert cert.bound(100) == 1.0

    def test_bound_with_explicit_eta(self):
        cert = Lemma5Certificate(0.5, 0.4, 0.0, 1.0, 10, 2)
        assert cert.bound(1, eta=0.1) == pytest.approx(0.1)

    def test_min_queries_inversion(self):
        cert = Lemma5Certificate(0.001, 0.001, 0.0, 1.0, 10, 2)
        t = cert.min_queries_for(0.5)
        assert cert.bound(t) == pytest.approx(0.5)

    def test_zero_pr_uv_raises(self):
        cert = Lemma5Certificate(0.1, 0.1, 0.0, 0.0, 10, 2)
        with pytest.raises(ValueError):
            cert.bound(1)


class TestEstimation:
    def test_path_graph_exact_values(self):
        # Path 0-1-2-3-4, S = {2,3,4}, v=4, u=0.  Cut edge (1,2); the
        # S-endpoint is 2; Pr[4 ~ 2 in S] = p² exactly.
        g = path_graph(4)
        p = 0.6
        cert = estimate_certificate(
            g, p, s={2, 3, 4}, source=0, target=4, trials=3000, seed=0
        )
        assert cert.cut_size == 1
        se = math.sqrt(p**2 * (1 - p**2) / 3000)
        assert abs(cert.eta_max - p * p) < 5 * se
        # u outside S ⇒ Pr[(u~v) ∈ S] = 0
        assert cert.pr_uv_in_s == 0.0
        # Pr[u ~ v] = p^4
        assert abs(cert.pr_uv - p**4) < 0.05

    def test_requires_target_in_s(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            estimate_certificate(g, 0.5, s={0, 1}, source=0, target=3, trials=5)

    def test_rejects_empty_cut(self):
        g = ExplicitGraph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            estimate_certificate(
                g, 0.5, s={2, 3}, source=0, target=3, trials=5
            )

    def test_rejects_non_cut_edge_input(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            estimate_certificate(
                g,
                0.5,
                s={2, 3},
                source=0,
                target=3,
                trials=5,
                cut=[(2, 3)],  # both endpoints inside S
            )

    def test_eta_mean_le_max(self):
        g = Hypercube(4)
        s = ball(g, 15, 1)
        cert = estimate_certificate(
            g, 0.3, s=s, source=0, target=15, trials=300, seed=1
        )
        assert cert.eta_mean <= cert.eta_max + 1e-12


class TestBoundHoldsEmpirically:
    """The Lemma's inequality must hold for actual local routers."""

    @pytest.mark.parametrize("router", [LocalBFSRouter(), DirectedDFSRouter()])
    def test_double_tree_certificate_dominates_router_cdf(self, router):
        depth, p = 5, 0.8
        g = DoubleBinaryTree(depth)
        x, y = g.roots()
        # S = second tree + shared leaves (the paper's choice).
        s = {v for v in g.vertices() if v[0] in ("b", "leaf")}
        cert = estimate_certificate(
            g, p, s=s, source=x, target=y, trials=500, seed=2
        )
        measurement = measure_complexity(
            g, p=p, router=router, pair=(x, y), trials=120, seed=3
        )
        if not measurement.connected_trials:
            pytest.skip("no connected trials at this seed")
        thresholds = [2, 8, 32, 128]
        cdf = measurement.empirical_cdf(thresholds)
        for t, observed in zip(thresholds, cdf):
            bound = cert.bound(t)
            slack = 0.15  # Monte-Carlo noise on both sides
            assert observed <= bound + slack, (t, observed, bound)

    def test_eta_for_double_tree_matches_theory(self):
        # Pr[y ~ leaf within S] = p^depth exactly (unique path).
        depth, p = 4, 0.8
        g = DoubleBinaryTree(depth)
        _, y = g.roots()
        s = {v for v in g.vertices() if v[0] in ("b", "leaf")}
        cert = estimate_certificate(
            g, p, s=s, source=("a", 1), target=y, trials=4000, seed=4
        )
        exact = p**depth
        se = math.sqrt(exact * (1 - exact) / 4000)
        assert abs(cert.eta_max - exact) < 6 * se + 0.01
