"""Tests for repro.core.probe — counting, memoisation, budget, locality."""

import pytest

from repro.core.probe import (
    LocalityViolation,
    LocalProbeOracle,
    ProbeBudgetExceeded,
    ProbeOracle,
)
from repro.graphs.explicit import ExplicitGraph, cycle_graph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.percolation.models import HashPercolation, TablePercolation


def _model(graph, p=1.0, seed=0):
    return TablePercolation(graph, p, seed=seed)


class TestProbeOracle:
    def test_counts_distinct_edges(self):
        oracle = ProbeOracle(_model(cycle_graph(5)))
        oracle.probe(0, 1)
        oracle.probe(1, 2)
        assert oracle.queries == 2

    def test_reprobe_is_free(self):
        oracle = ProbeOracle(_model(cycle_graph(5)))
        oracle.probe(0, 1)
        oracle.probe(0, 1)
        oracle.probe(1, 0)  # reverse orientation
        assert oracle.queries == 1

    def test_result_matches_model(self):
        model = _model(cycle_graph(6), p=0.5, seed=3)
        oracle = ProbeOracle(model)
        for e in model.graph.edges():
            assert oracle.probe(*e) == model.is_open(*e)

    def test_rejects_non_edges(self):
        oracle = ProbeOracle(_model(path_graph(3)))
        with pytest.raises(ValueError):
            oracle.probe(0, 2)

    def test_budget_enforced(self):
        oracle = ProbeOracle(_model(cycle_graph(10)), budget=3)
        oracle.probe(0, 1)
        oracle.probe(1, 2)
        oracle.probe(2, 3)
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(3, 4)
        assert oracle.queries == 3

    def test_budget_allows_reprobes(self):
        oracle = ProbeOracle(_model(cycle_graph(10)), budget=1)
        oracle.probe(0, 1)
        assert oracle.probe(1, 0) in (True, False)  # still free

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ProbeOracle(_model(path_graph(2)), budget=0)

    def test_known_state_is_free(self):
        oracle = ProbeOracle(_model(cycle_graph(5)))
        assert oracle.known_state(0, 1) is None
        oracle.probe(0, 1)
        assert oracle.known_state(1, 0) is True
        assert oracle.queries == 1

    def test_probed_edges_snapshot(self):
        oracle = ProbeOracle(_model(cycle_graph(5)))
        oracle.probe(0, 1)
        snapshot = oracle.probed_edges()
        assert snapshot == {(0, 1): True}
        snapshot[(1, 2)] = False  # mutating the copy is harmless
        assert oracle.queries == 1

    def test_graph_property(self):
        g = cycle_graph(4)
        oracle = ProbeOracle(_model(g))
        assert oracle.graph is g

    def test_any_edge_probe_allowed(self):
        # oracle model: probing far from anything established is legal
        oracle = ProbeOracle(_model(cycle_graph(10)))
        assert oracle.probe(5, 6) in (True, False)


class TestLocalProbeOracle:
    def test_first_probe_must_touch_source(self):
        oracle = LocalProbeOracle(_model(cycle_graph(6)), source=0)
        with pytest.raises(LocalityViolation):
            oracle.probe(2, 3)

    def test_probe_from_source_ok(self):
        oracle = LocalProbeOracle(_model(cycle_graph(6)), source=0)
        assert oracle.probe(0, 1) is True

    def test_reached_grows_along_open_edges(self):
        oracle = LocalProbeOracle(_model(path_graph(3)), source=0)
        oracle.probe(0, 1)
        assert oracle.is_reached(1)
        oracle.probe(1, 2)
        assert oracle.is_reached(2)

    def test_closed_edge_does_not_extend_reach(self):
        model = _model(path_graph(3), p=0.0)
        oracle = LocalProbeOracle(model, source=0)
        assert oracle.probe(0, 1) is False
        assert not oracle.is_reached(1)
        with pytest.raises(LocalityViolation):
            oracle.probe(1, 2)

    def test_probe_beyond_closed_frontier_rejected(self):
        g = path_graph(4)
        model = TablePercolation(g, 1.0, seed=0)
        oracle = LocalProbeOracle(model, source=0)
        oracle.probe(0, 1)
        with pytest.raises(LocalityViolation):
            oracle.probe(2, 3)  # 2 not reached yet

    def test_reached_frozen_view(self):
        oracle = LocalProbeOracle(_model(path_graph(2)), source=0)
        assert oracle.reached == frozenset({0})
        oracle.probe(0, 1)
        assert oracle.reached == frozenset({0, 1})

    def test_source_must_be_vertex(self):
        with pytest.raises(ValueError):
            LocalProbeOracle(_model(path_graph(2)), source=99)

    def test_locality_with_hash_model_on_hypercube(self):
        model = HashPercolation(Hypercube(5), 1.0, seed=0)
        oracle = LocalProbeOracle(model, source=0)
        oracle.probe(0, 1)
        oracle.probe(1, 3)
        assert oracle.is_reached(3)
        with pytest.raises(LocalityViolation):
            oracle.probe(24, 25)

    def test_reprobe_never_violates(self):
        oracle = LocalProbeOracle(_model(path_graph(3)), source=0)
        oracle.probe(0, 1)
        oracle.probe(1, 2)
        # all were legal; re-asking in any orientation stays legal
        assert oracle.probe(2, 1) is True
        assert oracle.queries == 2

    def test_budget_and_locality_compose(self):
        oracle = LocalProbeOracle(
            _model(path_graph(5)), source=0, budget=2
        )
        oracle.probe(0, 1)
        oracle.probe(1, 2)
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(2, 3)

    def test_open_cluster_merging_is_impossible(self):
        # Under locality, every open probe touches the reached set, so
        # reach grows one vertex at a time; verify on a branching graph.
        g = ExplicitGraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        oracle = LocalProbeOracle(TablePercolation(g, 1.0, seed=0), source=0)
        oracle.probe(0, 1)
        oracle.probe(0, 2)
        oracle.probe(1, 3)
        assert oracle.is_reached(3)
        oracle.probe(2, 3)
        assert oracle.reached == frozenset({0, 1, 2, 3})
