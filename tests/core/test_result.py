"""Tests for repro.core.result."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.result import (
    FailureReason,
    InvalidPathError,
    RoutingResult,
    erase_loops,
    validate_path,
)
from repro.graphs.explicit import cycle_graph, path_graph
from repro.percolation.models import TablePercolation


class TestRoutingResult:
    def test_successful_result(self):
        r = RoutingResult(
            source=0, target=2, success=True, queries=5, path=[0, 1, 2]
        )
        assert r.path_length == 2
        assert not r.censored

    def test_budget_failure_is_censored(self):
        r = RoutingResult(
            source=0,
            target=2,
            success=False,
            queries=10,
            failure=FailureReason.BUDGET,
        )
        assert r.censored
        assert r.path_length is None

    def test_success_requires_path(self):
        with pytest.raises(ValueError):
            RoutingResult(source=0, target=1, success=True, queries=1)

    def test_failure_requires_reason(self):
        with pytest.raises(ValueError):
            RoutingResult(source=0, target=1, success=False, queries=1)

    def test_failure_forbids_path(self):
        with pytest.raises(ValueError):
            RoutingResult(
                source=0,
                target=1,
                success=False,
                queries=1,
                path=[0, 1],
                failure=FailureReason.GAVE_UP,
            )


class TestValidatePath:
    def test_accepts_valid(self):
        g = path_graph(3)
        model = TablePercolation(g, 1.0, seed=0)
        validate_path(g, model, [0, 1, 2, 3], 0, 3)

    def test_rejects_wrong_endpoints(self):
        g = path_graph(3)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(InvalidPathError):
            validate_path(g, model, [1, 2], 0, 2)
        with pytest.raises(InvalidPathError):
            validate_path(g, model, [0, 1], 0, 2)

    def test_rejects_non_edges(self):
        g = path_graph(3)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(InvalidPathError):
            validate_path(g, model, [0, 2], 0, 2)

    def test_rejects_closed_edges(self):
        g = path_graph(3)
        model = TablePercolation(g, 0.0, seed=0)
        with pytest.raises(InvalidPathError):
            validate_path(g, model, [0, 1], 0, 1)

    def test_rejects_empty(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(InvalidPathError):
            validate_path(g, model, [], 0, 1)

    def test_rejects_revisits(self):
        g = cycle_graph(4)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(InvalidPathError):
            validate_path(g, model, [0, 1, 0, 3], 0, 3)

    def test_single_vertex_path(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        validate_path(g, model, [0], 0, 0)


class TestEraseLoops:
    def test_no_loops_untouched(self):
        assert erase_loops([0, 1, 2]) == [0, 1, 2]

    def test_simple_loop(self):
        assert erase_loops([0, 1, 2, 1, 3]) == [0, 1, 3]

    def test_loop_back_to_source(self):
        assert erase_loops([0, 1, 2, 0, 3]) == [0, 3]

    def test_nested_loops(self):
        assert erase_loops([0, 1, 2, 3, 1, 4, 2, 5]) == [0, 1, 4, 2, 5]

    def test_single_vertex(self):
        assert erase_loops([7]) == [7]

    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=30))
    def test_output_is_simple(self, walk):
        out = erase_loops(walk)
        assert len(set(out)) == len(out)

    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=30))
    def test_endpoints_preserved(self, walk):
        out = erase_loops(walk)
        assert out[0] == walk[0]
        assert out[-1] == walk[-1]

    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=30))
    def test_edges_come_from_walk(self, walk):
        walk_edges = {frozenset(e) for e in zip(walk, walk[1:])}
        out = erase_loops(walk)
        for e in zip(out, out[1:]):
            assert frozenset(e) in walk_edges
