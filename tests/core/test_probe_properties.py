"""Property-based tests of the probe-counting model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probe import (
    LocalityViolation,
    LocalProbeOracle,
    ProbeOracle,
)
from repro.graphs.explicit import cycle_graph
from repro.graphs.hypercube import Hypercube
from repro.percolation.models import HashPercolation


@st.composite
def probe_script(draw):
    """A random sequence of probes on a fixed cycle, plus model params."""
    n = 10
    probes = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.booleans(),  # orientation flip
            ),
            max_size=40,
        )
    )
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return probes, p, seed


class TestCountingProperties:
    @given(probe_script())
    @settings(max_examples=80, deadline=None)
    def test_queries_equal_distinct_edges(self, script):
        probes, p, seed = script
        g = cycle_graph(10)
        oracle = ProbeOracle(HashPercolation(g, p, seed))
        seen = set()
        for i, flip in probes:
            u, v = i, (i + 1) % 10
            if flip:
                u, v = v, u
            oracle.probe(u, v)
            seen.add(g.edge_key(u, v))
        assert oracle.queries == len(seen)

    @given(probe_script())
    @settings(max_examples=60, deadline=None)
    def test_answers_stable_across_reprobes(self, script):
        probes, p, seed = script
        g = cycle_graph(10)
        oracle = ProbeOracle(HashPercolation(g, p, seed))
        answers = {}
        for i, flip in probes:
            u, v = i, (i + 1) % 10
            if flip:
                u, v = v, u
            key = g.edge_key(u, v)
            result = oracle.probe(u, v)
            if key in answers:
                assert answers[key] == result
            answers[key] = result

    @given(st.integers(min_value=0, max_value=2**32), st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_oracle_agrees_with_model(self, seed, p):
        g = Hypercube(4)
        model = HashPercolation(g, p, seed)
        oracle = ProbeOracle(model)
        for e in g.edges():
            assert oracle.probe(*e) == model.is_open(*e)


class TestLocalityProperties:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_reached_set_is_exactly_open_cluster_after_full_sweep(self, seed):
        """Probing BFS-style from the source reaches exactly the open
        cluster of the source (cross-check vs percolation.cluster)."""
        from collections import deque

        from repro.percolation.cluster import component

        g = Hypercube(4)
        model = HashPercolation(g, 0.5, seed)
        oracle = LocalProbeOracle(model, source=0)
        queue = deque([0])
        visited = {0}
        while queue:
            x = queue.popleft()
            for y in g.neighbors(x):
                if oracle.probe(x, y) and y not in visited:
                    visited.add(y)
                    queue.append(y)
        assert oracle.reached == frozenset(component(model, 0))

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_unreached_probe_always_raises(self, seed):
        g = cycle_graph(12)
        model = HashPercolation(g, 1.0, seed)
        oracle = LocalProbeOracle(model, source=0)
        oracle.probe(0, 1)
        # vertex 6-7 cannot be reached yet regardless of seed
        try:
            oracle.probe(6, 7)
            raise AssertionError("locality violation not raised")
        except LocalityViolation:
            pass

    @given(st.integers(min_value=0, max_value=2**32), st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_reached_only_grows(self, seed, p):
        g = cycle_graph(8)
        model = HashPercolation(g, p, seed)
        oracle = LocalProbeOracle(model, source=0)
        snapshots = [oracle.reached]
        frontier = [0]
        for _ in range(8):
            new_frontier = []
            for x in frontier:
                for y in g.neighbors(x):
                    if oracle.is_reached(x):
                        oracle.probe(x, y)
                        if oracle.is_reached(y):
                            new_frontier.append(y)
            snapshots.append(oracle.reached)
            frontier = new_frontier or frontier
        for a, b in zip(snapshots, snapshots[1:]):
            assert a <= b
