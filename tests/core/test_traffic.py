"""The demand-matrix trial unit (repro.core.traffic).

Contracts under test:

* demand generators are pure functions of ``(graph, trial_seed)`` —
  same seed, same matrix — and validate their arguments eagerly;
* :func:`summarize_traffic` is the single congestion accountant:
  link loads count delivered paths per undirected edge, mean load
  averages over *all* edges;
* a one-commodity :class:`FixedTraffic` trial routes exactly the pair
  a single-pair ``run_trial`` would (the degenerate case the refactor
  must preserve), and ``TrialRecord.__repr__`` without traffic is
  byte-identical to the pre-traffic dataclass repr — the golden-table
  gate for all existing experiments;
* :func:`complexity_specs` delegates to :func:`traffic_specs` when
  given ``demands=`` and rejects the argument combinations that have
  no demand-matrix meaning.
"""

import math

import pytest

from repro.core.complexity import TrialRecord, complexity_specs
from repro.core.result import RoutingResult
from repro.core.traffic import (
    AllToAllTraffic,
    DemandMatrix,
    FixedTraffic,
    HotspotTraffic,
    PermutationTraffic,
    TrafficResult,
    assemble_traffic,
    run_traffic_trial,
    summarize_traffic,
    traffic_specs,
)
from repro.graphs.hypercube import Hypercube
from repro.routers.bfs import LocalBFSRouter
from repro.util.rng import derive_seed


@pytest.fixture(scope="module")
def graph():
    return Hypercube(4)


class TestDemandMatrix:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DemandMatrix(pairs=())

    def test_commodities(self, graph):
        verts = list(graph.vertices())
        dm = DemandMatrix(pairs=((verts[0], verts[1]), (verts[2], verts[3])))
        assert dm.commodities == 2


class TestGenerators:
    @pytest.mark.parametrize(
        "factory",
        [
            PermutationTraffic(5),
            PermutationTraffic(1),
            HotspotTraffic(4, 0.5),
            HotspotTraffic(4, 0.0),
            HotspotTraffic(4, 1.0),
            AllToAllTraffic(3),
        ],
    )
    def test_deterministic_in_seed(self, graph, factory):
        assert factory(graph, 1234) == factory(graph, 1234)
        # Different seeds almost surely give a different matrix on
        # 16 vertices; equality here would signal a seed leak.
        assert factory(graph, 1234) != factory(graph, 99999)

    def test_permutation_pairs_distinct_endpoints(self, graph):
        dm = PermutationTraffic(6)(graph, 7)
        sources = [s for s, _ in dm.pairs]
        targets = [t for _, t in dm.pairs]
        assert len(set(sources)) == 6
        assert len(set(targets)) == 6
        assert all(s != t for s, t in dm.pairs)

    def test_hotspot_extremes(self, graph):
        pure = HotspotTraffic(5, 1.0)(graph, 3)
        targets = {t for _, t in pure.pairs}
        assert len(targets) == 1  # skew 1: everyone hits the hotspot
        balanced = HotspotTraffic(5, 0.0)(graph, 3)
        assert len({t for _, t in balanced.pairs}) > 1

    def test_all_to_all_is_ordered_pairs(self, graph):
        dm = AllToAllTraffic(3)(graph, 11)
        assert dm.commodities == 6  # 3 * 2 ordered pairs
        assert len(set(dm.pairs)) == 6

    def test_too_many_commodities_rejected(self, graph):
        with pytest.raises(ValueError):
            PermutationTraffic(17)(graph, 0)
        with pytest.raises(ValueError):
            HotspotTraffic(16, 0.5)(graph, 0)

    def test_fixed_traffic_validates_vertices(self, graph):
        verts = list(graph.vertices())
        ok = FixedTraffic(((verts[0], verts[3]),))
        assert ok(graph, 5).pairs == ((verts[0], verts[3]),)
        bad = FixedTraffic((("nope", verts[0]),))
        with pytest.raises(Exception):
            bad(graph, 5)


class TestSummarize:
    def test_link_loads_and_mean(self, graph):
        verts = list(graph.vertices())
        # Two delivered paths sharing one edge, one failed commodity.
        path_a = graph.shortest_path(verts[0], verts[3])
        results = [
            RoutingResult(
                source=path_a[0], target=path_a[-1], success=True,
                queries=4, path=path_a, router="x",
            ),
            RoutingResult(
                source=path_a[0], target=path_a[-1], success=True,
                queries=6, path=path_a, router="x",
            ),
            RoutingResult(
                source=verts[1], target=verts[2], success=False,
                queries=9, failure="gave_up", router="x",
            ),
        ]
        traffic = summarize_traffic(graph, results)
        assert traffic.commodities == 3
        assert traffic.delivered == 2
        assert traffic.delivered_mask == (True, True, False)
        assert traffic.queries == (4, 6, 9)
        assert traffic.max_link_load == 2
        carried = 2 * (len(path_a) - 1)
        assert traffic.mean_link_load == carried / graph.num_edges()
        assert traffic.routability == pytest.approx(2 / 3)
        assert traffic.total_queries == 19
        assert traffic.queries_per_delivered == pytest.approx(19 / 2)

    def test_nothing_delivered_is_nan_cost(self, graph):
        verts = list(graph.vertices())
        results = [
            RoutingResult(
                source=verts[0], target=verts[1], success=False,
                queries=2, failure="gave_up", router="x",
            )
        ]
        traffic = summarize_traffic(graph, results)
        assert traffic.max_link_load == 0
        assert traffic.mean_link_load == 0.0
        assert math.isnan(traffic.queries_per_delivered)

    def test_result_invariants_enforced(self):
        with pytest.raises(ValueError):
            TrafficResult(
                commodities=2, delivered=1, queries=(1,),
                delivered_mask=(True, False), max_link_load=0,
                mean_link_load=0.0,
            )
        with pytest.raises(ValueError):
            TrafficResult(
                commodities=2, delivered=2, queries=(1, 2),
                delivered_mask=(True, False), max_link_load=0,
                mean_link_load=0.0,
            )


class TestDegenerateSinglePair:
    def test_one_commodity_routes_like_run_trial(self, graph):
        source, target = graph.canonical_pair()
        router = LocalBFSRouter()
        record = run_traffic_trial(
            graph, 0.8, router, FixedTraffic(((source, target),)),
            trial=0, trial_seed=424242,
        )
        assert record.traffic is not None
        assert record.traffic.commodities == 1
        # The one commodity's delivery decides connectivity.
        assert record.connected == record.traffic.delivered_mask[0]
        assert record.result is None

    def test_repr_without_traffic_is_pre_refactor_dataclass_repr(self):
        record = TrialRecord(trial=3, seed=17, connected=True, result=None)
        assert repr(record) == (
            "TrialRecord(trial=3, seed=17, connected=True, result=None)"
        )

    def test_repr_with_traffic_appends_field(self, graph):
        source, target = graph.canonical_pair()
        record = run_traffic_trial(
            graph, 0.8, LocalBFSRouter(),
            FixedTraffic(((source, target),)), trial=0, trial_seed=1,
        )
        assert repr(record).startswith("TrialRecord(trial=0,")
        assert "traffic=TrafficResult(" in repr(record)


class TestSpecs:
    def test_traffic_specs_shape(self, graph):
        specs = traffic_specs(
            graph, 0.7, LocalBFSRouter(), PermutationTraffic(3),
            trials=4, seed=9, key=("tt",),
        )
        assert [spec.key for spec in specs] == [("tt", t) for t in range(4)]
        assert all(spec.workload is not None for spec in specs)
        assert specs[0].args == (0, derive_seed(9, "traffic", 0))
        # One shared workload for the whole sweep point.
        ids = {spec.workload.workload_id for spec in specs}
        assert len(ids) == 1

    def test_complexity_specs_delegates_on_demands(self, graph):
        router = LocalBFSRouter()
        via_complexity = complexity_specs(
            graph, 0.7, router, trials=3, seed=9, key=("tt",),
            demands=PermutationTraffic(3),
        )
        direct = traffic_specs(
            graph, 0.7, router, PermutationTraffic(3),
            trials=3, seed=9, key=("tt",),
        )
        assert [s.key for s in via_complexity] == [s.key for s in direct]
        assert [s.args for s in via_complexity] == [s.args for s in direct]
        assert (
            via_complexity[0].workload.workload_id
            == direct[0].workload.workload_id
        )

    def test_complexity_specs_rejects_pair_with_demands(self, graph):
        with pytest.raises(ValueError, match="pair"):
            complexity_specs(
                graph, 0.7, LocalBFSRouter(), trials=3,
                pair=graph.canonical_pair(),
                demands=PermutationTraffic(3),
            )

    def test_complexity_specs_rejects_conditioning_with_demands(self, graph):
        with pytest.raises(ValueError, match="conditioning"):
            complexity_specs(
                graph, 0.7, LocalBFSRouter(), trials=3,
                conditioning="none", demands=PermutationTraffic(3),
            )

    def test_specs_execute_deterministically(self, graph):
        specs = traffic_specs(
            graph, 0.7, LocalBFSRouter(), PermutationTraffic(3),
            trials=3, seed=9,
        )
        again = traffic_specs(
            graph, 0.7, LocalBFSRouter(), PermutationTraffic(3),
            trials=3, seed=9,
        )
        assert [repr(s.execute().value) for s in specs] == [
            repr(s.execute().value) for s in again
        ]


class TestMeasurement:
    def test_assemble_and_metrics(self, graph):
        router = LocalBFSRouter()
        specs = traffic_specs(
            graph, 0.85, router, PermutationTraffic(4), trials=6, seed=2,
        )
        records = [s.execute().value for s in specs]
        m = assemble_traffic(graph, 0.85, router, records)
        assert m.trials == 6
        assert m.offered == 24
        assert 0 <= m.delivered <= m.offered
        assert 0.0 <= m.routability <= 1.0
        assert 0.0 <= m.full_delivery_rate <= 1.0
        assert m.max_link_load() >= m.median_max_link_load() >= 0
        assert m.mean_link_load() >= 0.0

    def test_assemble_rejects_pairwise_records(self, graph):
        record = TrialRecord(trial=0, seed=1, connected=True, result=None)
        with pytest.raises(ValueError):
            assemble_traffic(graph, 0.5, LocalBFSRouter(), [record])
