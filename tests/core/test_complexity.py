"""Tests for repro.core.complexity — conditioning and statistics."""

import itertools

import pytest

from repro.core.complexity import measure_complexity
from repro.graphs.explicit import ExplicitGraph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.percolation.models import TablePercolation
from repro.routers.bfs import LocalBFSRouter
from repro.routers.waypoint import WaypointRouter


class TestExactConditioning:
    def test_only_connected_trials_attempted(self):
        g = path_graph(3)
        m = measure_complexity(
            g, p=0.5, router=LocalBFSRouter(), pair=(0, 3), trials=40, seed=1
        )
        for rec in m.records:
            assert rec.attempted == rec.connected

    def test_connection_rate_matches_theory(self):
        # path of 3 edges: Pr[0 ~ 3] = p^3
        g = path_graph(3)
        p = 0.7
        m = measure_complexity(
            g, p=p, router=LocalBFSRouter(), pair=(0, 3), trials=600, seed=2
        )
        assert abs(m.connection_rate - p**3) < 0.08

    def test_complete_router_always_succeeds_conditioned(self):
        g = Hypercube(4)
        m = measure_complexity(
            g, p=0.6, router=LocalBFSRouter(), trials=30, seed=3
        )
        if m.connected_trials:
            assert m.success_rate == 1.0

    def test_budget_censors(self):
        g = Hypercube(4)
        m = measure_complexity(
            g,
            p=0.9,
            router=LocalBFSRouter(),
            trials=20,
            seed=4,
            budget=3,  # far below what BFS needs to cross the cube
        )
        assert m.censored_trials > 0
        for rec in m.records:
            if rec.result is not None and rec.result.censored:
                assert rec.result.queries <= 3

    def test_exact_conditional_expectation_tiny_graph(self):
        # Graph: two parallel 2-edge routes 0-1-3 and 0-2-3.  Enumerate
        # all 2^4 subgraphs to get the exact conditional expectation of
        # BFS queries given 0 ~ 3, then compare to the harness estimate.
        edges = [(0, 1), (1, 3), (0, 2), (2, 3)]
        g = ExplicitGraph(edges)
        p = 0.5
        router = LocalBFSRouter()

        exact_total = 0.0
        exact_weight = 0.0

        class FixedModel:
            def __init__(self, states):
                self.graph = g
                self.p = p
                self._states = states

            def is_open(self, u, v):
                return self._states[g.edge_key(u, v)]

            def open_neighbors(self, v):
                return [w for w in g.neighbors(v) if self.is_open(v, w)]

            def path_is_open(self, path):
                return all(self.is_open(a, b) for a, b in zip(path, path[1:]))

        for states in itertools.product([False, True], repeat=4):
            assignment = dict(zip([g.edge_key(*e) for e in edges], states))
            model = FixedModel(assignment)
            from repro.percolation.cluster import connected

            if not connected(model, 0, 3):
                continue
            result = router.route(model, 0, 3)
            assert result.success
            exact_total += result.queries
            exact_weight += 1
        exact_mean = exact_total / exact_weight  # p=1/2: all equally likely

        m = measure_complexity(
            g, p=p, router=router, pair=(0, 3), trials=800, seed=5
        )
        estimate = m.query_summary().mean
        assert abs(estimate - exact_mean) < 0.25

    def test_max_conditioned_stops_early(self):
        g = path_graph(2)
        m = measure_complexity(
            g,
            p=0.9,
            router=LocalBFSRouter(),
            pair=(0, 2),
            trials=1000,
            seed=6,
            max_conditioned=5,
        )
        assert sum(r.attempted for r in m.records) == 5
        assert m.trials < 1000


class TestRouterConditioning:
    def test_agrees_with_exact_for_complete_router(self):
        g = Hypercube(4)
        router = LocalBFSRouter()
        exact = measure_complexity(
            g, p=0.5, router=router, trials=40, seed=7, conditioning="exact"
        )
        via_router = measure_complexity(
            g, p=0.5, router=router, trials=40, seed=7, conditioning="router"
        )
        # identical seeds → identical percolations → identical verdicts
        assert [r.connected for r in exact.records] == [
            r.connected for r in via_router.records
        ]

    def test_rejects_incomplete_router(self):
        with pytest.raises(ValueError):
            measure_complexity(
                Hypercube(3),
                p=0.5,
                router=WaypointRouter(max_radius=1),
                trials=2,
                seed=0,
                conditioning="router",
            )

    def test_rejects_budget(self):
        with pytest.raises(ValueError):
            measure_complexity(
                Hypercube(3),
                p=0.5,
                router=LocalBFSRouter(),
                trials=2,
                seed=0,
                conditioning="router",
                budget=10,
            )


class TestStatistics:
    def _measurement(self):
        return measure_complexity(
            Hypercube(4),
            p=0.7,
            router=LocalBFSRouter(),
            trials=40,
            seed=8,
        )

    def test_query_summary_counts_successes(self):
        m = self._measurement()
        assert m.query_summary().count == len(m.successes())

    def test_empirical_cdf_monotone(self):
        m = self._measurement()
        cdf = m.empirical_cdf([1, 10, 50, 1000])
        assert cdf == sorted(cdf)
        assert all(0 <= x <= 1 for x in cdf)

    def test_cdf_at_huge_threshold_is_success_rate(self):
        m = self._measurement()
        assert m.empirical_cdf([10**9])[0] == pytest.approx(m.success_rate)

    def test_path_lengths_at_least_distance(self):
        m = self._measurement()
        for length in m.path_lengths():
            assert length >= 4  # antipodal pair in H_4

    def test_success_rate_ci(self):
        m = self._measurement()
        rate, lo, hi = m.success_rate_ci()
        assert lo <= rate <= hi

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            measure_complexity(
                Hypercube(3), p=0.5, router=LocalBFSRouter(), trials=0
            )
        with pytest.raises(ValueError):
            measure_complexity(
                Hypercube(3),
                p=0.5,
                router=LocalBFSRouter(),
                trials=2,
                conditioning="bogus",
            )

    def test_deterministic_given_seed(self):
        a = measure_complexity(
            Hypercube(4), p=0.6, router=LocalBFSRouter(), trials=15, seed=9
        )
        b = measure_complexity(
            Hypercube(4), p=0.6, router=LocalBFSRouter(), trials=15, seed=9
        )
        assert a.query_counts() == b.query_counts()
        assert a.connected_trials == b.connected_trials
