"""Tests for repro.routers.bestfirst."""

import pytest

from repro.graphs.double_tree import DoubleBinaryTree
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers.bestfirst import BestFirstRouter
from repro.routers.bfs import LocalBFSRouter
from tests.routers.conftest import route_and_check


class TestBestFirstRouter:
    def test_straight_line_at_p1(self):
        result, _ = route_and_check(BestFirstRouter(), Hypercube(6), 1.0, 0)
        assert result.success
        assert result.path_length == 6
        assert result.queries == 6  # never probes a non-improving edge

    def test_source_equals_target(self):
        g = Mesh(2, 4)
        model = TablePercolation(g, 1.0, seed=0)
        result = BestFirstRouter().route(model, (2, 2), (2, 2))
        assert result.success and result.queries == 0

    def test_complete(self):
        g = Mesh(2, 6)
        router = BestFirstRouter()
        for seed in range(15):
            model = TablePercolation(g, 0.55, seed=seed)
            u, v = g.canonical_pair()
            result = router.route(model, u, v)
            assert result.success == connected(model, u, v), seed

    def test_complete_on_double_tree(self):
        g = DoubleBinaryTree(4)
        router = BestFirstRouter()
        for seed in range(10):
            model = TablePercolation(g, 0.8, seed=seed)
            x, y = g.roots()
            result = router.route(model, x, y)
            assert result.success == connected(model, x, y), seed

    def test_cheaper_than_bfs_on_supercritical_hypercube(self):
        g = Hypercube(8)
        total_best = total_bfs = 0
        hits = 0
        for seed in range(10):
            model = TablePercolation(g, 0.7, seed=seed)
            u, v = g.canonical_pair()
            best = BestFirstRouter().route(model, u, v)
            bfs = LocalBFSRouter().route(model, u, v)
            if best.success and bfs.success:
                total_best += best.queries
                total_bfs += bfs.queries
                hits += 1
        assert hits >= 8
        assert total_best < total_bfs / 2

    def test_budget_respected(self):
        result, _ = route_and_check(
            BestFirstRouter(), Hypercube(7), p=0.5, seed=3, budget=5
        )
        assert result.queries <= 5

    def test_deterministic(self):
        g = Hypercube(6)
        model = TablePercolation(g, 0.6, seed=9)
        u, v = g.canonical_pair()
        r1 = BestFirstRouter().route(model, u, v)
        r2 = BestFirstRouter().route(model, u, v)
        assert r1.queries == r2.queries
        assert r1.path == r2.path

    def test_is_local_and_complete_flags(self):
        router = BestFirstRouter()
        assert router.is_local
        assert router.is_complete

    def test_suite_contains_it(self):
        from repro.routers import local_router_suite

        names = {r.name for r in local_router_suite()}
        assert "best-first" in names
