"""Tests for repro.routers.dfs (directed DFS and greedy)."""

import pytest

from repro.graphs.double_tree import DoubleBinaryTree
from repro.graphs.explicit import ExplicitGraph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers.dfs import DirectedDFSRouter, GreedyRouter
from tests.routers.conftest import route_and_check


class TestDirectedDFS:
    def test_finds_path_at_p1(self):
        result, _ = route_and_check(DirectedDFSRouter(), Hypercube(5), 1.0, 0)
        assert result.success
        # directed DFS walks straight down the metric at p=1
        assert result.path_length == 5
        assert result.queries == 5

    def test_complete(self):
        g = Mesh(2, 6)
        router = DirectedDFSRouter()
        for seed in range(12):
            model = TablePercolation(g, 0.5, seed=seed)
            u, v = g.canonical_pair()
            result = router.route(model, u, v)
            assert result.success == connected(model, u, v), seed

    def test_on_double_tree(self):
        g = DoubleBinaryTree(4)
        router = DirectedDFSRouter()
        found = 0
        for seed in range(15):
            result, model = route_and_check(
                router, g, p=0.85, seed=seed
            )
            if result.success:
                found += 1
                assert result.path_length >= g.diameter()
        assert found > 0

    def test_backtracks_out_of_dead_end(self):
        # 0 → 1 is a trap (dead end closer to target 3); DFS must back
        # out and take 0 → 2 → 3.
        g = ExplicitGraph([(0, 1), (0, 2), (2, 3), (1, 9), (9, 3)])
        model = TablePercolation(g, 1.0, seed=0)

        class RiggedModel:
            graph = g
            p = 1.0

            def is_open(self, u, v):
                return g.edge_key(u, v) != g.edge_key(9, 3)

            def open_neighbors(self, v):
                return [w for w in g.neighbors(v) if self.is_open(v, w)]

            def path_is_open(self, path):
                return all(self.is_open(a, b) for a, b in zip(path, path[1:]))

        result = DirectedDFSRouter().route(RiggedModel(), 0, 3)
        assert result.success
        assert result.path == [0, 2, 3]

    def test_source_equals_target(self):
        g = path_graph(2)
        model = TablePercolation(g, 1.0, seed=0)
        result = DirectedDFSRouter().route(model, 0, 0)
        assert result.success and result.queries == 0


class TestGreedy:
    def test_succeeds_at_p1(self):
        result, _ = route_and_check(GreedyRouter(), Hypercube(6), 1.0, 0)
        assert result.success
        assert result.path_length == 6  # strictly monotone

    def test_not_complete(self):
        assert not GreedyRouter().is_complete

    def test_fails_when_only_detours_exist(self):
        # Cycle 0-1-2-3-4-5: route 0 → 3.  Close edge (2, 3): the only
        # open route goes 0-5-4-3, whose first step is *not* closer to 3
        # (d(5,3)=2 = d(0,3)... actually d(0,3)=3, d(5,3)=2 so 5 is
        # closer; close (4,3) as well to kill that direction too).
        from repro.graphs.explicit import cycle_graph

        g = cycle_graph(6)

        class RiggedModel:
            graph = g
            p = 1.0

            def is_open(self, u, v):
                return g.edge_key(u, v) not in {(2, 3), (3, 4)}

            def open_neighbors(self, v):
                return [w for w in g.neighbors(v) if self.is_open(v, w)]

            def path_is_open(self, path):
                return all(self.is_open(a, b) for a, b in zip(path, path[1:]))

        model = RiggedModel()
        result = GreedyRouter().route(model, 0, 3)
        assert not result.success  # target unreachable monotonically

    def test_success_rate_below_complete_router_on_faulty_hypercube(self):
        g = Hypercube(7)
        p = 0.55
        greedy_wins = dfs_wins = 0
        for seed in range(25):
            model = TablePercolation(g, p, seed=seed)
            u, v = g.canonical_pair()
            if not connected(model, u, v):
                continue
            if GreedyRouter().route(model, u, v).success:
                greedy_wins += 1
            if DirectedDFSRouter().route(model, u, v).success:
                dfs_wins += 1
        assert greedy_wins <= dfs_wins

    def test_monotone_path_property(self):
        g = Hypercube(6)
        for seed in range(8):
            result, _ = route_and_check(GreedyRouter(), g, p=0.8, seed=seed)
            if result.success:
                distances = [g.distance(x, g.canonical_pair()[1]) for x in result.path]
                assert distances == sorted(distances, reverse=True)
