"""Tests for repro.routers.bfs (local and bidirectional BFS)."""

import pytest

from repro.graphs.explicit import cycle_graph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from tests.routers.conftest import route_and_check

ROUTERS = [LocalBFSRouter(), BidirectionalBFSRouter()]


@pytest.mark.parametrize("router", ROUTERS, ids=lambda r: r.name)
class TestBothBFSRouters:
    def test_finds_path_at_p1(self, router):
        result, _ = route_and_check(router, Hypercube(5), p=1.0, seed=0)
        assert result.success
        assert result.path_length == 5  # BFS paths are shortest

    def test_source_equals_target(self, router):
        g = path_graph(3)
        model = TablePercolation(g, 1.0, seed=0)
        result = router.route(model, 1, 1)
        assert result.success
        assert result.path == [1]
        assert result.queries == 0

    def test_fails_cleanly_when_disconnected(self, router):
        g = path_graph(3)
        model = TablePercolation(g, 0.0, seed=0)
        result = router.route(model, 0, 3)
        assert not result.success
        assert result.failure is not None

    def test_completeness_matches_ground_truth(self, router):
        g = Mesh(2, 6)
        for seed in range(15):
            model = TablePercolation(g, 0.5, seed=seed)
            u, v = g.canonical_pair()
            result = router.route(model, u, v)
            assert result.success == connected(model, u, v), seed

    def test_path_always_valid_over_seeds(self, router):
        for seed in range(10):
            result, _ = route_and_check(
                router, Hypercube(5), p=0.7, seed=seed
            )
            # validation happens inside route_and_check

    def test_budget_failure_reported(self, router):
        result, _ = route_and_check(
            router, Hypercube(6), p=1.0, seed=0, budget=2
        )
        assert not result.success
        assert result.censored
        assert result.queries <= 2


class TestComplexityComparison:
    def test_bidirectional_beats_local_on_hypercube(self):
        # On an exponential-growth graph bidirectional search explores
        # ~sqrt the volume; with p=1 this is deterministic.
        g = Hypercube(9)
        local, _ = route_and_check(LocalBFSRouter(), g, p=1.0, seed=0)
        bidi, _ = route_and_check(BidirectionalBFSRouter(), g, p=1.0, seed=0)
        assert bidi.queries < local.queries

    def test_local_bfs_probes_component_when_failing(self):
        # On a cycle with two closed edges BFS must probe everything
        # reachable before giving up.
        g = cycle_graph(10)
        model = TablePercolation(g, 0.0, seed=0)
        router = LocalBFSRouter()
        result = router.route(model, 0, 5)
        assert not result.success
        assert result.queries == 2  # both edges at the source, then stuck
