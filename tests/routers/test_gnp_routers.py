"""Tests for repro.routers.gnp (Theorems 10 and 11)."""

import pytest

from repro.percolation.cluster import connected
from repro.percolation.models import GnpPercolation
from repro.routers.gnp import (
    GnpBidirectionalRouter,
    GnpLocalRouter,
    GnpUnidirectionalRouter,
)

ROUTERS = [
    GnpLocalRouter(),
    GnpBidirectionalRouter(),
    GnpUnidirectionalRouter(),
]


def _route(router, n, p, seed, budget=None):
    model = GnpPercolation(n=n, p=p, seed=seed)
    u, v = model.graph.canonical_pair()
    return model, router.route(model, u, v, budget=budget)


@pytest.mark.parametrize("router", ROUTERS, ids=lambda r: r.name)
class TestAllGnpRouters:
    def test_dense_graph_succeeds(self, router):
        model, result = _route(router, n=40, p=0.5, seed=0)
        assert result.success

    def test_completeness(self, router):
        for seed in range(12):
            model = GnpPercolation(n=30, p=2.5 / 30, seed=seed)
            u, v = model.graph.canonical_pair()
            result = router.route(model, u, v)
            assert result.success == connected(model, u, v), seed

    def test_path_valid(self, router):
        for seed in range(6):
            model, result = _route(router, n=50, p=0.15, seed=seed)
            if result.success:
                assert result.path[0] == 0
                assert result.path[-1] == 49
                for a, b in zip(result.path, result.path[1:]):
                    assert model.is_open(a, b)

    def test_empty_graph_fails(self, router):
        model, result = _route(router, n=20, p=0.0, seed=0)
        assert not result.success

    def test_budget_respected(self, router):
        model, result = _route(router, n=60, p=2.0 / 60, seed=1, budget=10)
        assert result.queries <= 10

    def test_source_equals_target(self, router):
        model = GnpPercolation(n=10, p=0.5, seed=0)
        result = router.route(model, 4, 4)
        assert result.success and result.path == [4]


class TestComplexityOrdering:
    def test_bidirectional_beats_local(self):
        # Θ(n^{3/2}) vs Θ(n²): at n=400 the gap is clear on averages.
        n, c = 400, 3.0
        totals = {"local": 0, "bidi": 0}
        hits = 0
        for seed in range(10):
            model = GnpPercolation(n=n, p=c / n, seed=seed)
            u, v = model.graph.canonical_pair()
            if not connected(model, u, v):
                continue
            local = GnpLocalRouter().route(model, u, v)
            bidi = GnpBidirectionalRouter().route(model, u, v)
            assert local.success and bidi.success
            totals["local"] += local.queries
            totals["bidi"] += bidi.queries
            hits += 1
        assert hits >= 5
        assert totals["bidi"] < 0.5 * totals["local"]

    def test_unidirectional_oracle_matches_local_order(self):
        # A3: oracle access alone does not help; growth policy does.
        n, c = 300, 3.0
        totals = {"local": 0, "uni": 0}
        hits = 0
        for seed in range(8):
            model = GnpPercolation(n=n, p=c / n, seed=seed)
            u, v = model.graph.canonical_pair()
            if not connected(model, u, v):
                continue
            local = GnpLocalRouter().route(model, u, v)
            uni = GnpUnidirectionalRouter().route(model, u, v)
            totals["local"] += local.queries
            totals["uni"] += uni.queries
            hits += 1
        assert hits >= 4
        ratio = totals["uni"] / totals["local"]
        assert 0.5 < ratio < 2.0

    def test_local_complexity_near_quadratic(self):
        # Theorem 10: expected Θ(n²) — check n→2n scales queries ~4x.
        c = 3.0
        means = {}
        for n in (150, 300):
            total = hits = 0
            for seed in range(12):
                model = GnpPercolation(n=n, p=c / n, seed=seed)
                u, v = model.graph.canonical_pair()
                if not connected(model, u, v):
                    continue
                result = GnpLocalRouter().route(model, u, v)
                total += result.queries
                hits += 1
            assert hits >= 6
            means[n] = total / hits
        ratio = means[300] / means[150]
        assert 2.0 < ratio < 8.0  # ~4 expected, generous noise margins

    def test_direct_edge_shortcut(self):
        model = GnpPercolation(n=10, p=1.0, seed=0)
        result = GnpBidirectionalRouter().route(model, 0, 9)
        assert result.success
        assert result.queries == 1
        assert result.path == [0, 9]
