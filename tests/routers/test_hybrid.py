"""Tests for repro.routers.hybrid (the remark after Theorem 3(ii))."""

import pytest

from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers.bfs import LocalBFSRouter
from repro.routers.hybrid import HybridGreedyRouter
from tests.routers.conftest import route_and_check


class TestHybridGreedyRouter:
    def test_straight_descent_at_p1(self):
        result, _ = route_and_check(HybridGreedyRouter(), Hypercube(6), 1.0, 0)
        assert result.success
        assert result.path_length == 6
        # greedy phase handles everything except the last switch window
        assert result.queries <= 6 + 2 * 6

    def test_complete_on_hypercube(self):
        g = Hypercube(6)
        router = HybridGreedyRouter(switch_distance=2)
        for seed in range(12):
            model = TablePercolation(g, 0.5, seed=seed)
            u, v = g.canonical_pair()
            result = router.route(model, u, v)
            assert result.success == connected(model, u, v), seed

    def test_complete_on_mesh(self):
        g = Mesh(2, 6)
        router = HybridGreedyRouter(switch_distance=3)
        for seed in range(10):
            model = TablePercolation(g, 0.55, seed=seed)
            u, v = g.canonical_pair()
            result = router.route(model, u, v)
            assert result.success == connected(model, u, v), seed

    def test_switch_zero_is_pure_greedy_until_stuck(self):
        # with switch 0, the BFS only kicks in if greedy strands itself
        result, _ = route_and_check(
            HybridGreedyRouter(switch_distance=0), Hypercube(5), 1.0, 0
        )
        assert result.success
        assert result.queries == 5

    def test_cheaper_than_bfs_when_supercritical(self):
        g = Hypercube(8)
        totals = {"hybrid": 0, "bfs": 0}
        hits = 0
        for seed in range(10):
            model = TablePercolation(g, 0.7, seed=seed)
            u, v = g.canonical_pair()
            hybrid = HybridGreedyRouter(2).route(model, u, v)
            bfs = LocalBFSRouter().route(model, u, v)
            if hybrid.success and bfs.success:
                totals["hybrid"] += hybrid.queries
                totals["bfs"] += bfs.queries
                hits += 1
        assert hits >= 8
        assert totals["hybrid"] < totals["bfs"] / 2

    def test_source_equals_target(self):
        g = Hypercube(4)
        model = TablePercolation(g, 1.0, seed=0)
        result = HybridGreedyRouter().route(model, 3, 3)
        assert result.success and result.queries == 0

    def test_rejects_negative_switch(self):
        with pytest.raises(ValueError):
            HybridGreedyRouter(switch_distance=-1)

    def test_budget_respected(self):
        result, _ = route_and_check(
            HybridGreedyRouter(), Hypercube(7), p=0.4, seed=1, budget=10
        )
        assert result.queries <= 10

    def test_larger_switch_probes_more_but_succeeds_more_directly(self):
        # sanity: both variants complete; query counts are finite and
        # ordered sensibly on a fixed supercritical instance
        g = Hypercube(7)
        model = TablePercolation(g, 0.6, seed=4)
        u, v = g.canonical_pair()
        small = HybridGreedyRouter(1).route(model, u, v)
        large = HybridGreedyRouter(5).route(model, u, v)
        assert small.success == large.success
