"""Tests for repro.routers.waypoint (Theorems 3(ii) and 4 engines)."""

import pytest

from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh, Torus
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers.bfs import LocalBFSRouter
from repro.routers.waypoint import (
    HypercubeWaypointRouter,
    MeshWaypointRouter,
    WaypointRouter,
)
from tests.routers.conftest import route_and_check


class TestWaypointCore:
    def test_follows_geodesic_at_p1(self):
        g = Hypercube(6)
        result, _ = route_and_check(WaypointRouter(), g, p=1.0, seed=0)
        assert result.success
        assert result.path_length == 6
        # at p=1 every geodesic edge is probed exactly once plus the BFS
        # fan-out; queries stay well below the full edge count
        assert result.queries < g.num_edges()

    def test_source_equals_target(self):
        g = Mesh(2, 4)
        model = TablePercolation(g, 1.0, seed=0)
        result = WaypointRouter().route(model, (1, 1), (1, 1))
        assert result.success and result.path == [(1, 1)]

    def test_unbounded_router_is_complete(self):
        router = WaypointRouter()
        assert router.is_complete
        g = Mesh(2, 8)
        for seed in range(12):
            model = TablePercolation(g, 0.55, seed=seed)
            u, v = g.canonical_pair()
            result = router.route(model, u, v)
            assert result.success == connected(model, u, v), seed

    def test_bounded_router_not_complete(self):
        assert not WaypointRouter(max_radius=3).is_complete

    def test_bounded_router_gives_up_gracefully(self):
        g = Mesh(2, 10)
        router = WaypointRouter(max_radius=1)
        failures = 0
        for seed in range(25):
            model = TablePercolation(g, 0.75, seed=seed)
            u, v = g.canonical_pair()
            result = router.route(model, u, v)
            if not result.success and connected(model, u, v):
                failures += 1
        assert failures > 0  # radius-1 segments must sometimes fail

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            WaypointRouter(max_radius=0)

    def test_path_valid_across_detours(self):
        g = Mesh(2, 9)
        for seed in range(20):
            result, model = route_and_check(
                MeshWaypointRouter(), g, p=0.7, seed=seed
            )
            if result.success:
                assert result.path_length >= g.distance(*g.canonical_pair())

    def test_queries_far_below_bfs_on_supercritical_mesh(self):
        g = Mesh(2, 12)
        totals = {"waypoint": 0, "bfs": 0}
        hits = 0
        for seed in range(10):
            model = TablePercolation(g, 0.8, seed=seed)
            u, v = g.canonical_pair()
            w = MeshWaypointRouter().route(model, u, v)
            b = LocalBFSRouter().route(model, u, v)
            if w.success and b.success:
                totals["waypoint"] += w.queries
                totals["bfs"] += b.queries
                hits += 1
        assert hits >= 5
        assert totals["waypoint"] < 0.5 * totals["bfs"]


class TestHypercubeVariant:
    def test_alpha_sets_radius(self):
        router = HypercubeWaypointRouter(alpha=0.25)
        assert router.max_radius == 4

    def test_alpha_and_radius_mutually_exclusive(self):
        with pytest.raises(ValueError):
            HypercubeWaypointRouter(alpha=0.2, max_radius=5)

    def test_rejects_alpha_beyond_half(self):
        with pytest.raises(ValueError):
            HypercubeWaypointRouter(alpha=0.6)

    def test_routes_supercritical_hypercube(self):
        # n=10, alpha=0.3 → p = 10^-0.3 ≈ 0.5; comfortably above n^-1/2.
        g = Hypercube(10)
        p = 10 ** (-0.3)
        successes = 0
        for seed in range(10):
            result, model = route_and_check(
                HypercubeWaypointRouter(alpha=0.3), g, p=p, seed=seed
            )
            if result.success:
                successes += 1
        assert successes >= 6  # w.h.p. statement at finite n

    def test_works_without_alpha(self):
        result, _ = route_and_check(
            HypercubeWaypointRouter(), Hypercube(6), p=0.9, seed=1
        )
        assert result.success


class TestMeshVariant:
    def test_complete_by_default(self):
        assert MeshWaypointRouter().is_complete

    def test_routes_on_torus_too(self):
        g = Torus(2, 8)
        result, _ = route_and_check(
            MeshWaypointRouter(), g, p=0.8, seed=3, pair=((0, 0), (4, 4))
        )
        assert result.success

    def test_centered_pair_workload(self):
        g = Mesh(2, 15)
        pair = g.centered_pair_at_distance(8)
        result, model = route_and_check(
            MeshWaypointRouter(), g, p=0.75, seed=4, pair=pair
        )
        if result.success:
            assert result.path[0] == pair[0]
            assert result.path[-1] == pair[1]
