"""Tests for repro.routers.tree (Theorem 9's mirror-pair oracle router)."""

import math

import pytest

from repro.graphs.double_tree import DoubleBinaryTree
from repro.graphs.hypercube import Hypercube
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers.tree import MirrorPairOracleRouter
from tests.routers.conftest import route_and_check


class TestMirrorPairRouter:
    def test_routes_at_p1(self):
        g = DoubleBinaryTree(4)
        result, _ = route_and_check(MirrorPairOracleRouter(), g, 1.0, 0)
        assert result.success
        assert result.path_length == 8  # root → leaf → root

    def test_path_is_mirror_symmetric(self):
        g = DoubleBinaryTree(4)
        result, _ = route_and_check(MirrorPairOracleRouter(), g, 1.0, 1)
        path = result.path
        # midpoint is a leaf; second half mirrors the first
        mid = len(path) // 2
        assert path[mid][0] == "leaf"
        for i in range(mid):
            assert g.mirror_vertex(path[i]) == path[-1 - i]

    def test_only_accepts_double_tree(self):
        g = Hypercube(3)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(ValueError):
            MirrorPairOracleRouter().route(model, 0, 7)

    def test_only_accepts_roots(self):
        g = DoubleBinaryTree(3)
        model = TablePercolation(g, 1.0, seed=0)
        with pytest.raises(ValueError):
            MirrorPairOracleRouter().route(model, ("a", 1), ("b", 2))

    def test_fails_gracefully_when_no_mirror_path(self):
        g = DoubleBinaryTree(3)
        failures = successes = 0
        for seed in range(60):
            model = TablePercolation(g, 0.75, seed=seed)
            x, y = g.roots()
            result = MirrorPairOracleRouter().route(model, x, y)
            if result.success:
                successes += 1
            else:
                failures += 1
        # p = 0.75 > 1/√2: success with probability bounded away from 0,
        # but failures must also occur at finite depth
        assert successes > 5
        assert failures > 5

    def test_success_implies_connected(self):
        g = DoubleBinaryTree(4)
        for seed in range(20):
            model = TablePercolation(g, 0.8, seed=seed)
            x, y = g.roots()
            result = MirrorPairOracleRouter().route(model, x, y)
            if result.success:
                assert connected(model, x, y)

    def test_linear_complexity_scaling(self):
        # Theorem 9: average complexity c·n for p > 1/√2.  Check the
        # per-depth average grows sub-quadratically (linear up to noise).
        p = 0.9
        means = {}
        for depth in (4, 8, 12):
            g = DoubleBinaryTree(depth)
            x, y = g.roots()
            total = hits = 0
            for seed in range(40):
                model = TablePercolation(g, p, seed=seed)
                result = MirrorPairOracleRouter().route(model, x, y)
                if result.success:
                    total += result.queries
                    hits += 1
            assert hits > 10, f"too few successes at depth {depth}"
            means[depth] = total / hits
        # tripling the depth should scale queries by roughly 3, not 9
        ratio = means[12] / means[4]
        assert ratio < 6, means

    def test_queries_even_count(self):
        # pairs are probed two edges at a time (no short-circuit)
        g = DoubleBinaryTree(4)
        result, _ = route_and_check(MirrorPairOracleRouter(), g, 1.0, 5)
        assert result.queries % 2 == 0
