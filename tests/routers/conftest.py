"""Shared fixtures and helpers for router tests."""

from repro.core.result import validate_path
from repro.percolation.models import TablePercolation


def route_and_check(router, graph, p, seed, pair=None, budget=None):
    """Run one routing attempt; validate any returned path; return result."""
    source, target = pair if pair is not None else graph.canonical_pair()
    model = TablePercolation(graph, p, seed=seed)
    result = router.route(model, source, target, budget=budget)
    if result.success:
        # route() already validates, but re-check here so a regression in
        # route()'s own validation cannot mask router bugs.
        validate_path(graph, model, result.path, source, target)
    return result, model
