"""Tests for repro.experiments.report (markdown generation)."""

from repro.experiments.report import (
    render_experiment_section,
    render_experiments_markdown,
)
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec


def _spec_and_table():
    spec = ExperimentSpec(
        experiment_id="X1",
        title="demo experiment",
        claim="things scale linearly",
        reference="Theorem 0",
        run=lambda scale, seed: ResultTable("X1", "demo"),
    )
    table = ResultTable("X1", "demo", columns=["n", "q"])
    table.add_row(n=1, q=10)
    table.add_note("fitted slope 1.0")
    return spec, table


class TestSection:
    def test_contains_all_parts(self):
        spec, table = _spec_and_table()
        text = render_experiment_section(spec, table, conclusion="holds")
        assert "## X1 — demo experiment" in text
        assert "Theorem 0" in text
        assert "things scale linearly" in text
        assert "fitted slope 1.0" in text
        assert "**Verdict.** holds" in text

    def test_conclusion_optional(self):
        spec, table = _spec_and_table()
        text = render_experiment_section(spec, table)
        assert "Verdict" not in text

    def test_table_in_code_fence(self):
        spec, table = _spec_and_table()
        text = render_experiment_section(spec, table)
        fence_open = text.index("```")
        assert text.index("[X1] demo") > fence_open


class TestFullReport:
    def test_multiple_sections_and_preamble(self):
        spec, table = _spec_and_table()
        text = render_experiments_markdown(
            [(spec, table), (spec, table)],
            preamble="# Title",
            conclusions={"X1": "confirmed"},
        )
        assert text.startswith("# Title")
        assert text.count("## X1") == 2
        assert text.count("confirmed") == 2

    def test_no_preamble(self):
        spec, table = _spec_and_table()
        text = render_experiments_markdown([(spec, table)])
        assert text.startswith("## X1")

    def test_cli_report_command(self, tmp_path, monkeypatch, capsys):
        # run the report at tiny scale through the CLI end to end
        from repro.experiments.cli import main

        out = tmp_path / "report.md"
        assert (
            main(["report", "--scale", "tiny", "--out", str(out)]) == 0
        )
        text = out.read_text()
        assert "## E1" in text
        assert "## A4" in text
