"""Serial-vs-parallel parity for EVERY registered experiment.

This is the determinism contract of :mod:`repro.runtime` extended to
the whole suite: for any experiment and master seed, a
``ProcessPoolRunner`` must produce byte-identical ``ResultTable``\\ s to
the ``SerialRunner`` — rendered text (the persisted record), the
``repr`` of the raw rows (NaN-tolerant, unlike ``==``) and the notes.
``chunksize=1`` maximises interleaving, the adversarial schedule.

It is also the gate for the per-trial migration: every definition now
emits :class:`TrialSpec` work units (there is no legacy ``run(scale,
seed)`` path left), so a new experiment registered without honouring
the seed-derivation contract fails here immediately.  The spawn-context
case re-runs a registry sample on a pool that inherits *nothing* from
the parent, so every shared payload must travel through the workload
shipping protocol — fork-masked cache bugs fail there.
"""

import importlib
import multiprocessing
import os
import pickle
from pathlib import Path

import pytest

from repro.core.complexity import complexity_specs, run_trial
from repro.experiments.registry import all_experiments, get_experiment
from repro.graphs.hypercube import Hypercube
from repro.routers.waypoint import WaypointRouter
from repro.runtime import ProcessPoolRunner, SerialRunner, TrialSpec
from repro.util.rng import derive_seed

ALL_IDS = [spec.experiment_id for spec in all_experiments()]


def test_every_def_module_is_registered():
    # The parity sweep above parametrizes over *registered* defs — a
    # def module missing from the registry's ``_DEF_MODULES`` list
    # never imports, never registers, and would silently skip every
    # gate in this file.  Close the loop: every module under
    # ``experiments/defs/`` must surface at least one registered
    # experiment.
    defs_dir = (
        Path(importlib.import_module("repro.experiments.defs").__file__)
        .parent
    )
    modules = {
        f"repro.experiments.defs.{path.stem}"
        for path in defs_dir.glob("*.py")
        if path.stem != "__init__"
    }
    registered = {spec.run.__module__ for spec in all_experiments()}
    missing = modules - registered
    assert not missing, (
        f"def modules not in the registry sweep (add them to "
        f"_DEF_MODULES in repro/experiments/registry.py): "
        f"{sorted(missing)}"
    )


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_parallel_matches_serial(experiment_id):
    spec = get_experiment(experiment_id)
    serial = spec(scale="tiny", seed=11, runner=SerialRunner())
    with ProcessPoolRunner(workers=2, chunksize=1) as runner:
        parallel = spec(scale="tiny", seed=11, runner=runner)
    assert serial.render() == parallel.render()
    assert repr(serial.rows) == repr(parallel.rows)
    assert serial.notes == parallel.notes


@pytest.mark.parametrize("experiment_id", ["E1", "E6", "E12"])
def test_spawn_context_matches_serial(experiment_id):
    # A spawn pool starts each worker from a blank interpreter: no
    # fork-inherited globals, so the workload cache must be populated
    # purely by the shipping protocol (initializer + first-touch).
    # E1 covers complexity_specs emission, E6/E12 the defs that build
    # their own workloads (E12 carries the explicit RandomMatchingCycle,
    # the fattest payload in the registry).
    spec = get_experiment(experiment_id)
    serial = spec(scale="tiny", seed=11, runner=SerialRunner())
    runner = ProcessPoolRunner(
        workers=2,
        chunksize=1,
        mp_context=multiprocessing.get_context("spawn"),
    )
    with runner:
        spawned = spec(scale="tiny", seed=11, runner=runner)
    assert serial.render() == spawned.render()
    assert repr(serial.rows) == repr(spawned.rows)
    assert serial.notes == spawned.notes


def _pid_stamped(spec: TrialSpec):
    """Execute a spec in whatever process we are in; report the pid."""
    return (os.getpid(), spec.execute().value)


def _point_specs():
    point_seed = derive_seed(11, "e1", 8, 0.3, "waypoint")
    return complexity_specs(
        Hypercube(8),
        p=8**-0.3,
        router=WaypointRouter(),
        trials=14,
        seed=point_seed,
        key=("e1", 8, 0.3, "waypoint"),
    )


def test_specs_reference_one_shared_workload():
    # The emission API: one Workload per sweep point, slim per-trial
    # tails.  A spec's wire form must cost bytes independent of the
    # graph — the payload travels separately, once per worker.
    specs = _point_specs()
    assert len(specs) == 14
    assert all(spec.fn is None for spec in specs)
    assert all(spec.workload.fn is run_trial for spec in specs)
    ids = {spec.workload_id for spec in specs}
    assert len(ids) == 1
    slim = len(pickle.dumps(specs[0]))
    payload = len(pickle.dumps(specs[0].workload))
    assert slim < 512  # key + (trial, seed) + a 32-hex-char content id
    assert payload > slim  # the context is the heavy part, and it moved


def test_single_sweep_point_distributes_across_workers():
    # One E1-style (n, alpha, router) sweep point at small scale: its
    # trials are independent TrialSpecs, so the rejection-sampling loop
    # itself must spread over the pool — the per-trial migration's whole
    # point.  Wrap each trial to record the executing pid.  The wrapped
    # specs nest a workload-referencing spec inside a plain one, which
    # also exercises the nested first-touch path (the payload is
    # invisible to the pool's batch scan).
    specs = _point_specs()
    wrapped = [
        TrialSpec(key=spec.key, fn=_pid_stamped, args=(spec,))
        for spec in specs
    ]
    golden = repr([spec.execute().value for spec in specs])
    runner = ProcessPoolRunner(workers=2, chunksize=2)

    # Which worker takes which chunk is the scheduler's business; a
    # freshly forked pool can in principle let one worker drain every
    # chunk.  Retry a few times — determinism is asserted on every
    # attempt, only the both-workers-participated observation may need
    # another roll.
    seen_both = False
    with runner:
        for _ in range(5):
            outcomes = runner.run_values(wrapped)
            assert repr([record for _, record in outcomes]) == golden
            pids = {pid for pid, _ in outcomes}
            assert os.getpid() not in pids  # every trial ran out-of-process
            if len(pids) == 2:
                seen_both = True
                break
    assert seen_both  # ...and both workers took part
