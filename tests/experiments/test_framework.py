"""Tests for the experiment framework (results, spec, registry, CLI)."""

import pytest

from repro.experiments.registry import all_experiments, get_experiment, register
from repro.experiments.results import ResultTable
from repro.experiments.spec import SCALES, ExperimentSpec, pick


class TestResultTable:
    def test_add_and_render(self):
        t = ResultTable("X1", "demo", columns=["a", "b"])
        t.add_row(a=1, b=2)
        t.add_note("a note")
        out = t.render()
        assert "[X1] demo" in out
        assert "* a note" in out
        assert len(t) == 1

    def test_schema_enforced(self):
        t = ResultTable("X1", "demo", columns=["a"])
        with pytest.raises(ValueError):
            t.add_row(a=1, z=9)

    def test_free_schema_when_no_columns(self):
        t = ResultTable("X1", "demo")
        t.add_row(anything=1)
        assert t.rows == [{"anything": 1}]

    def test_column_extraction(self):
        t = ResultTable("X1", "demo")
        t.add_row(a=1)
        t.add_row(a=2, b=5)
        assert t.column("a") == [1, 2]
        assert t.column("b") == [5]

    def test_filtered(self):
        t = ResultTable("X1", "demo")
        t.add_row(kind="x", v=1)
        t.add_row(kind="y", v=2)
        assert t.filtered(kind="y") == [{"kind": "y", "v": 2}]

    def test_to_csv(self, tmp_path):
        t = ResultTable("X1", "demo", columns=["a"])
        t.add_row(a=3)
        path = t.to_csv(tmp_path)
        assert path.name == "x1.csv"
        assert path.read_text() == "a\n3\n"


class TestSpec:
    def test_pick_validates_scale(self):
        with pytest.raises(ValueError):
            pick("huge", tiny=1, small=2, medium=3)

    def test_pick_selects(self):
        assert pick("medium", tiny=1, small=2, medium=3) == 3

    def test_spec_call_validates_scale(self):
        spec = ExperimentSpec(
            experiment_id="X9",
            title="t",
            claim="c",
            reference="r",
            run=lambda scale, seed, runner=None: ResultTable("X9", "t"),
        )
        with pytest.raises(ValueError):
            spec(scale="gigantic")

    def test_spec_call_type_checks_result(self):
        spec = ExperimentSpec(
            experiment_id="X9",
            title="t",
            claim="c",
            reference="r",
            run=lambda scale, seed, runner=None: 42,
        )
        with pytest.raises(TypeError):
            spec(scale="tiny")


class TestRegistry:
    def test_all_experiments_complete(self):
        ids = [s.experiment_id for s in all_experiments()]
        assert ids == [
            "E1",
            "E2",
            "E3",
            "E4",
            "E5",
            "E6",
            "E7",
            "E8",
            "E9",
            "E10",
            "E11",
            "E12",
            "E13",
            "E14",
            "E15",
            "E16",
            "E17",
            "E18",
            "E19",
            "E20",
            "A1",
            "A2",
            "A3",
            "A4",
        ]

    def test_get_case_insensitive(self):
        assert get_experiment("e7").experiment_id == "E7"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_register_conflict_raises(self):
        spec = ExperimentSpec(
            experiment_id="E1",
            title="imposter",
            claim="",
            reference="",
            run=lambda scale, seed, runner=None: ResultTable("E1", "x"),
        )
        with pytest.raises(ValueError):
            register(spec)

    def test_every_spec_has_metadata(self):
        for spec in all_experiments():
            assert spec.title
            assert spec.claim
            assert spec.reference
            assert spec.experiment_id[0] in "EA"


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "A3" in out

    def test_info(self, capsys):
        from repro.experiments.cli import main

        assert main(["info", "E7"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 7" in out

    def test_run_single(self, capsys, tmp_path):
        from repro.experiments.cli import main

        assert main(
            ["run", "A1", "--scale", "tiny", "--csv", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "[A1]" in out
        assert (tmp_path / "a1.csv").exists()

    def test_scale_choice_enforced(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["run", "A1", "--scale", "galactic"])

    def test_run_with_explicit_serial_backend(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "A1", "--scale", "tiny", "--backend", "serial"]) == 0
        assert "[A1]" in capsys.readouterr().out

    def test_backend_choice_enforced(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["run", "A1", "--backend", "warp-drive"])

    def test_worker_serve_parser(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["worker", "serve", "--port", "7101", "--path", "/x"]
        )
        assert args.command == "worker"
        assert args.worker_command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 7101
        assert args.path == ["/x"]

    def test_worker_serve_port_validated(self):
        from repro.experiments.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "serve", "--port", "70000"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "serve", "--port", "nope"])

    def test_thresholds_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["thresholds"]) == 0
        out = capsys.readouterr().out
        assert "routing transition" in out
        assert "0.5" in out

    def test_scales_constant(self):
        assert SCALES == ("tiny", "small", "medium")
