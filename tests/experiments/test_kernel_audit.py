"""Regression: the kernel-split audit on kernel-less fault models.

``repro info`` audits each def by counting kernel-eligible vs
per-trial-fallback specs (:func:`repro.runtime.chunkexec.kernel_split`).
Custom fault-model factories are usually *not* registered with the
kernel seam — the audit must report them as "per-trial fallback", not
crash and not mislabel them as vectorized.  The nastiest case is a
factory object that is not even hashable (e.g. an ``eq=True``,
non-frozen dataclass instance): the registry lookup itself would raise
``TypeError`` without the guard in ``compile_run_trial_chunk``.
"""

from dataclasses import dataclass

from repro.core.complexity import complexity_specs
from repro.experiments.cli import _kernel_audit_line
from repro.experiments.registry import get_experiment
from repro.graphs.clos import FatTree
from repro.percolation.faults import NodeFaultPercolation
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.runtime.chunkexec import kernel_split


def _unregistered_factory(graph, p, seed):
    return NodeFaultPercolation(graph, p, seed=seed)


@dataclass(eq=True)
class _UnhashableFactory:
    # eq=True without frozen=True: __hash__ is set to None, so this
    # instance cannot even be *looked up* in the kernel registry.
    budget: int = 0

    def __call__(self, graph, p, seed):
        return NodeFaultPercolation(graph, p, seed=seed)


def _specs(factory):
    return complexity_specs(
        FatTree(4),
        p=0.8,
        router=WaypointRouter(),
        trials=6,
        seed=3,
        model_factory=factory,
        key=("audit", str(factory)),
    )


def test_unregistered_factory_audits_as_fallback():
    kernel, fallback = kernel_split(_specs(_unregistered_factory))
    assert (kernel, fallback) == (0, 6)


def test_unhashable_factory_does_not_crash_the_audit():
    factory = _UnhashableFactory()
    kernel, fallback = kernel_split(_specs(factory))
    assert (kernel, fallback) == (0, 6)
    # ...and the specs still *execute* through the per-trial path.
    records = SerialRunner().run_values(_specs(factory))
    assert len(records) == 6


def test_default_factory_still_vectorizes():
    # The guard must not regress the registered path.
    kernel, fallback = kernel_split(_specs(None))
    assert (kernel, fallback) == (6, 0)


def test_info_line_reports_fallback_for_e16():
    # E16's factory is deliberately unregistered: pure fallback.
    line = _kernel_audit_line(get_experiment("E16"))
    assert "per-trial fallback" in line
    assert "vectorized" not in line
    assert "0/" in line


def test_registered_node_factory_audits_as_kernel():
    # E15's own node factory is registered with the kernel seam
    # (node_model_kernel); the identically-behaved local factory above
    # is not — eligibility keys on the factory callable, not on what
    # it builds.
    from repro.experiments.defs.e15_clos_faults import _node_factory

    kernel, fallback = kernel_split(_specs(_node_factory))
    assert (kernel, fallback) == (6, 0)


def test_info_line_reports_mixed_split_for_e15():
    # E15's iid and node arms ride chunk kernels; the correlated and
    # adversarial arms fall back — the audit must show both.
    line = _kernel_audit_line(get_experiment("E15"))
    assert "vectorized chunk kernel + per-trial fallback" in line


def test_info_line_reports_per_stage_breakdown():
    line = _kernel_audit_line(get_experiment("E15"))
    stages = [l for l in line.splitlines() if l.startswith("stages:")]
    assert len(stages) == 1
    # Half the tiny-scale specs (iid + node of four arms) are
    # kernel-eligible in every stage.
    assert stages[0] == (
        "stages: draw 20/40 kernel  conditioning 20/40 kernel  "
        "routing 20/40 kernel"
    )


def test_info_line_names_commodity_batched_routing_for_traffic_defs():
    # Demand-matrix defs route whole chunks of commodities through one
    # batched frontier pass; the stage split says so by name.  Pair
    # defs (above) keep the plain "routing" label.
    line = _kernel_audit_line(get_experiment("E18"))
    assert "routing (commodity-batched)" in line
    pair_line = _kernel_audit_line(get_experiment("E15"))
    assert "(commodity-batched)" not in pair_line
