"""Output contracts of every experiment definition.

EXPERIMENTS.md, the benchmarks and the CSV artifacts all rely on each
experiment emitting a stable column schema, at least one explanatory
note, and physically sensible values.  These tests pin those contracts
at tiny scale.
"""

import math

import pytest

from repro.experiments.registry import all_experiments

EXPECTED_COLUMNS = {
    "E1": {"n", "alpha", "p", "router", "frac_edges_probed"},
    "E2": {"n", "alpha", "eta_empirical", "eta_theory", "bound_at_t"},
    "E3": {"alpha", "n", "success_rate", "theory_success_floor"},
    "E4": {"d", "p", "n", "queries_per_distance"},
    "E5": {"section", "p", "pr_connected", "ratio_mean"},
    "E6": {"depth", "p", "pr_empirical", "pr_exact", "abs_error"},
    "E7": {"p", "depth", "router", "mean_queries"},
    "E8": {"p", "depth", "mirror_success_rate", "queries_per_depth"},
    "E9": {"c", "n", "queries_over_n2"},
    "E10": {"c", "n", "queries_over_n15", "speedup_vs_local"},
    "E11": {"section", "n", "p", "value"},
    "E12": {"family", "p", "giant_fraction", "median_frac_probed"},
    "E13": {"alpha", "giant_fraction", "giant_diameter_lb", "oracle_frac_probed"},
    "E14": {"alpha", "fault_model", "median_frac_probed"},
    "E15": {"k", "p", "fault_model", "median_frac_probed"},
    "E16": {"n", "spread", "mean_dead_frac", "median_frac_probed"},
    "E17": {"k", "budget", "placement", "median_queries"},
    "E18": {"graph", "p", "commodities", "routability", "median_max_link_load"},
    "E19": {"k", "p", "skew", "routability", "median_max_link_load"},
    "E20": {"k", "p", "fault_model", "routability", "full_delivery_rate"},
    "A1": {"graph", "mode", "verdicts_agree"},
    "A2": {"graph", "router", "success_rate", "mean_queries"},
    "A3": {"n", "router", "vs_local"},
    "A4": {"boundary", "p", "n", "queries_per_distance"},
}


@pytest.fixture(scope="module")
def tables():
    return {
        spec.experiment_id: spec(scale="tiny", seed=11)
        for spec in all_experiments()
    }


class TestSchemas:
    def test_every_experiment_covered_here(self):
        ids = {spec.experiment_id for spec in all_experiments()}
        assert ids == set(EXPECTED_COLUMNS)

    @pytest.mark.parametrize("exp_id", sorted(EXPECTED_COLUMNS))
    def test_columns_present(self, tables, exp_id):
        table = tables[exp_id]
        assert table.columns is not None, f"{exp_id} must declare a schema"
        missing = EXPECTED_COLUMNS[exp_id] - set(table.columns)
        assert not missing, f"{exp_id} lost columns {missing}"

    @pytest.mark.parametrize("exp_id", sorted(EXPECTED_COLUMNS))
    def test_rows_fill_schema(self, tables, exp_id):
        table = tables[exp_id]
        for row in table.rows:
            assert set(row) <= set(table.columns)

    @pytest.mark.parametrize("exp_id", sorted(EXPECTED_COLUMNS))
    def test_has_note(self, tables, exp_id):
        # E3/E4/E7 only note fitted exponents, which need >= 3 sweep
        # points — absent at tiny scale.
        fit_gated = {"E3", "E4", "E7"}
        assert tables[exp_id].notes or exp_id in fit_gated, (
            f"{exp_id} should explain itself with at least one note"
        )


class TestPhysicalSanity:
    def test_probabilities_in_unit_interval(self, tables):
        prob_columns = {
            "E3": ["success_rate", "theory_success_floor"],
            "E5": ["pr_connected"],
            "E6": ["pr_empirical", "pr_exact"],
            "E8": ["mirror_success_rate"],
            "E11": ["value"],
            "E16": ["mean_dead_frac"],
            "E18": ["routability", "full_delivery_rate"],
            "E19": ["routability"],
            "E20": ["routability", "full_delivery_rate"],
            "A2": ["success_rate"],
        }
        for exp_id, columns in prob_columns.items():
            for column in columns:
                for value in tables[exp_id].column(column):
                    if isinstance(value, float) and math.isnan(value):
                        continue
                    assert 0.0 <= value <= 1.0 + 1e-9, (exp_id, column, value)

    def test_fractions_of_edges_bounded(self, tables):
        for exp_id in ("E1", "E12", "E13", "E14", "E15", "E16"):
            col = (
                "frac_edges_probed" if exp_id == "E1" else "median_frac_probed"
            )
            for value in tables[exp_id].column(col):
                if isinstance(value, float) and math.isnan(value):
                    continue
                assert 0.0 <= value <= 1.0, (exp_id, value)

    def test_query_counts_nonnegative(self, tables):
        for exp_id, column in [
            ("E4", "mean_queries"),
            ("E7", "mean_queries"),
            ("E9", "mean_queries"),
            ("E10", "mean_queries"),
        ]:
            for value in tables[exp_id].column(column):
                assert value >= 0, (exp_id, value)

    def test_trial_counts_positive(self, tables):
        for exp_id in ("E1", "E4", "E9", "E10"):
            for value in tables[exp_id].column("connected_trials"):
                assert value >= 0
