"""Every experiment definition must document its spec-emission shape.

The runtime knows two spec shapes (see :mod:`repro.runtime.trial`):
**workload-referenced** — per-trial specs sharing one frozen
``Workload`` — and **self-contained** — everything inline.  Which shape
a definition emits decides how it schedules, ships and (for
workload-referenced ``run_trial`` specs) whether it can ride the
vectorized chunk kernel, so the module docstring has to say.
"""

from __future__ import annotations

import sys

import pytest

from repro.experiments.registry import all_experiments

SHAPE_TERMS = ("workload-referenced", "self-contained")


def _spec_ids():
    return [spec.experiment_id for spec in all_experiments()]


@pytest.mark.parametrize("experiment_id", _spec_ids())
def test_def_docstring_states_emission_shape(experiment_id):
    spec = next(
        s for s in all_experiments() if s.experiment_id == experiment_id
    )
    module = sys.modules[spec.run.__module__]
    doc = module.__doc__ or ""
    assert "TrialSpec" in doc, (
        f"{module.__name__} docstring never mentions its TrialSpec "
        "work units"
    )
    assert any(term in doc for term in SHAPE_TERMS), (
        f"{module.__name__} docstring must state its spec-emission "
        f"shape using one of {SHAPE_TERMS}"
    )
