"""Property-based metamorphic tests over the whole router fleet.

Hypothesis generates random topologies, retention probabilities and
seeds; every applicable router must satisfy the framework invariants:

* any returned path is an open, simple, correctly-terminated path
  (``route`` itself validates; these tests re-derive the checks);
* local routers never trip the locality enforcement;
* complete routers agree exactly with ground-truth connectivity;
* the query count is bounded by the edge count and at least the path
  length (every path edge must have been probed);
* budgets are never exceeded.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.result import validate_path
from repro.graphs.explicit import ExplicitGraph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import connected
from repro.percolation.models import TablePercolation
from repro.routers import local_router_suite
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from repro.routers.dfs import GreedyRouter

COMPLETE_ROUTERS = [
    *local_router_suite(),
    BidirectionalBFSRouter(),
]
ALL_ROUTERS = COMPLETE_ROUTERS + [GreedyRouter()]


@st.composite
def random_graph_case(draw):
    """A random connected-ish explicit graph with a vertex pair."""
    n = draw(st.integers(min_value=2, max_value=14))
    extra_edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=25,
        )
    )
    # spanning path so distances exist for metric-based routers
    edges = [(i, i + 1) for i in range(n - 1)]
    edges += [(a, b) for a, b in extra_edges if a != b]
    graph = ExplicitGraph(edges, name="random")
    u = draw(st.integers(min_value=0, max_value=n - 1))
    v = draw(st.integers(min_value=0, max_value=n - 1))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return graph, u, v, p, seed


class TestFrameworkInvariants:
    @given(random_graph_case())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_complete_routers_match_ground_truth(self, case):
        graph, u, v, p, seed = case
        model = TablePercolation(graph, p, seed=seed)
        truth = connected(model, u, v)
        for router in COMPLETE_ROUTERS:
            result = router.route(model, u, v)
            assert result.success == truth, router.name

    @given(random_graph_case())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_paths_are_valid_and_probed(self, case):
        graph, u, v, p, seed = case
        model = TablePercolation(graph, p, seed=seed)
        for router in ALL_ROUTERS:
            result = router.route(model, u, v)
            assert result.queries <= graph.num_edges()
            if result.success:
                validate_path(graph, model, result.path, u, v)
                assert result.queries >= result.path_length

    @given(random_graph_case(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_budgets_respected(self, case, budget):
        graph, u, v, p, seed = case
        model = TablePercolation(graph, p, seed=seed)
        for router in ALL_ROUTERS:
            result = router.route(model, u, v, budget=budget)
            assert result.queries <= budget or (
                u == v and result.queries == 0
            ), router.name

    @given(random_graph_case())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_success_only_when_connected(self, case):
        # even incomplete routers must never "succeed" across a cut
        graph, u, v, p, seed = case
        model = TablePercolation(graph, p, seed=seed)
        truth = connected(model, u, v)
        for router in ALL_ROUTERS:
            result = router.route(model, u, v)
            if result.success:
                assert truth, router.name


class TestStructuredTopologies:
    """Same invariants on the paper's actual topologies."""

    @pytest.mark.parametrize("seed", range(5))
    def test_hypercube_fleet(self, seed):
        graph = Hypercube(5)
        model = TablePercolation(graph, 0.5, seed=seed)
        u, v = graph.canonical_pair()
        truth = connected(model, u, v)
        for router in COMPLETE_ROUTERS:
            result = router.route(model, u, v)
            assert result.success == truth, (router.name, seed)

    @pytest.mark.parametrize("seed", range(5))
    def test_mesh_fleet(self, seed):
        graph = Mesh(2, 6)
        model = TablePercolation(graph, 0.6, seed=seed)
        u, v = graph.canonical_pair()
        truth = connected(model, u, v)
        for router in COMPLETE_ROUTERS:
            result = router.route(model, u, v)
            assert result.success == truth, (router.name, seed)

    def test_query_ordering_bfs_is_most_expensive(self):
        # On supercritical instances the exhaustive baseline should pay
        # at least as much as every smarter complete local router.
        graph = Hypercube(7)
        totals = {r.name: 0 for r in COMPLETE_ROUTERS}
        for seed in range(8):
            model = TablePercolation(graph, 0.7, seed=seed)
            u, v = graph.canonical_pair()
            if not connected(model, u, v):
                continue
            for router in COMPLETE_ROUTERS:
                totals[router.name] += router.route(model, u, v).queries
        for name, total in totals.items():
            if name not in ("local-bfs",):
                assert total <= totals["local-bfs"] * 1.05, (name, totals)
