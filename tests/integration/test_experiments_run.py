"""Integration: every registered experiment runs end-to-end at tiny scale
and its qualitative claim holds (with generous finite-size tolerances).

Seeds are fixed; these tests are deterministic.
"""

import math

import pytest

from repro.experiments.registry import all_experiments, get_experiment

SEED = 2025


@pytest.fixture(scope="module")
def tables():
    """Run everything once per module; individual tests inspect slices."""
    return {
        spec.experiment_id: spec(scale="tiny", seed=SEED)
        for spec in all_experiments()
    }


class TestAllRun:
    def test_every_experiment_produces_rows(self, tables):
        for exp_id, table in tables.items():
            assert len(table) > 0, f"{exp_id} produced no rows"

    def test_every_table_renders(self, tables):
        for table in tables.values():
            text = table.render()
            assert table.experiment_id in text

    def test_csv_round_trip(self, tables, tmp_path):
        for table in tables.values():
            path = table.to_csv(tmp_path)
            assert path.exists()
            assert path.stat().st_size > 0


class TestQualitativeClaims:
    def test_e1_exponential_regime_costs_more(self, tables):
        table = tables["E1"]
        rows = table.filtered(router="waypoint")
        low = [r for r in rows if r["alpha"] < 0.5 and r["connected_trials"]]
        high = [r for r in rows if r["alpha"] > 0.5 and r["connected_trials"]]
        if low and high:
            assert min(h["frac_edges_probed"] for h in high) >= max(
                0.5 * l["frac_edges_probed"] for l in low
            )

    def test_e2_lemma5_bound_respected(self, tables):
        for row in tables["E2"].rows:
            observed = row["observed_cdf_at_t"]
            if not math.isnan(observed):
                assert observed <= row["bound_at_t"] + 0.35

    def test_e3_success_rates_high(self, tables):
        rates = tables["E3"].column("success_rate")
        assert rates
        assert sum(rates) / len(rates) > 0.6

    def test_e4_queries_grow_with_distance(self, tables):
        table = tables["E4"]
        rows = table.rows
        if len(rows) >= 2:
            assert rows[-1]["mean_queries"] > rows[0]["mean_queries"] * 0.8

    def test_e5_connectivity_increases_with_p(self, tables):
        routing = tables["E5"].filtered(section="routing")
        assert routing[0]["pr_connected"] <= routing[-1]["pr_connected"]

    def test_e6_recursion_matches(self, tables):
        errors = tables["E6"].column("abs_error")
        assert max(errors) < 0.25

    def test_e7_cost_grows_with_depth(self, tables):
        rows = tables["E7"].filtered(router="directed-dfs")
        if len(rows) >= 2:
            assert rows[-1]["mean_queries"] > rows[0]["mean_queries"]

    def test_e8_linear_not_exponential(self, tables):
        rows = tables["E8"].rows
        if len(rows) >= 2:
            depth_ratio = rows[-1]["depth"] / rows[0]["depth"]
            query_ratio = rows[-1]["mean_queries"] / rows[0]["mean_queries"]
            assert query_ratio < depth_ratio**2

    def test_e9_quadratic_scaling(self, tables):
        rows = tables["E9"].rows
        if len(rows) >= 2:
            n_ratio = rows[-1]["n"] / rows[0]["n"]
            q_ratio = rows[-1]["mean_queries"] / rows[0]["mean_queries"]
            assert q_ratio > n_ratio  # super-linear

    def test_e10_subquadratic_scaling(self, tables):
        rows = tables["E10"].rows
        if len(rows) >= 2:
            n_ratio = rows[-1]["n"] / rows[0]["n"]
            q_ratio = rows[-1]["mean_queries"] / rows[0]["mean_queries"]
            assert q_ratio < n_ratio**2  # sub-quadratic

    def test_e11_giant_fraction_increases(self, tables):
        rows = tables["E11"].filtered(section="giant_fraction")
        assert rows[0]["value"] <= rows[-1]["value"] + 0.05

    def test_e12_all_families_present(self, tables):
        families = set(tables["E12"].column("family"))
        assert len(families) == 4

    def test_e13_middle_regime_shape(self, tables):
        rows = sorted(tables["E13"].rows, key=lambda r: r["alpha"])
        # giant exists throughout the tested range
        assert all(r["giant_fraction"] > 0.1 for r in rows)
        # and its diameter stays bounded by a small polynomial factor
        for r in rows:
            if r["giant_diameter_lb"] == r["giant_diameter_lb"]:
                assert r["giant_diameter_lb"] <= r["n"] ** 2

    def test_e14_site_hits_harder(self, tables):
        table = tables["E14"]
        for alpha in sorted({r["alpha"] for r in table.rows}):
            rows = {r["fault_model"]: r for r in table.filtered(alpha=alpha)}
            edge, site = rows.get("edge"), rows.get("site")
            if edge and site:
                # site faults never connect more often than edge faults
                assert (
                    site["connected_trials"] <= edge["connected_trials"] + 1
                )

    def test_a1_verdicts_agree(self, tables):
        assert all(tables["A1"].column("verdicts_agree"))

    def test_a2_unbounded_waypoint_fully_succeeds(self, tables):
        rows = tables["A2"].filtered(router="waypoint")
        for row in rows:
            assert row["success_rate"] == 1.0

    def test_a3_bidirectional_wins(self, tables):
        rows = tables["A3"].filtered(router="gnp-bidirectional")
        for row in rows:
            assert row["vs_local"] < 1.0


class TestDeterminism:
    def test_same_seed_same_rows(self):
        spec = get_experiment("A3")
        t1 = spec(scale="tiny", seed=7)
        t2 = spec(scale="tiny", seed=7)
        assert t1.rows == t2.rows

    def test_different_seed_may_differ_but_runs(self):
        spec = get_experiment("A1")
        t = spec(scale="tiny", seed=123)
        assert len(t) > 0
