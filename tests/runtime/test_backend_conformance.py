"""Backend conformance: the gate every runner backend must pass.

One parametrized suite, run against **every** registered backend — the
parameters come straight from :func:`repro.runtime.available_backends`,
so registering a backend subjects it to these tests automatically (the
``auto`` alias is skipped; it constructs one of the others).  Covered:
determinism versus ``SerialRunner``, ``run_grouped`` flattening,
workload first-touch shipping (batch-scanned and nested), crash and
traceback propagation, and the chunking edge cases (empty batch,
chunk > batch, single spec).

The cluster backend runs against a session-scoped pair of localhost
``repro worker serve`` node processes; work units come from
:mod:`repro.runtime.testing` so any node process can unpickle them by
reference.  This suite is the ROADMAP-documented bar for adding a
backend: a new name in the registry that cannot pass it does not ship.
"""

import pytest

from repro.runtime import (
    ClusterRunner,
    SerialRunner,
    TrialExecutionError,
    TrialSpec,
    available_backends,
    make_runner,
)
from repro.runtime import testing as kit
from repro.runtime.cluster import NODES_ENV
from repro.runtime.trial import TrialResult

BACKENDS = sorted(set(available_backends()) - {"auto"})


def test_expected_backends_registered():
    assert {"serial", "process", "cluster"} <= set(available_backends())


@pytest.fixture(scope="session")
def cluster_addresses():
    """Two localhost worker nodes shared by the whole session."""
    with kit.local_nodes(2) as addresses:
        yield addresses


@pytest.fixture(params=BACKENDS)
def new_runner(request, cluster_addresses, monkeypatch):
    """A factory for runners of one backend; closes everything made.

    Construction goes through ``make_runner`` so the registry path is
    part of what conformance certifies.  The cluster backend is pointed
    at the session nodes via ``$REPRO_CLUSTER_NODES`` — external-node
    mode, whose ``close()`` leaves the nodes serving.
    """
    if request.param == "cluster":
        monkeypatch.setenv(NODES_ENV, ",".join(cluster_addresses))
    else:
        monkeypatch.delenv(NODES_ENV, raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_CHUNKSIZE", raising=False)
    created = []

    def _make(workers=2, chunksize=2):
        runner = make_runner(workers, chunksize, backend=request.param)
        created.append(runner)
        return runner

    yield _make
    for runner in created:
        runner.close()


class TestConformance:
    def test_empty_batch(self, new_runner):
        assert new_runner().run([]) == []

    def test_single_spec(self, new_runner):
        results = new_runner().run(kit.square_specs(1))
        assert results == [TrialResult(key=("sq", 0), value=0)]

    def test_chunk_larger_than_batch(self, new_runner):
        runner = new_runner(workers=2, chunksize=64)
        assert runner.run_values(kit.square_specs(5)) == [0, 1, 4, 9, 16]

    def test_chunksize_one_preserves_order(self, new_runner):
        runner = new_runner(workers=2, chunksize=1)
        specs = kit.seeded_specs(11, label="order")
        assert runner.run(specs) == SerialRunner().run(specs)

    def test_matches_serial_on_seeded_trials(self, new_runner):
        specs = kit.seeded_specs(12, label="det")
        assert new_runner().run(specs) == SerialRunner().run(specs)

    def test_results_in_submission_order(self, new_runner):
        results = new_runner(chunksize=1).run(kit.square_specs(9))
        assert [r.key for r in results] == [("sq", i) for i in range(9)]
        assert [r.value for r in results] == [i * i for i in range(9)]

    def test_run_grouped_flattens_and_regroups(self, new_runner):
        groups = [
            ("squares", kit.square_specs(4)),
            ("empty", []),
            ("uniforms", kit.seeded_specs(3, label="g")),
        ]
        out = new_runner(chunksize=1).run_grouped(groups)
        assert out == SerialRunner().run_grouped(groups)
        assert out["empty"] == []

    def test_workload_specs_match_serial(self, new_runner):
        workload = kit.make_workload("conf-shipping")
        specs = kit.workload_specs(workload, 10)
        assert new_runner(chunksize=1).run(specs) == SerialRunner().run(specs)

    def test_second_batch_workload_first_touch(self, new_runner):
        # Batch 1 establishes the workers/nodes; batch 2's payload
        # appears only afterwards, so it must travel by first-touch
        # (or per-node shipping) rather than any start-up snapshot.
        runner = new_runner(chunksize=1)
        first = kit.make_workload("conf-first")
        second = kit.make_workload("conf-second")
        out1 = runner.run(kit.workload_specs(first, 6, tag="f"))
        out2 = runner.run(kit.workload_specs(second, 6, tag="s"))
        assert out1 == SerialRunner().run(kit.workload_specs(first, 6, tag="f"))
        assert out2 == SerialRunner().run(kit.workload_specs(second, 6, tag="s"))

    def test_trial_error_carries_key_and_traceback(self, new_runner):
        specs = kit.square_specs(4) + [
            TrialSpec(key=("bad", 7), fn=kit.boom, args=(7,))
        ]
        with pytest.raises(TrialExecutionError) as err:
            new_runner(chunksize=1).run(specs)
        assert err.value.key == ("bad", 7)
        assert "Traceback (most recent call last)" in err.value.detail
        assert "boom" in err.value.detail

    def test_mixed_plain_and_workload_batch(self, new_runner):
        workload = kit.make_workload("conf-mixed")
        specs = []
        for t in range(10):
            if t % 2:
                specs.append(
                    TrialSpec(key=("plain", t), fn=kit.square, args=(t,))
                )
            else:
                specs.append(
                    TrialSpec(key=("wl", t), args=(t, t), workload=workload)
                )
        assert new_runner(chunksize=3).run(specs) == SerialRunner().run(specs)


class TestClusterExperimentParity:
    """Cluster-vs-serial byte parity at the ResultTable level.

    E1 exercises ``complexity_specs`` emission; E12 carries the fattest
    explicit-graph payload in the registry; E18/E19/E20 route demand
    matrices, so their records cross the wire through the ragged
    traffic columns of ``records/2`` (and E20 ships the structured
    fault factories alongside them).  ``chunksize=1`` maximises
    interleaving across the two nodes — the adversarial schedule.
    """

    @pytest.mark.parametrize(
        "experiment_id", ["E1", "E12", "E18", "E19", "E20"]
    )
    def test_cluster_matches_serial(self, cluster_addresses, experiment_id):
        from repro.experiments.registry import get_experiment

        spec = get_experiment(experiment_id)
        serial = spec(scale="tiny", seed=11, runner=SerialRunner())
        with ClusterRunner(nodes=cluster_addresses, chunksize=1) as runner:
            clustered = spec(scale="tiny", seed=11, runner=runner)
        assert serial.render() == clustered.render()
        assert repr(serial.rows) == repr(clustered.rows)
        assert serial.notes == clustered.notes


class TestClusterSpecifics:
    """Cluster behaviours beyond the shared conformance bar."""

    def test_payload_ships_to_each_node_once(self, cluster_addresses):
        workload = kit.make_workload("ship-once")
        with ClusterRunner(nodes=cluster_addresses, chunksize=1) as runner:
            runner.run(kit.workload_specs(workload, 6, tag="a"))
            shipped = {
                node.address: set(node.known_ids) for node in runner._nodes
            }
            # Whichever node(s) took chunks got the payload (under a
            # loaded scheduler one node can drain the whole queue, so
            # only the union is guaranteed)...
            assert workload.workload_id in set().union(*shipped.values())
            # ...and the same payload again reships nothing to anyone.
            runner.run(kit.workload_specs(workload, 6, tag="b"))
            assert {
                node.address: set(node.known_ids) for node in runner._nodes
            } == shipped

    def test_nodes_cache_payloads_for_their_lifetime(self):
        # A *new* runner against the same node: the node-side cache
        # (ship once per node, not once per runner) must answer, which
        # the worker reports via the installed-ids kernel.  One node
        # with a pool of one, so neither queue scheduling nor pool
        # routing can carry the assertion to a fresh process.
        workload = kit.make_workload("cache-live")
        with kit.local_nodes(1, node_workers=1) as one_node:
            with ClusterRunner(nodes=one_node, chunksize=1) as first:
                first.run(kit.workload_specs(workload, 4))
            probes = [
                TrialSpec(
                    key=("ids", i), fn=kit.cached_workload_ids, args=(i,)
                )
                for i in range(4)
            ]
            with ClusterRunner(nodes=one_node, chunksize=1) as second:
                for ids in second.run_values(probes):
                    assert workload.workload_id in ids

    def test_close_leaves_external_nodes_serving(self, cluster_addresses):
        specs = kit.square_specs(6)
        with ClusterRunner(nodes=cluster_addresses, chunksize=1) as runner:
            assert runner.run_values(specs) == [i * i for i in range(6)]
        # close() ran; the shared nodes must still accept a new runner.
        with ClusterRunner(nodes=cluster_addresses, chunksize=1) as runner:
            assert runner.run_values(specs) == [i * i for i in range(6)]

    def test_single_external_node_still_executes_remotely(self):
        # One *named* node is not "no parallelism": the user asked for
        # the work to run there, so multi-chunk batches must ship to
        # it rather than silently executing on the coordinator.  A
        # pool of one pins every trial to a single remote process.
        import os

        with kit.local_nodes(1, node_workers=1) as addresses:
            probes = [
                TrialSpec(key=("pid", i), fn=kit.process_id, args=(i,))
                for i in range(6)
            ]
            with ClusterRunner(nodes=addresses, chunksize=1) as runner:
                pids = set(runner.run_values(probes))
        assert os.getpid() not in pids
        assert len(pids) == 1

    def test_pooled_node_deep_pipeline_matches_serial(self):
        # The adversarial scheduling shape for the node-side pool: one
        # node executing many chunks concurrently (pool of 2) with a
        # deep pipeline keeping it saturated.  Completion order is
        # maximally shuffled; the table must not notice.
        from repro.experiments.registry import get_experiment

        spec = get_experiment("E1")
        serial = spec(scale="tiny", seed=7, runner=SerialRunner())
        with kit.local_nodes(1, node_workers=2) as addresses:
            with ClusterRunner(
                nodes=addresses, chunksize=1, pipeline_depth=4
            ) as runner:
                pooled = spec(scale="tiny", seed=7, runner=runner)
        assert serial.render() == pooled.render()
        assert repr(serial.rows) == repr(pooled.rows)

    def test_single_chunk_runs_inline_without_nodes(self, monkeypatch):
        # Mirrors the pool's inline path: a batch that folds into one
        # chunk must not connect (or spawn) anything.
        monkeypatch.delenv(NODES_ENV, raising=False)
        runner = ClusterRunner(workers=2, chunksize=64)
        assert runner.run_values(kit.square_specs(5)) == [0, 1, 4, 9, 16]
        assert runner._nodes is None
        assert runner._local == []
