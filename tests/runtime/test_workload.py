"""Tests for the shared-payload workload protocol.

Covers the content-addressed :class:`Workload`, the slim wire form of
workload-referencing specs, worker-side cache population (initializer
and first-touch, fork and spawn), pool persistence across batches, and
the ownership contract's failure mode.
"""

import multiprocessing
import pickle

import pytest

from repro.runtime import (
    ProcessPoolRunner,
    SerialRunner,
    TrialExecutionError,
    TrialSpec,
    Workload,
    WorkloadMissError,
    WorkloadRef,
)
from repro.runtime.workload import resolve_workload

SPAWN = multiprocessing.get_context("spawn")


# Worker kernels live at module level so they pickle by reference.
def _tagged(payload, tag, t, seed):
    return (len(payload), tag, t, seed)


def _nested_execute(spec):
    return spec.execute().value


def _heavy(n=4096):
    """A payload big enough that fat-vs-slim is unmistakable."""
    return list(range(n))


def _specs(workload, count, tag="a"):
    return [
        TrialSpec(key=(tag, t), args=(t, t * 31), workload=workload)
        for t in range(count)
    ]


class TestWorkload:
    def test_content_addressed_id(self):
        a = Workload(fn=_tagged, args=(_heavy(), "x"))
        b = Workload(fn=_tagged, args=(_heavy(), "x"))
        c = Workload(fn=_tagged, args=(_heavy(), "y"))
        assert a.workload_id == b.workload_id
        assert a.workload_id != c.workload_id

    def test_id_stable_across_processes(self):
        # The id is a digest of pickled content, so a worker process
        # computes the identical id for the identical payload.
        w = Workload(fn=_tagged, args=(_heavy(), "x"))
        with ProcessPoolRunner(workers=2, chunksize=1) as runner:
            remote = runner.run_values(
                [
                    TrialSpec(key=("id", i), fn=_remote_id, args=("x",))
                    for i in range(2)
                ]
            )
        assert remote == [w.workload_id, w.workload_id]

    def test_call_merges_shared_and_trial_arguments(self):
        w = Workload(fn=_tagged, args=(_heavy(8), "x"))
        assert w.call(3, 7) == (8, "x", 3, 7)

    def test_unpicklable_payload_rejected_at_construction(self):
        with pytest.raises(TypeError, match="not picklable"):
            Workload(fn=_tagged, args=(lambda: None, "x"))

    def test_spec_requires_exactly_one_of_fn_and_workload(self):
        w = Workload(fn=_tagged, args=((), "x"))
        with pytest.raises(ValueError):
            TrialSpec(key=("k",))
        with pytest.raises(ValueError):
            TrialSpec(key=("k",), fn=_tagged, workload=w)

    def test_resolve_falls_back_to_constructed_registry(self):
        w = Workload(fn=_tagged, args=(_heavy(16), "z"))
        assert resolve_workload(w.workload_id) is w

    def test_resolve_unknown_id_raises_miss(self):
        with pytest.raises(WorkloadMissError):
            resolve_workload("no-such-id")


def _remote_id(tag):
    return Workload(fn=_tagged, args=(_heavy(), tag)).workload_id


class TestWireForm:
    def test_spec_pickles_slim(self):
        w = Workload(fn=_tagged, args=(_heavy(), "x"))
        spec = _specs(w, 1)[0]
        slim = len(pickle.dumps(spec))
        fat = len(
            pickle.dumps(
                TrialSpec(key=spec.key, fn=_tagged, args=(_heavy(), "x", 0, 0))
            )
        )
        assert slim < 512
        assert fat > 10 * slim  # the whole point of the protocol

    def test_roundtrip_resolves_against_live_workload(self):
        w = Workload(fn=_tagged, args=(_heavy(8), "x"))
        spec = _specs(w, 1)[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert isinstance(clone.workload, WorkloadRef)
        assert clone.workload_id == w.workload_id
        assert clone.execute().value == spec.execute().value

    def test_roundtrip_without_live_workload_misses(self):
        ref = WorkloadRef("0123456789abcdef0123456789abcdef")
        spec = TrialSpec(key=("orphan",), workload=ref)
        with pytest.raises(WorkloadMissError):
            spec.execute()


class TestShipping:
    @pytest.mark.parametrize("mp_context", [None, SPAWN])
    def test_pool_matches_serial(self, mp_context):
        w = Workload(fn=_tagged, args=(_heavy(), "x"))
        specs = _specs(w, 12)
        serial = SerialRunner().run(specs)
        with ProcessPoolRunner(
            workers=2, chunksize=2, mp_context=mp_context
        ) as runner:
            assert runner.run(specs) == serial

    @pytest.mark.parametrize("mp_context", [None, SPAWN])
    def test_persistent_pool_survives_new_workloads(self, mp_context):
        # Batch 1's payloads ship via the pool initializer; batch 2
        # arrives after the workers exist, so its payload must travel
        # first-touch — on spawn nothing is inherited, making this the
        # sharpest test of the miss/resubmit half of the protocol.
        with ProcessPoolRunner(
            workers=2, chunksize=1, mp_context=mp_context
        ) as runner:
            first = Workload(fn=_tagged, args=(_heavy(), "first"))
            out1 = runner.run_values(_specs(first, 6, tag="f"))
            pool = runner._pool
            assert pool is not None
            second = Workload(fn=_tagged, args=(_heavy(), "second"))
            out2 = runner.run_values(_specs(second, 6, tag="s"))
            assert runner._pool is pool  # no restart between batches
        assert out1 == SerialRunner().run_values(_specs(first, 6, tag="f"))
        assert out2 == SerialRunner().run_values(_specs(second, 6, tag="s"))

    def test_many_distinct_nested_workloads_converge(self):
        # Regression: each spec nests a *different* workload, all
        # invisible to the batch scan, so every payload must travel by
        # execute-time first-touch.  Retries are cumulative per chunk,
        # which is what guarantees convergence however the chunks
        # bounce between workers.
        workloads = [
            Workload(fn=_tagged, args=(_heavy(64), f"w{i}"))
            for i in range(8)
        ]
        inner = [
            TrialSpec(key=("n", i), args=(i, 0), workload=w)
            for i, w in enumerate(workloads)
        ]
        outer = [
            TrialSpec(key=spec.key, fn=_nested_execute, args=(spec,))
            for spec in inner
        ]
        expected = [spec.execute().value for spec in inner]
        with ProcessPoolRunner(
            workers=2, chunksize=4, mp_context=SPAWN
        ) as runner:
            assert runner.run_values(outer) == expected

    def test_nested_spec_first_touch_under_spawn(self):
        # A workload-referencing spec nested inside a plain spec is
        # invisible to the pool's batch scan; the miss surfaces at
        # execute time and must still be answered by resubmission.
        w = Workload(fn=_tagged, args=(_heavy(), "nested"))
        inner = _specs(w, 6, tag="n")
        outer = [
            TrialSpec(key=spec.key, fn=_nested_execute, args=(spec,))
            for spec in inner
        ]
        with ProcessPoolRunner(
            workers=2, chunksize=1, mp_context=SPAWN
        ) as runner:
            assert runner.run_values(outer) == [
                spec.execute().value for spec in inner
            ]

    def test_mixed_plain_and_workload_specs_in_one_batch(self):
        w = Workload(fn=_tagged, args=(_heavy(16), "m"))
        specs = []
        for t in range(10):
            if t % 2:
                specs.append(
                    TrialSpec(
                        key=("plain", t), fn=_tagged, args=((), "p", t, 0)
                    )
                )
            else:
                specs.append(
                    TrialSpec(key=("wl", t), args=(t, 0), workload=w)
                )
        serial = SerialRunner().run(specs)
        with ProcessPoolRunner(workers=2, chunksize=3) as runner:
            assert runner.run(specs) == serial

    def test_dropped_workload_is_an_ownership_error(self):
        # The emitter must keep workloads alive while specs run: a
        # bare ref whose payload no longer exists anywhere is reported
        # as the contract violation it is, not a crash or a hang.
        ref = WorkloadRef("feedfacefeedfacefeedfacefeedface")
        specs = [
            TrialSpec(key=("orphan", t), args=(t,), workload=ref)
            for t in range(4)
        ]
        with ProcessPoolRunner(
            workers=2, chunksize=1, mp_context=SPAWN
        ) as runner:
            with pytest.raises(TrialExecutionError, match="ownership|alive"):
                runner.run(specs)


class TestPoolLifecycle:
    def test_close_is_idempotent_and_pool_rebuilds(self):
        runner = ProcessPoolRunner(workers=2, chunksize=1)
        w = Workload(fn=_tagged, args=(_heavy(16), "x"))
        assert runner.run_values(_specs(w, 4))
        runner.close()
        assert runner._pool is None
        runner.close()  # no-op
        # a closed runner is still usable; it just pays start-up again
        assert runner.run_values(_specs(w, 4))
        runner.close()

    def test_inline_paths_never_build_a_pool(self):
        w = Workload(fn=_tagged, args=(_heavy(16), "x"))
        runner = ProcessPoolRunner(workers=4, chunksize=64)
        assert runner.run_values(_specs(w, 5))  # folds into one chunk
        assert runner._pool is None
