"""The packed record wire: pack/unpack identity and safe declining.

``pack_records`` flattens a chunk of ``run_trial`` records into flat
arrays; ``unpack_records`` must rebuild the exact ``TrialResult`` list
from them against the coordinator's specs.  Anything the packer cannot
represent — foreign workloads, records carrying extra data, results
out of step with their specs — must make it decline (return ``None``),
never raise and never ship a lossy body; a malformed packed body must
make the unpacker raise, which the cluster coordinator treats as a
protocol violation.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.complexity import complexity_specs
from repro.core.traffic import (
    FixedTraffic,
    HotspotTraffic,
    PermutationTraffic,
    traffic_specs,
)
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from repro.routers.waypoint import WaypointRouter
from repro.runtime import TrialResult, TrialSpec, Workload
from repro.runtime.chunkexec import execute_specs
from repro.runtime.cluster import resolve_record_wire
from repro.runtime.recordwire import pack_records, unpack_records


def _chunk(router, *, p=0.5, budget=40, trials=12, seed=21, **kw):
    specs = complexity_specs(
        Hypercube(5),
        p=p,
        router=router,
        trials=trials,
        seed=seed,
        budget=budget,
        key=("wire",),
        **kw,
    )
    return specs, execute_specs(specs)


@pytest.mark.parametrize(
    "router,p,budget",
    [
        (LocalBFSRouter(), 0.5, 40),     # mixed outcomes
        (LocalBFSRouter(), 0.2, 30),     # mostly disconnected
        (BidirectionalBFSRouter(), 0.6, 5),  # budget failures
        (WaypointRouter(), 0.7, None),   # successes with paths
    ],
    ids=["mixed", "disconnected", "budget", "paths"],
)
def test_round_trip_is_identical(router, p, budget):
    specs, results = _chunk(router, p=p, budget=budget)
    packed = pack_records(specs, results)
    assert packed is not None
    rebuilt = unpack_records(packed, specs)
    assert repr(rebuilt) == repr(results)


def test_round_trip_survives_pickling():
    # The body crosses the wire as a pickle frame: the arrays must
    # come back intact, and decode must not depend on object identity.
    specs, results = _chunk(LocalBFSRouter())
    packed = pickle.loads(pickle.dumps(pack_records(specs, results)))
    assert repr(unpack_records(packed, specs)) == repr(results)


def test_multi_workload_chunk_packs():
    s1, r1 = _chunk(LocalBFSRouter(), seed=3)
    specs2 = complexity_specs(
        Mesh(2, 5),
        p=0.7,
        router=WaypointRouter(),
        trials=6,
        seed=4,
        key=("wire-b",),
    )
    r2 = execute_specs(specs2)
    specs, results = s1 + specs2, r1 + r2
    packed = pack_records(specs, results)
    assert packed is not None
    assert repr(unpack_records(packed, specs)) == repr(results)


def _foreign_fn(x, t, s):
    return (x, t, s)


def _foreign_chunk():
    w = Workload(fn=_foreign_fn, args=(1,), kwargs={})
    specs = [TrialSpec(key=("f", 0), args=(0, 1), workload=w)]
    return specs, [TrialResult(key=("f", 0), value=(1, 0, 1))]


def test_foreign_workload_declines():
    specs, results = _foreign_chunk()
    assert pack_records(specs, results) is None


def test_extra_data_declines():
    specs, results = _chunk(LocalBFSRouter(), p=1.0, trials=2)
    record = results[0].value
    object.__setattr__(record.result, "extra", {"hops": 3})
    assert pack_records(specs, results) is None


def test_length_mismatch_declines():
    specs, results = _chunk(LocalBFSRouter(), trials=4)
    assert pack_records(specs, results[:-1]) is None


def test_unpack_rejects_malformed_bodies():
    specs, results = _chunk(LocalBFSRouter(), trials=4)
    packed = pack_records(specs, results)
    with pytest.raises(ValueError, match="format"):
        unpack_records({**packed, "format": "records/999"}, specs)
    with pytest.raises(ValueError, match="cover"):
        unpack_records(
            {**packed, "trial": packed["trial"][:-1]}, specs
        )
    with pytest.raises(ValueError, match="missing"):
        short = dict(packed)
        del short["queries"]
        unpack_records(short, specs)
    specs, results = _chunk(LocalBFSRouter(), p=1.0, budget=None, trials=2)
    packed = pack_records(specs, results)
    assert packed["path"].size  # routed: the truncation must be seen
    with pytest.raises(ValueError, match="path"):
        unpack_records({**packed, "path": packed["path"][:-1]}, specs)


def test_unpack_rejects_foreign_specs():
    specs, results = _chunk(LocalBFSRouter(), trials=1)
    packed = pack_records(specs, results)
    foreign_specs, _ = _foreign_chunk()
    with pytest.raises(ValueError, match="packable"):
        unpack_records(packed, foreign_specs)


def test_record_wire_env(monkeypatch):
    for raw, expected in [
        ("", "packed"), ("packed", "packed"), ("PACKED", "packed"),
        ("pickle", "pickle"), (" Pickle ", "pickle"),
    ]:
        monkeypatch.setenv("REPRO_RECORD_WIRE", raw)
        assert resolve_record_wire() == expected, raw
    monkeypatch.delenv("REPRO_RECORD_WIRE")
    assert resolve_record_wire() == "packed"
    monkeypatch.setenv("REPRO_RECORD_WIRE", "json")
    with pytest.raises(ValueError, match="REPRO_RECORD_WIRE"):
        resolve_record_wire()


def _traffic_chunk(demands, *, p=0.7, trials=6, seed=11, budget=None):
    specs = traffic_specs(
        Hypercube(4),
        p,
        LocalBFSRouter(),
        demands,
        trials=trials,
        seed=seed,
        budget=budget,
        key=("twire",),
    )
    return specs, execute_specs(specs)


class TestTrafficRecords:
    @pytest.mark.parametrize(
        "demands,p,budget",
        [
            (PermutationTraffic(4), 0.7, None),   # mixed deliveries
            (PermutationTraffic(4), 0.2, None),   # mostly undelivered
            (HotspotTraffic(5, 0.8), 0.75, 25),   # budget failures
            (FixedTraffic(((0, 15),)), 0.8, None),  # one commodity
        ],
        ids=["mixed", "undelivered", "budget", "single"],
    )
    def test_round_trip_is_identical(self, demands, p, budget):
        specs, results = _traffic_chunk(demands, p=p, budget=budget)
        packed = pack_records(specs, results)
        assert packed is not None
        assert packed["format"] == "records/2"
        assert repr(unpack_records(packed, specs)) == repr(results)

    def test_mixed_pair_and_traffic_chunk(self):
        # One chunk carrying both trial units: ragged traffic columns
        # must skip the pair records (t_comm == -1) cleanly.
        s1, r1 = _chunk(LocalBFSRouter(), seed=3, trials=4)
        s2, r2 = _traffic_chunk(PermutationTraffic(3), seed=5)
        specs, results = s1 + s2, r1 + r2
        packed = pack_records(specs, results)
        assert packed is not None
        assert repr(unpack_records(packed, specs)) == repr(results)

    def test_traffic_record_with_result_declines(self):
        specs, results = _traffic_chunk(PermutationTraffic(3), trials=2)
        donor = _chunk(LocalBFSRouter(), trials=1)[1][0].value
        record = results[0].value
        object.__setattr__(record, "result", donor.result)
        assert pack_records(specs, results) is None

    def test_pair_record_with_traffic_declines(self):
        specs, results = _chunk(LocalBFSRouter(), trials=2)
        donor = _traffic_chunk(PermutationTraffic(3), trials=1)[1][0].value
        record = results[0].value
        object.__setattr__(record, "traffic", donor.traffic)
        assert pack_records(specs, results) is None

    def test_unpack_rejects_malformed_traffic_columns(self):
        specs, results = _traffic_chunk(PermutationTraffic(3), trials=3)
        packed = pack_records(specs, results)
        with pytest.raises(ValueError, match="disagree"):
            unpack_records(
                {**packed, "t_delivered": packed["t_delivered"][:-1]},
                specs,
            )
        with pytest.raises(ValueError, match="shorter"):
            unpack_records(
                {
                    **packed,
                    "t_queries": packed["t_queries"][:-1],
                    "t_delivered": packed["t_delivered"][:-1],
                },
                specs,
            )
        import numpy as np

        with pytest.raises(ValueError, match="longer"):
            unpack_records(
                {
                    **packed,
                    "t_queries": np.append(packed["t_queries"], 1),
                    "t_delivered": np.append(
                        packed["t_delivered"], True
                    ),
                },
                specs,
            )

    def test_unpack_rejects_traffic_body_against_pair_specs(self):
        # Same trial count, but the specs route a single pair: a body
        # declaring traffic rows for them is a protocol violation.
        t_specs, t_results = _traffic_chunk(PermutationTraffic(3), trials=3)
        packed = pack_records(t_specs, t_results)
        p_specs, _ = _chunk(LocalBFSRouter(), trials=3)
        with pytest.raises(ValueError):
            unpack_records(packed, p_specs)
