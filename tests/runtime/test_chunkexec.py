"""Mechanics of the batch-kernel seam (grouping, caching, the switch).

These tests drive :mod:`repro.runtime.chunkexec` with a synthetic
kernel, so they check the *seam* — eligibility, maximal-run grouping,
order preservation, the environment switch, the compile cache — rather
than any real vectorized kernel (those live in ``tests/kernels/``).
"""

from __future__ import annotations

import pytest

import repro.runtime.chunkexec as chunkexec
from repro.runtime import TrialResult, TrialSpec, Workload
from repro.runtime.chunkexec import (
    execute_specs,
    kernel_enabled,
    kernel_split,
    register_chunk_kernel,
    resolve_cache_cap,
    stage_split,
    supports_run_chunk,
)


def _work(tag, trial, seed):
    return ("slow", tag, trial, seed)


def _other(x):
    return ("plain", x)


@pytest.fixture(autouse=True)
def _isolated_registry():
    compilers = dict(chunkexec._COMPILERS)
    chunkexec._COMPILED.clear()
    yield
    chunkexec._COMPILERS.clear()
    chunkexec._COMPILERS.update(compilers)
    chunkexec._COMPILED.clear()


class _Recorder:
    """A chunk compiler whose runner logs every batched call."""

    def __init__(self):
        self.compiles = 0
        self.calls = []

    def __call__(self, workload):
        self.compiles += 1
        tag = workload.args[0]

        def runner(keys, tails):
            self.calls.append(list(tails))
            return [("fast", tag, t, s) for t, s in tails]

        return runner


def _specs(workload, trials, key="k"):
    return [
        TrialSpec(key=(key, t), args=(t, 100 + t), workload=workload)
        for t in range(trials)
    ]


def test_maximal_runs_batch_through_one_call():
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    w1 = Workload(fn=_work, args=("a",))
    w2 = Workload(fn=_work, args=("b",))
    plain = TrialSpec(key=("plain",), fn=_other, args=(9,))
    specs = _specs(w1, 3) + [plain] + _specs(w2, 2, key="k2")
    results = execute_specs(specs)
    # One batched call per maximal same-workload run.
    assert recorder.calls == [[(0, 100), (1, 101), (2, 102)], [(0, 100), (1, 101)]]
    # Order and keys preserved; kernel values in kernel slots.
    assert [r.key for r in results] == [s.key for s in specs]
    assert results[0].value == ("fast", "a", 0, 100)
    assert results[3].value == ("plain", 9)
    assert results[4].value == ("fast", "b", 0, 100)


def test_ineligible_tails_fall_back_per_spec():
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    w = Workload(fn=_work, args=("a",))
    eligible = TrialSpec(key=("e",), args=(0, 100), workload=w)
    kwargs_spec = TrialSpec(
        key=("kw",), args=(1,), kwargs={"seed": 101}, workload=w
    )
    non_int = TrialSpec(key=("f",), args=(2, 102.5), workload=w)
    results = execute_specs([eligible, kwargs_spec, non_int])
    assert recorder.calls == [[(0, 100)]]
    assert results[0].value == ("fast", "a", 0, 100)
    assert results[1].value == ("slow", "a", 1, 101)
    assert results[2].value == ("slow", "a", 2, 102.5)


def test_results_match_per_spec_execution():
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    w = Workload(fn=_work, args=("a",))
    specs = _specs(w, 4)
    got = execute_specs(specs)
    expected = [
        TrialResult(key=s.key, value=("fast", "a", *s.args)) for s in specs
    ]
    assert got == expected


def test_declining_compiler_falls_back():
    register_chunk_kernel(_work, lambda workload: None)
    w = Workload(fn=_work, args=("a",))
    assert not supports_run_chunk(w)
    results = execute_specs(_specs(w, 2))
    assert results[0].value == ("slow", "a", 0, 100)


def test_unregistered_fn_falls_back():
    w = Workload(fn=_other, args=())
    spec = TrialSpec(key=("x",), args=(1, 2), workload=w)
    # _other(1, 2) raises TypeError -> wrapped; proves the kernel path
    # was never taken for an unregistered fn (it would have crashed
    # differently) and the normal execute machinery ran.
    results = execute_specs([TrialSpec(key=("y",), fn=_other, args=(7,))])
    assert results[0].value == ("plain", 7)
    assert not supports_run_chunk(w)
    del spec


def test_compile_once_per_content_id():
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    w = Workload(fn=_work, args=("a",))
    execute_specs(_specs(w, 2))
    execute_specs(_specs(w, 3))
    twin = Workload(fn=_work, args=("a",))  # same contents, same id
    execute_specs(_specs(twin, 1))
    assert recorder.compiles == 1
    assert len(recorder.calls) == 3


def test_compile_cache_evicts_lru(monkeypatch):
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    monkeypatch.setattr(chunkexec, "_COMPILED_CAP", 2)
    w1 = Workload(fn=_work, args=("a",))
    w2 = Workload(fn=_work, args=("b",))
    w3 = Workload(fn=_work, args=("c",))
    for w in (w1, w2, w3):
        execute_specs(_specs(w, 1))
    assert recorder.compiles == 3
    assert len(chunkexec._COMPILED) == 2
    execute_specs(_specs(w1, 1))  # evicted -> recompiles
    assert recorder.compiles == 4


def test_cache_cap_env_overrides_default(monkeypatch):
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    monkeypatch.setenv("REPRO_KERNEL_CACHE", "2")
    assert resolve_cache_cap() == 2
    w1 = Workload(fn=_work, args=("a",))
    w2 = Workload(fn=_work, args=("b",))
    w3 = Workload(fn=_work, args=("c",))
    for w in (w1, w2, w3):
        execute_specs(_specs(w, 1))
    assert recorder.compiles == 3
    assert len(chunkexec._COMPILED) == 2
    execute_specs(_specs(w1, 1))  # evicted under the env cap
    assert recorder.compiles == 4


def test_cache_cap_zero_is_unbounded(monkeypatch):
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    monkeypatch.setenv("REPRO_KERNEL_CACHE", "0")
    monkeypatch.setattr(chunkexec, "_COMPILED_CAP", 1)  # would evict
    workloads = [Workload(fn=_work, args=(tag,)) for tag in "abcd"]
    for w in workloads:
        execute_specs(_specs(w, 1))
    assert len(chunkexec._COMPILED) == len(workloads)
    for w in workloads:
        execute_specs(_specs(w, 1))
    assert recorder.compiles == len(workloads)  # nothing recompiled


def test_cache_cap_defaults_to_module_attribute(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
    assert resolve_cache_cap() == chunkexec._COMPILED_CAP
    monkeypatch.setattr(chunkexec, "_COMPILED_CAP", 7)
    assert resolve_cache_cap() == 7


@pytest.mark.parametrize("raw", ["-1", "many", "2.5", "0x10"])
def test_cache_cap_rejects_garbage(monkeypatch, raw):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", raw)
    with pytest.raises(ValueError, match="REPRO_KERNEL_CACHE"):
        resolve_cache_cap()


class _StagedRecorder(_Recorder):
    """A compiler whose runners report a per-stage breakdown."""

    def __init__(self, breakdown):
        super().__init__()
        self.breakdown = breakdown

    def __call__(self, workload):
        runner = super().__call__(workload)
        runner.stages = lambda: dict(self.breakdown)
        return runner


def test_stage_split_reports_runner_breakdown():
    register_chunk_kernel(
        _work, _StagedRecorder({"routing": "per-trial"})
    )
    w = Workload(fn=_work, args=("a",))
    plain = TrialSpec(key=("p",), fn=_other, args=(1,))
    split = stage_split(_specs(w, 3) + [plain])
    # Unreported stages count as kernel; the fallback spec is
    # per-trial in every stage.
    assert split == {
        "draw": {"kernel": 3, "per-trial": 1},
        "conditioning": {"kernel": 3, "per-trial": 1},
        "routing": {"kernel": 0, "per-trial": 4},
    }


def test_stage_split_without_stages_counts_all_kernel():
    register_chunk_kernel(_work, _Recorder())
    split = stage_split(_specs(Workload(fn=_work, args=("a",)), 2))
    assert all(
        counts == {"kernel": 2, "per-trial": 0}
        for counts in split.values()
    )


def test_stage_split_all_per_trial_when_disabled(monkeypatch):
    register_chunk_kernel(_work, _Recorder())
    monkeypatch.setenv("REPRO_KERNEL", "off")
    split = stage_split(_specs(Workload(fn=_work, args=("a",)), 2))
    assert all(
        counts == {"kernel": 0, "per-trial": 2}
        for counts in split.values()
    )


def test_env_switch(monkeypatch):
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    w = Workload(fn=_work, args=("a",))
    for raw, expected in [
        ("", True), ("1", True), ("on", True), ("auto", True),
        ("true", True), ("yes", True), ("0", False), ("off", False),
        ("false", False), ("no", False), ("ON", True), (" Off ", False),
    ]:
        monkeypatch.setenv("REPRO_KERNEL", raw)
        assert kernel_enabled() is expected, raw
    monkeypatch.setenv("REPRO_KERNEL", "off")
    results = execute_specs(_specs(w, 2))
    assert recorder.calls == []
    assert results[0].value == ("slow", "a", 0, 100)
    assert not supports_run_chunk(w)


def test_env_switch_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "maybe")
    with pytest.raises(ValueError, match="REPRO_KERNEL"):
        kernel_enabled()
    with pytest.raises(ValueError, match="REPRO_KERNEL"):
        execute_specs([])


def test_kernel_split_counts_without_executing():
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    w = Workload(fn=_work, args=("a",))
    plain = TrialSpec(key=("p",), fn=_other, args=(1,))
    specs = _specs(w, 3) + [plain]
    assert kernel_split(specs) == (3, 1)
    assert recorder.calls == []  # counted, never executed


def test_kernel_split_all_fallback_when_disabled(monkeypatch):
    recorder = _Recorder()
    register_chunk_kernel(_work, recorder)
    w = Workload(fn=_work, args=("a",))
    monkeypatch.setenv("REPRO_KERNEL", "off")
    assert kernel_split(_specs(w, 3)) == (0, 3)
