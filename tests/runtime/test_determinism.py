"""Seed and runner-threading behaviour of :class:`ExperimentSpec`.

The suite-wide serial-vs-parallel determinism tests live in
``tests/experiments/test_parity.py`` (every registered experiment now
routes its trials through :mod:`repro.runtime`); this module covers the
spec-level plumbing around them: seeds must matter, and the caller's
runner must reach the definition.
"""

from repro.experiments.registry import get_experiment
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec
from repro.runtime import ProcessPoolRunner, SerialRunner


def test_seed_still_matters():
    spec = get_experiment("E1")
    runner = SerialRunner()
    a = spec(scale="tiny", seed=0, runner=runner)
    b = spec(scale="tiny", seed=1, runner=runner)
    assert a.render() != b.render()


def _runner_run(scale, seed, runner=None):
    table = ResultTable("X8", "runner-based")
    table.add_row(runner=type(runner).__name__)
    return table


class TestSpecRunnerThreading:
    def _spec(self):
        return ExperimentSpec(
            experiment_id="X8",
            title="t",
            claim="c",
            reference="r",
            run=_runner_run,
        )

    def test_runner_passed_through(self):
        runner = ProcessPoolRunner(workers=2)
        table = self._spec()(scale="tiny", seed=0, runner=runner)
        assert table.rows == [{"runner": "ProcessPoolRunner"}]

    def test_default_runner_resolved_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert self._spec()(scale="tiny").rows == [{"runner": "SerialRunner"}]

    def test_env_worker_count_builds_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert self._spec()(scale="tiny").rows == [
            {"runner": "ProcessPoolRunner"}
        ]

    def test_env_backend_reaches_default_runner(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert self._spec()(scale="tiny").rows == [
            {"runner": "ProcessPoolRunner"}
        ]
