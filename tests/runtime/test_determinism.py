"""Serial-vs-parallel determinism of the runner-based experiments.

The seed-derivation contract (see :mod:`repro.runtime`) promises that a
``ProcessPoolRunner`` produces exactly the ``ResultTable`` a
``SerialRunner`` does for the same master seed.  These tests enforce it
for every experiment definition that routes its sweep through the
runtime, comparing the rendered table (the persisted record) and the
``repr`` of the raw rows (NaN-tolerant, unlike ``==``).
"""

import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec
from repro.runtime import ProcessPoolRunner, SerialRunner

#: Every definition refactored onto the trial runner.
RUNNER_BASED = ["E1", "E5", "E10", "E11", "E13", "E14"]


@pytest.mark.parametrize("experiment_id", RUNNER_BASED)
def test_parallel_matches_serial(experiment_id):
    spec = get_experiment(experiment_id)
    serial = spec(scale="tiny", seed=11, runner=SerialRunner())
    parallel = spec(
        scale="tiny",
        seed=11,
        runner=ProcessPoolRunner(workers=2, chunksize=1),
    )
    assert serial.render() == parallel.render()
    assert repr(serial.rows) == repr(parallel.rows)
    assert serial.notes == parallel.notes


def test_seed_still_matters():
    spec = get_experiment("E1")
    runner = SerialRunner()
    a = spec(scale="tiny", seed=0, runner=runner)
    b = spec(scale="tiny", seed=1, runner=runner)
    assert a.render() != b.render()


def _legacy_run(scale, seed):
    table = ResultTable("X7", "legacy")
    table.add_row(scale=scale, seed=seed)
    return table


def _runner_run(scale, seed, runner=None):
    table = ResultTable("X8", "new-style")
    table.add_row(runner=type(runner).__name__)
    return table


class TestSpecRunnerThreading:
    def test_legacy_two_argument_run_still_works(self):
        spec = ExperimentSpec(
            experiment_id="X7",
            title="t",
            claim="c",
            reference="r",
            run=_legacy_run,
        )
        table = spec(scale="tiny", seed=5, runner=SerialRunner())
        assert table.rows == [{"scale": "tiny", "seed": 5}]

    def test_runner_passed_through(self):
        spec = ExperimentSpec(
            experiment_id="X8",
            title="t",
            claim="c",
            reference="r",
            run=_runner_run,
        )
        runner = ProcessPoolRunner(workers=2)
        table = spec(scale="tiny", seed=0, runner=runner)
        assert table.rows == [{"runner": "ProcessPoolRunner"}]

    def test_default_runner_resolved_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        spec = ExperimentSpec(
            experiment_id="X8",
            title="t",
            claim="c",
            reference="r",
            run=_runner_run,
        )
        assert spec(scale="tiny").rows == [{"runner": "SerialRunner"}]
