"""Property tests for the cluster wire protocol.

The framing layer (:func:`encode_frame` / :class:`FrameReader`) is
deliberately socket-free, so hypothesis can drive it over arbitrary
payloads and arbitrary read boundaries: every split of a frame stream
must decode to the same messages in the same order, a torn tail must
stay pending rather than decode to garbage, and wrong magic must be
rejected.  Chunk reassembly (:class:`ChunkBoard`) gets the same
treatment: any completion order — and duplicated completions, which
requeued chunks can produce — must rebuild the batch in trial order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.cluster import (
    ChunkBoard,
    FrameReader,
    ProtocolError,
    encode_frame,
    parse_nodes,
)
from repro.runtime.runner import pick_chunksize, split_chunks

# Arbitrary picklable message payloads (no NaN: equality-checked).
payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=64),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestFraming:
    @settings(max_examples=60, deadline=None)
    @given(
        messages=st.lists(payloads, max_size=6),
        splits=st.lists(st.integers(1, 64), min_size=1, max_size=20),
    )
    def test_roundtrip_under_arbitrary_splits(self, messages, splits):
        blob = b"".join(encode_frame(m) for m in messages)
        reader = FrameReader()
        decoded = []
        position = 0
        index = 0
        while position < len(blob):
            step = splits[index % len(splits)]
            index += 1
            decoded.extend(reader.feed(blob[position : position + step]))
            position += step
        assert decoded == messages
        assert not reader.mid_frame

    @settings(max_examples=60, deadline=None)
    @given(message=payloads, cut=st.integers(min_value=1, max_value=1 << 16))
    def test_torn_tail_stays_pending(self, message, cut):
        blob = encode_frame(message)
        cut = min(cut, len(blob) - 1)
        reader = FrameReader()
        assert reader.feed(blob[:-cut]) == []
        assert reader.mid_frame
        # Feeding the rest completes the frame exactly once.
        assert reader.feed(blob[-cut:]) == [message]
        assert not reader.mid_frame

    @settings(max_examples=40, deadline=None)
    @given(first=payloads, second=payloads)
    def test_frames_do_not_bleed_into_each_other(self, first, second):
        reader = FrameReader()
        decoded = reader.feed(encode_frame(first) + encode_frame(second))
        assert decoded == [first, second]

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameReader().feed(b"XXXX\x00\x00\x00\x01z")

    def test_oversize_frame_rejected(self):
        header = b"RPRO" + (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="cap"):
            FrameReader().feed(header)


@st.composite
def completion_orders(draw):
    """A batch, a chunking of it, and a permuted completion order."""
    values = draw(st.lists(st.integers(), min_size=1, max_size=40))
    size = draw(st.integers(min_value=1, max_value=len(values) + 5))
    chunks = split_chunks(values, size)
    order = draw(st.permutations(chunks))
    return values, order


class TestReassembly:
    @settings(max_examples=80, deadline=None)
    @given(case=completion_orders())
    def test_out_of_order_completion_rebuilds_trial_order(self, case):
        values, order = case
        board = ChunkBoard(len(values))
        for start, chunk in order:
            board.place(start, chunk)
        assert board.complete
        assert board.results() == values

    @settings(max_examples=40, deadline=None)
    @given(case=completion_orders())
    def test_duplicate_completion_is_idempotent(self, case):
        # A chunk requeued after a node death can complete twice (the
        # first "done" raced the disconnect); placement must not care.
        values, order = case
        board = ChunkBoard(len(values))
        for start, chunk in order:
            board.place(start, chunk)
            board.place(start, chunk)
        assert board.complete
        assert board.results() == values

    def test_incomplete_board_refuses_results(self):
        board = ChunkBoard(3)
        board.place(0, [10])
        assert not board.complete
        with pytest.raises(RuntimeError, match="incomplete"):
            board.results()

    def test_overflowing_chunk_rejected(self):
        board = ChunkBoard(3)
        with pytest.raises(ProtocolError, match="overflows"):
            board.place(2, [1, 2])

    @settings(max_examples=40, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=500),
        workers=st.integers(min_value=1, max_value=16),
    )
    def test_auto_chunking_always_covers_the_batch(self, total, workers):
        size = pick_chunksize(total, workers)
        chunks = split_chunks(list(range(total)), size)
        assert all(chunk for _, chunk in chunks)
        assert [v for _, chunk in chunks for v in chunk] == list(range(total))


class TestParseNodes:
    def test_env_string_form(self):
        assert parse_nodes(" 127.0.0.1:7101 ,localhost:7102") == (
            ("127.0.0.1", 7101),
            ("localhost", 7102),
        )

    def test_pair_form(self):
        assert parse_nodes([("h", 80)]) == (("h", 80),)

    def test_trailing_comma_tolerated(self):
        # An easy shell artifact; empty segments are skipped, not fatal.
        assert parse_nodes("h1:7001,h2:7002,") == (
            ("h1", 7001),
            ("h2", 7002),
        )

    @pytest.mark.parametrize(
        "bad",
        ["nocolon", "host:notaport", "host:0", "host:70000", ":7101", ""],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_nodes(bad)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="no cluster node"):
            parse_nodes([])
