"""Property tests for the cluster wire protocol.

The framing layer (:func:`encode_frame` / :class:`FrameReader`) is
deliberately socket-free, so hypothesis can drive it over arbitrary
payloads and arbitrary read boundaries: every split of a frame stream
must decode to the same messages in the same order, a torn tail must
stay pending rather than decode to garbage, and wrong magic must be
rejected.  Chunk reassembly (:class:`ChunkBoard`) gets the same
treatment: any completion order — and duplicated completions, which
requeued chunks can produce — must rebuild the batch in trial order.

The pipelined protocol adds two concurrency surfaces, tested here over
real socketpairs: :class:`MessageStream` sends racing from many
threads (node-pool callbacks versus pong replies) must never
interleave bytes mid-frame, and heartbeat ``pong`` frames interleaved
between pipelined chunk replies must decode in stream order.  The
node-side :class:`WorkloadCache` LRU is property-tested for its cap
and recency invariants.
"""

import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.cluster import (
    ChunkBoard,
    FrameReader,
    MessageStream,
    ProtocolError,
    WorkloadCache,
    encode_frame,
    parse_nodes,
)
from repro.runtime.runner import pick_chunksize, split_chunks
from repro.runtime.testing import make_workload

# Arbitrary picklable message payloads (no NaN: equality-checked).
payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=64),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestFraming:
    @settings(max_examples=60, deadline=None)
    @given(
        messages=st.lists(payloads, max_size=6),
        splits=st.lists(st.integers(1, 64), min_size=1, max_size=20),
    )
    def test_roundtrip_under_arbitrary_splits(self, messages, splits):
        blob = b"".join(encode_frame(m) for m in messages)
        reader = FrameReader()
        decoded = []
        position = 0
        index = 0
        while position < len(blob):
            step = splits[index % len(splits)]
            index += 1
            decoded.extend(reader.feed(blob[position : position + step]))
            position += step
        assert decoded == messages
        assert not reader.mid_frame

    @settings(max_examples=60, deadline=None)
    @given(message=payloads, cut=st.integers(min_value=1, max_value=1 << 16))
    def test_torn_tail_stays_pending(self, message, cut):
        blob = encode_frame(message)
        cut = min(cut, len(blob) - 1)
        reader = FrameReader()
        assert reader.feed(blob[:-cut]) == []
        assert reader.mid_frame
        # Feeding the rest completes the frame exactly once.
        assert reader.feed(blob[-cut:]) == [message]
        assert not reader.mid_frame

    @settings(max_examples=40, deadline=None)
    @given(first=payloads, second=payloads)
    def test_frames_do_not_bleed_into_each_other(self, first, second):
        reader = FrameReader()
        decoded = reader.feed(encode_frame(first) + encode_frame(second))
        assert decoded == [first, second]

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameReader().feed(b"XXXX\x00\x00\x00\x01z")

    def test_oversize_frame_rejected(self):
        header = b"RPRO" + (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="cap"):
            FrameReader().feed(header)


@st.composite
def completion_orders(draw):
    """A batch, a chunking of it, and a permuted completion order."""
    values = draw(st.lists(st.integers(), min_size=1, max_size=40))
    size = draw(st.integers(min_value=1, max_value=len(values) + 5))
    chunks = split_chunks(values, size)
    order = draw(st.permutations(chunks))
    return values, order


class TestReassembly:
    @settings(max_examples=80, deadline=None)
    @given(case=completion_orders())
    def test_out_of_order_completion_rebuilds_trial_order(self, case):
        values, order = case
        board = ChunkBoard(len(values))
        for start, chunk in order:
            board.place(start, chunk)
        assert board.complete
        assert board.results() == values

    @settings(max_examples=40, deadline=None)
    @given(case=completion_orders())
    def test_duplicate_completion_is_idempotent(self, case):
        # A chunk requeued after a node death can complete twice (the
        # first "done" raced the disconnect); placement must not care.
        values, order = case
        board = ChunkBoard(len(values))
        for start, chunk in order:
            board.place(start, chunk)
            board.place(start, chunk)
        assert board.complete
        assert board.results() == values

    def test_incomplete_board_refuses_results(self):
        board = ChunkBoard(3)
        board.place(0, [10])
        assert not board.complete
        with pytest.raises(RuntimeError, match="incomplete"):
            board.results()

    def test_overflowing_chunk_rejected(self):
        board = ChunkBoard(3)
        with pytest.raises(ProtocolError, match="overflows"):
            board.place(2, [1, 2])

    @settings(max_examples=40, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=500),
        workers=st.integers(min_value=1, max_value=16),
    )
    def test_auto_chunking_always_covers_the_batch(self, total, workers):
        size = pick_chunksize(total, workers)
        chunks = split_chunks(list(range(total)), size)
        assert all(chunk for _, chunk in chunks)
        assert [v for _, chunk in chunks for v in chunk] == list(range(total))


class TestMessageStreamConcurrency:
    @settings(max_examples=10, deadline=None)
    @given(
        senders=st.integers(min_value=2, max_value=6),
        per_sender=st.integers(min_value=1, max_value=20),
    )
    def test_concurrent_sends_never_interleave(self, senders, per_sender):
        # Many threads hammering one stream (the node-side shape: pool
        # callbacks replying `done` while the connection thread replies
        # `pong`): every frame must arrive intact and per-sender order
        # must survive, even though global interleaving is arbitrary.
        left, right = socket.socketpair()
        try:
            stream = MessageStream(left)
            payload = b"x" * 700  # forces multi-chunk reads
            threads = [
                threading.Thread(
                    target=lambda s=s: [
                        stream.send(("msg", {"sender": s, "seq": i,
                                             "pad": payload}))
                        for i in range(per_sender)
                    ]
                )
                for s in range(senders)
            ]
            for thread in threads:
                thread.start()
            # Drain while the senders run: joining first would deadlock
            # once the batch overflows the socketpair buffer (senders
            # blocked in sendall waiting on a reader that never comes).
            reader = FrameReader()
            received = []
            right.settimeout(5)
            while len(received) < senders * per_sender:
                received.extend(reader.feed(right.recv(1 << 16)))
            for thread in threads:
                thread.join(timeout=5)
                assert not thread.is_alive()
            seen = {s: [] for s in range(senders)}
            for kind, body in received:
                assert kind == "msg"
                assert body["pad"] == payload
                seen[body["sender"]].append(body["seq"])
            assert all(
                seqs == list(range(per_sender)) for seqs in seen.values()
            )
        finally:
            left.close()
            right.close()

    def test_send_timeout_never_leaks_into_blocking_recv(self):
        # Regression: send() applies send_timeout to the socket for
        # the duration of the sendall only.  If the bound survived the
        # send, the node-side blocking recv() would inherit it and any
        # coordinator connection idle longer than send_timeout (a
        # persistent runner between batches) would be torn down.
        left, right = socket.socketpair()
        try:
            stream = MessageStream(right, send_timeout=0.1)
            stream.send(("pong", {}))
            assert right.gettimeout() is None  # restored after sendall
            # A frame arriving well after the send bound elapsed must
            # still reach a fully blocking recv().
            def late_reply():
                time.sleep(0.3)
                left.sendall(encode_frame(("late", {})))

            threading.Thread(target=late_reply, daemon=True).start()
            assert stream.recv() == ("late", {})
        finally:
            left.close()
            right.close()

    def test_recv_timeout_does_not_alter_socket_timeout(self):
        # recv() polls readiness with select; it must not mutate the
        # socket timeout other threads' sends rely on restoring.
        left, right = socket.socketpair()
        try:
            right.settimeout(7.5)
            stream = MessageStream(right)
            assert stream.recv(timeout=0.05) is None
            assert right.gettimeout() == 7.5
        finally:
            left.close()
            right.close()

    def test_recv_timeout_returns_none_and_preserves_partials(self):
        left, right = socket.socketpair()
        try:
            stream = MessageStream(right)
            assert stream.recv(timeout=0.05) is None  # quiet socket
            assert stream.bytes_received == 0
            frame = encode_frame(("pong", {"at": 1.0}))
            left.sendall(frame[:5])  # torn frame...
            assert stream.recv(timeout=0.05) is None  # ...stays pending
            # ...but the bytes count as liveness: heartbeat supervision
            # must not condemn a node mid-transfer of a large frame.
            assert stream.bytes_received == 5
            left.sendall(frame[5:])
            assert stream.recv(timeout=1.0) == ("pong", {"at": 1.0})
            assert stream.bytes_received == len(frame)
        finally:
            left.close()
            right.close()

    def test_pongs_interleave_between_pipelined_replies(self):
        # The coordinator must see heartbeat pongs and out-of-order
        # chunk replies exactly as framed, whatever the read boundaries.
        left, right = socket.socketpair()
        try:
            stream = MessageStream(right)
            messages = [
                ("pong", {"at": 0.0}),
                ("done", {"chunk": 4, "results": [1]}),
                ("pong", {"at": 1.0}),
                ("done", {"chunk": 0, "results": [2]}),
                ("lost", {"chunk": 2, "reason": "draining"}),
            ]
            blob = b"".join(encode_frame(m) for m in messages)
            for i in range(0, len(blob), 7):  # adversarial boundaries
                left.sendall(blob[i : i + 7])
            assert [stream.recv(timeout=2.0) for _ in messages] == messages
        finally:
            left.close()
            right.close()


class TestWorkloadCache:
    def test_cap_evicts_least_recently_used(self):
        cache = WorkloadCache(cap=2)
        a = make_workload("lru-a", size=4)
        b = make_workload("lru-b", size=4)
        c = make_workload("lru-c", size=4)
        cache.install({a.workload_id: a})
        cache.install({b.workload_id: b})
        cache.lookup([a.workload_id])  # touch a: b is now LRU
        cache.install({c.workload_id: c})
        assert cache.ids() == {a.workload_id, c.workload_id}
        found, missing = cache.lookup([b.workload_id])
        assert found == {} and missing == (b.workload_id,)

    def test_zero_cap_is_unbounded(self):
        cache = WorkloadCache(cap=0)
        workloads = [make_workload(f"unb-{i}", size=4) for i in range(16)]
        for workload in workloads:
            cache.install({workload.workload_id: workload})
        assert len(cache) == 16

    @settings(max_examples=40, deadline=None)
    @given(
        cap=st.integers(min_value=1, max_value=5),
        ops=st.lists(st.integers(min_value=0, max_value=9), max_size=40),
    )
    def test_cap_never_exceeded_and_hits_are_exact(self, cap, ops):
        workloads = [make_workload(f"prop-{i}", size=4) for i in range(10)]
        cache = WorkloadCache(cap=cap)
        for op in ops:
            workload = workloads[op]
            cache.install({workload.workload_id: workload})
            assert len(cache) <= cap
            found, missing = cache.lookup([workload.workload_id])
            assert found[workload.workload_id] is workload
            assert missing == ()


class TestParseNodes:
    def test_env_string_form(self):
        assert parse_nodes(" 127.0.0.1:7101 ,localhost:7102") == (
            ("127.0.0.1", 7101),
            ("localhost", 7102),
        )

    def test_pair_form(self):
        assert parse_nodes([("h", 80)]) == (("h", 80),)

    def test_trailing_comma_tolerated(self):
        # An easy shell artifact; empty segments are skipped, not fatal.
        assert parse_nodes("h1:7001,h2:7002,") == (
            ("h1", 7001),
            ("h2", 7002),
        )

    @pytest.mark.parametrize(
        "bad",
        ["nocolon", "host:notaport", "host:0", "host:70000", ":7101", ""],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_nodes(bad)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="no cluster node"):
            parse_nodes([])

    @pytest.mark.parametrize(
        "dup",
        [
            "h1:7001,h1:7001",
            "h1:7001, h1:7001 ,h2:7002",
            [("h1", 7001), ("h1", 7001)],
        ],
    )
    def test_duplicate_addresses_rejected(self, dup):
        # Two handles on one physical node would double-ship payloads
        # and skew the once-per-node ledgers.
        with pytest.raises(ValueError, match="duplicate"):
            parse_nodes(dup)

    def test_same_host_different_ports_allowed(self):
        assert parse_nodes("h1:7001,h1:7002") == (
            ("h1", 7001),
            ("h1", 7002),
        )
