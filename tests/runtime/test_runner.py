"""Tests for the trial-execution runtime (specs, runners, chunking)."""

import os

import pytest

from repro.runtime import (
    ClusterRunner,
    ProcessPoolRunner,
    SerialRunner,
    TrialExecutionError,
    TrialResult,
    TrialSpec,
    available_backends,
    make_runner,
    register_backend,
    resolve_backend,
    resolve_chunksize,
    resolve_workers,
)
from repro.runtime.backends import unregister_backend
from repro.util.rng import uniform_for


@pytest.fixture
def pinned_backend(monkeypatch):
    """Neutralise $REPRO_BACKEND for tests asserting construction types."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


# Worker functions must live at module level so they pickle by reference.
def _square(x):
    return x * x


def _seeded_value(seed, label):
    return uniform_for(seed, label)


def _fail(x):
    raise ValueError(f"boom {x}")


def _kwarg_echo(a, b=0):
    return (a, b)


def _die():  # pragma: no cover - runs in a worker process
    os._exit(13)


def _specs(count):
    return [
        TrialSpec(key=("sq", i), fn=_square, args=(i,)) for i in range(count)
    ]


class TestTrialSpec:
    def test_execute_returns_result(self):
        result = TrialSpec(key=("k",), fn=_square, args=(3,)).execute()
        assert result == TrialResult(key=("k",), value=9)

    def test_kwargs_passed(self):
        spec = TrialSpec(key=("k",), fn=_kwarg_echo, args=(1,), kwargs={"b": 2})
        assert spec.execute().value == (1, 2)

    def test_failure_wrapped_with_key(self):
        spec = TrialSpec(key=("bad", 7), fn=_fail, args=(7,))
        with pytest.raises(TrialExecutionError) as err:
            spec.execute()
        assert err.value.key == ("bad", 7)
        assert "ValueError" in str(err.value)
        assert "boom 7" in str(err.value)

    def test_failure_detail_carries_traceback(self):
        # The original exception's frames must survive in text form —
        # they are all a pool failure ever reports back.
        spec = TrialSpec(key=("bad", 7), fn=_fail, args=(7,))
        with pytest.raises(TrialExecutionError) as err:
            spec.execute()
        assert "Traceback (most recent call last)" in err.value.detail
        assert "_fail" in err.value.detail  # the failing frame is named

    def test_pool_failure_detail_carries_worker_traceback(self):
        # Same guarantee across the process boundary: the frame that
        # raised inside the worker appears in the parent-side error.
        specs = _specs(4) + [TrialSpec(key=("bad", 1), fn=_fail, args=(1,))]
        with ProcessPoolRunner(workers=2, chunksize=1) as runner:
            with pytest.raises(TrialExecutionError) as err:
                runner.run(specs)
        assert err.value.key == ("bad", 1)
        assert "Traceback (most recent call last)" in err.value.detail
        assert "_fail" in err.value.detail


class TestSerialRunner:
    def test_order_preserved(self):
        results = SerialRunner().run(_specs(5))
        assert [r.value for r in results] == [0, 1, 4, 9, 16]
        assert [r.key for r in results] == [("sq", i) for i in range(5)]

    def test_zero_trials(self):
        assert SerialRunner().run([]) == []

    def test_run_values(self):
        assert SerialRunner().run_values(_specs(3)) == [0, 1, 4]

    def test_error_propagates(self):
        specs = _specs(2) + [TrialSpec(key=("bad",), fn=_fail, args=(0,))]
        with pytest.raises(TrialExecutionError):
            SerialRunner().run(specs)


class TestProcessPoolRunner:
    def test_order_preserved_many_chunks(self):
        runner = ProcessPoolRunner(workers=3, chunksize=2)
        assert runner.run_values(_specs(11)) == [i * i for i in range(11)]

    def test_zero_trials(self):
        assert ProcessPoolRunner(workers=4).run([]) == []

    def test_fewer_trials_than_workers(self):
        # 2 specs on 8 workers: pool must shrink, not hang or drop work.
        runner = ProcessPoolRunner(workers=8)
        assert runner.run_values(_specs(2)) == [0, 1]

    def test_single_trial_runs_inline(self):
        assert ProcessPoolRunner(workers=4).run_values(_specs(1)) == [0]

    def test_matches_serial(self):
        specs = [
            TrialSpec(key=("u", i), fn=_seeded_value, args=(i, "x"))
            for i in range(10)
        ]
        serial = SerialRunner().run(specs)
        parallel = ProcessPoolRunner(workers=4, chunksize=3).run(specs)
        assert serial == parallel

    def test_worker_exception_propagates(self):
        specs = _specs(6) + [TrialSpec(key=("bad", 1), fn=_fail, args=(1,))]
        runner = ProcessPoolRunner(workers=2, chunksize=2)
        with pytest.raises(TrialExecutionError) as err:
            runner.run(specs)
        assert err.value.key == ("bad", 1)

    def test_worker_crash_propagates(self):
        # A worker dying outright (not raising) must surface as an
        # error, not a hang or a silent partial result.
        specs = _specs(3) + [TrialSpec(key=("die",), fn=_die)]
        runner = ProcessPoolRunner(workers=2, chunksize=1)
        with pytest.raises(TrialExecutionError) as err:
            runner.run(specs)
        assert "worker process died" in str(err.value)

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(workers=2, chunksize=0)

    def test_zero_workers_rejected(self):
        # 0 must not silently fall back to cpu_count.
        with pytest.raises(ValueError):
            ProcessPoolRunner(workers=0)

    def test_auto_chunksize_covers_batch(self):
        runner = ProcessPoolRunner(workers=4)
        for total in (1, 2, 15, 16, 17, 1000):
            size = runner._pick_chunksize(total)
            assert size >= 1
            chunk_count = -(-total // size)
            assert chunk_count * size >= total

    def test_fewer_trials_than_chunksize_runs_inline(self, monkeypatch):
        # Regression: a batch that folds into a single chunk must not
        # spawn a pool (it used to ship the lone chunk to a worker).
        import repro.runtime.runner as runner_module

        def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool spawned for a single chunk")

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", _no_pool)
        runner = ProcessPoolRunner(workers=8, chunksize=16)
        assert runner.run_values(_specs(3)) == [0, 1, 4]

    def test_pool_never_larger_than_chunk_count(self):
        # 3 specs, chunksize 2 → 2 chunks; a 8-worker runner must shrink
        # its pool to 2, not spawn idle (or empty-chunk) workers.
        runner = ProcessPoolRunner(workers=8, chunksize=2)
        specs = _specs(3)
        size = runner._pick_chunksize(len(specs))
        chunks = [
            specs[start : start + size]
            for start in range(0, len(specs), size)
        ]
        assert all(chunks)  # no empty chunks, ever
        assert min(runner.workers, len(chunks)) == 2
        assert runner.run_values(specs) == [0, 1, 4]


class TestRunGrouped:
    def test_values_regrouped_in_order(self):
        groups = [
            ("squares", _specs(3)),
            (
                "uniforms",
                [
                    TrialSpec(key=("u", i), fn=_seeded_value, args=(i, "x"))
                    for i in range(2)
                ],
            ),
            ("empty", []),
        ]
        out = SerialRunner().run_grouped(groups)
        assert out["squares"] == [0, 1, 4]
        assert out["uniforms"] == [_seeded_value(0, "x"), _seeded_value(1, "x")]
        assert out["empty"] == []

    def test_single_flat_batch_matches_serial(self):
        groups = [(("g", i), _specs(4)) for i in range(3)]
        serial = SerialRunner().run_grouped(groups)
        parallel = ProcessPoolRunner(workers=2, chunksize=1).run_grouped(
            groups
        )
        assert serial == parallel

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            SerialRunner().run_grouped([("a", _specs(1)), ("a", _specs(1))])


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_default_is_serial(self, monkeypatch, pinned_backend):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert isinstance(make_runner(), SerialRunner)

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_env_zero_rejected_everywhere(self, monkeypatch):
        # Regression for the uniform-validation contract: an
        # env-supplied 0 must raise on EVERY construction path, not
        # just through the resolvers — including a directly-built
        # pool that previously never consulted the variable.
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_workers()
        with pytest.raises(ValueError):
            make_runner()
        with pytest.raises(ValueError):
            ProcessPoolRunner()

    def test_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_env_float_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2.5")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_argument_float_rejected(self):
        # The uniform contract covers arguments too: a float must
        # raise at the call site, not defer the crash to the pool.
        with pytest.raises(ValueError):
            resolve_workers(2.5)
        with pytest.raises(ValueError):
            ProcessPoolRunner(workers=2.5)
        with pytest.raises(ValueError):
            resolve_chunksize(3.0)
        with pytest.raises(ValueError):
            resolve_workers(True)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_make_runner_parallel(self, pinned_backend):
        runner = make_runner(3)
        assert isinstance(runner, ProcessPoolRunner)
        assert runner.workers == 3


class TestChunksizeResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "7")
        assert resolve_chunksize(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "5")
        assert resolve_chunksize() == 5

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNKSIZE", raising=False)
        assert resolve_chunksize() is None

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "lots")
        with pytest.raises(ValueError):
            resolve_chunksize()

    def test_nonpositive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "0")
        with pytest.raises(ValueError):
            resolve_chunksize()
        with pytest.raises(ValueError):
            resolve_chunksize(-3)

    def test_env_zero_rejected_by_direct_construction(self, monkeypatch):
        # Regression: ProcessPoolRunner(chunksize=None) used to ignore
        # $REPRO_CHUNKSIZE entirely, silently accepting an invalid 0
        # in the environment; it now resolves (and validates) it.
        monkeypatch.setenv("REPRO_CHUNKSIZE", "0")
        with pytest.raises(ValueError):
            ProcessPoolRunner(workers=2)

    def test_env_reaches_direct_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "5")
        assert ProcessPoolRunner(workers=2).chunksize == 5
        assert ProcessPoolRunner(workers=2, chunksize=7).chunksize == 7

    def test_make_runner_threads_chunksize(self, monkeypatch, pinned_backend):
        monkeypatch.delenv("REPRO_CHUNKSIZE", raising=False)
        assert make_runner(3, 9).chunksize == 9
        monkeypatch.setenv("REPRO_CHUNKSIZE", "4")
        assert make_runner(3).chunksize == 4
        assert make_runner(3, 9).chunksize == 9  # argument beats env

    def test_serial_runner_ignores_chunksize(self, monkeypatch, pinned_backend):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "4")
        assert isinstance(make_runner(1), SerialRunner)


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"auto", "serial", "process", "cluster"} <= set(
            available_backends()
        )

    def test_explicit_backend_beats_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert isinstance(make_runner(backend="serial"), SerialRunner)

    def test_process_backend_even_for_one_worker(self, pinned_backend):
        runner = make_runner(1, backend="process")
        assert isinstance(runner, ProcessPoolRunner)
        assert runner.workers == 1

    def test_cluster_backend_constructs_lazily(self, monkeypatch):
        # Construction must not connect or spawn anything yet.
        monkeypatch.delenv("REPRO_CLUSTER_NODES", raising=False)
        runner = make_runner(2, backend="cluster")
        assert isinstance(runner, ClusterRunner)
        assert runner.workers == 2
        assert runner._nodes is None

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert isinstance(make_runner(1), ProcessPoolRunner)
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert isinstance(make_runner(5), SerialRunner)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert isinstance(make_runner(1, backend="auto"), SerialRunner)

    def test_unknown_backend_rejected_with_listing(self, pinned_backend):
        with pytest.raises(ValueError, match="serial"):
            resolve_backend("warp-drive")
        with pytest.raises(ValueError):
            make_runner(backend="warp-drive")

    def test_env_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError):
            make_runner()

    def test_backend_name_normalised(self, pinned_backend):
        assert resolve_backend(" Serial ") == "serial"

    def test_serial_backend_still_validates_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            make_runner(backend="serial")

    def test_register_conflict_and_replace(self):
        try:
            with pytest.raises(ValueError):
                register_backend("serial", lambda **kw: SerialRunner())
            register_backend(
                "serial", lambda **kw: SerialRunner(), replace=True
            )
            assert isinstance(make_runner(backend="serial"), SerialRunner)
        finally:
            from repro.runtime.backends import _serial_factory

            register_backend("serial", _serial_factory, replace=True)

    def test_custom_backend_round_trip(self):
        class _Custom(SerialRunner):
            pass

        try:
            register_backend("custom-x", lambda **kw: _Custom())
            assert "custom-x" in available_backends()
            assert isinstance(make_runner(backend="custom-x"), _Custom)
        finally:
            unregister_backend("custom-x")
        with pytest.raises(ValueError):
            resolve_backend("custom-x")

    @pytest.mark.parametrize("name", ["", "Bad Name", "UPPER", "1two", None])
    def test_invalid_names_rejected(self, name):
        with pytest.raises((ValueError, TypeError)):
            register_backend(name, lambda **kw: SerialRunner())
