"""Fault injection for the cluster executor.

These tests run self-managed clusters (the runner spawns its own
localhost node processes) so killing nodes cannot disturb the
session-shared nodes of the conformance suite.  Faults are injected
from inside trials — :func:`repro.runtime.testing.exit_hard` kills the
node that executes it, :func:`~repro.runtime.testing.exit_once_then`
kills exactly one node cluster-wide and then behaves — which is how a
crashed or OOM-killed node looks to the coordinator: a dead socket
mid-batch.
"""

import socket
import threading

import pytest

from repro.runtime import (
    ClusterRunner,
    SerialRunner,
    TrialExecutionError,
    TrialSpec,
)
from repro.runtime import testing as kit
from repro.runtime.cluster import (
    NODES_ENV,
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
)
from repro.runtime.trial import TrialResult


@pytest.fixture(autouse=True)
def _self_managed_only(monkeypatch):
    monkeypatch.delenv(NODES_ENV, raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_CHUNKSIZE", raising=False)


def test_node_death_mid_batch_completes_on_survivor(tmp_path):
    # One node dies executing the killer spec; its outstanding chunk is
    # requeued to the surviving node and the batch finishes with
    # results identical to serial execution of the same (pure) trials.
    latch = tmp_path / "latch"
    seeded = kit.seeded_specs(8, label="fault")
    killer = TrialSpec(
        key=("kill",), fn=kit.exit_once_then, args=(7.5, str(latch))
    )
    batch = seeded[:4] + [killer] + seeded[4:]
    latch.touch()  # serial reference: the pure, post-fault behaviour
    expected = SerialRunner().run(batch)
    latch.unlink()
    with ClusterRunner(workers=2, chunksize=1, retries=2) as runner:
        assert runner.run(batch) == expected


def test_workload_batch_survives_node_death(tmp_path):
    # Same requeue, but with a shared payload in play: the surviving
    # node must already have (or be reshipped) the workload for the
    # requeued chunk.
    latch = tmp_path / "latch"
    workload = kit.make_workload("fault-payload")
    specs = kit.workload_specs(workload, 8)
    killer = TrialSpec(
        key=("kill",), fn=kit.exit_once_then, args=(1.0, str(latch))
    )
    batch = specs[:3] + [killer] + specs[3:]
    latch.touch()
    expected = SerialRunner().run(batch)
    latch.unlink()
    with ClusterRunner(workers=2, chunksize=1, retries=2) as runner:
        assert runner.run(batch) == expected


def test_retry_cap_exhaustion_names_the_lost_chunk():
    batch = kit.square_specs(6) + [
        TrialSpec(key=("die", 0), fn=kit.exit_hard)
    ]
    with ClusterRunner(workers=2, chunksize=1, retries=0) as runner:
        with pytest.raises(TrialExecutionError) as err:
            runner.run(batch)
    message = str(err.value)
    assert "retry cap" in message
    assert "die" in message  # the lost chunk is named by its keys


def test_all_nodes_lost_reports_unfinished_chunks():
    # A generous retry cap, but the killer takes out every node it
    # reaches: the run must fail naming what never finished rather
    # than hang waiting for nodes that no longer exist.
    batch = kit.square_specs(4) + [TrialSpec(key=("die",), fn=kit.exit_hard)]
    with ClusterRunner(workers=2, chunksize=1, retries=10) as runner:
        with pytest.raises(TrialExecutionError, match="nodes lost"):
            runner.run(batch)


def test_partial_node_loss_heals_before_next_batch(tmp_path):
    # One node dies mid-batch; the batch completes on the survivor.
    # The *next* batch must not run on a permanently shrunken cluster:
    # the dead self-managed node is respawned first.
    latch = tmp_path / "latch"
    killer = TrialSpec(
        key=("kill",), fn=kit.exit_once_then, args=(0.0, str(latch))
    )
    with ClusterRunner(workers=2, chunksize=1, retries=2) as runner:
        runner.run(kit.square_specs(6) + [killer])
        assert sum(node.alive for node in runner._nodes) == 1
        assert runner.run_values(kit.square_specs(6)) == [
            i * i for i in range(6)
        ]
        assert sum(node.alive for node in runner._nodes) == 2


def test_unshippable_chunk_fails_instead_of_hanging():
    # A spec whose arguments cannot pickle is the chunk's fault, not a
    # node fault: the run must raise promptly (naming the chunk), not
    # requeue it around the cluster or strand the coordinator.
    bad = TrialSpec(key=("unpicklable",), fn=kit.square, args=(lambda: 1,))
    with ClusterRunner(workers=2, chunksize=1) as runner:
        with pytest.raises(TrialExecutionError, match="could not be shipped"):
            runner.run(kit.square_specs(6) + [bad])


def test_unpicklable_result_surfaces_the_real_cause():
    # A trial whose *result* will not pickle executes fine on the node
    # but its reply cannot be framed; the node must report that as a
    # trial failure naming the serialisation error — not die and make
    # the coordinator misdiagnose a lost node.
    bad = TrialSpec(key=("badvalue",), fn=kit.unpicklable_value, args=(0,))
    with ClusterRunner(workers=2, chunksize=1, retries=0) as runner:
        with pytest.raises(TrialExecutionError) as err:
            runner.run(kit.square_specs(6) + [bad])
    assert "could not be serialised" in err.value.detail
    assert "Pickl" in err.value.detail or "pickle" in err.value.detail


def test_runner_recovers_after_failed_run():
    # A run that lost its nodes discards them; the next run respawns a
    # fresh self-managed cluster and succeeds.
    runner = ClusterRunner(workers=2, chunksize=1, retries=0)
    with runner:
        with pytest.raises(TrialExecutionError):
            runner.run(
                kit.square_specs(4)
                + [TrialSpec(key=("die",), fn=kit.exit_hard)]
            )
        assert runner.run_values(kit.square_specs(6)) == [
            i * i for i in range(6)
        ]


def test_close_is_idempotent_and_runner_reusable():
    runner = ClusterRunner(workers=2, chunksize=1)
    assert runner.run_values(kit.square_specs(6)) == [i * i for i in range(6)]
    runner.close()
    assert runner._nodes is None
    runner.close()  # no-op
    # a closed runner is still usable; it just pays start-up again
    assert runner.run_values(kit.square_specs(6)) == [i * i for i in range(6)]
    runner.close()


def _serve_rogue(server: socket.socket) -> None:
    """A fake in-process node that answers every chunk one result short."""
    try:
        conn, _ = server.accept()
    except OSError:
        return
    stream = MessageStream(conn)
    try:
        while True:
            try:
                kind, body = stream.recv()
            except (ConnectionError, ProtocolError, OSError):
                return
            if kind == "hello":
                stream.send(
                    ("welcome", {"version": PROTOCOL_VERSION, "pid": 0})
                )
            elif kind == "chunk":
                fabricated = [
                    TrialResult(key=spec.key, value=0)
                    for spec in body["specs"]
                ][:-1]
                stream.send(
                    ("done", {"chunk": body["chunk"], "results": fabricated})
                )
            else:
                return
    finally:
        stream.close()


def test_short_done_reply_is_a_protocol_failure():
    # A node that returns fewer results than the chunk holds is not
    # speaking the protocol; the run must fail cleanly (via the
    # retry-cap path, since the rogue answer discredits the node), not
    # report a completed batch with holes or overwrite neighbours.
    servers = []
    threads = []
    addresses = []
    for _ in range(2):
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen()
        servers.append(server)
        addresses.append(f"127.0.0.1:{server.getsockname()[1]}")
        thread = threading.Thread(
            target=_serve_rogue, args=(server,), daemon=True
        )
        thread.start()
        threads.append(thread)
    try:
        runner = ClusterRunner(nodes=addresses, chunksize=2, retries=0)
        with runner:
            with pytest.raises(TrialExecutionError, match="retry cap"):
                runner.run(kit.square_specs(8))
    finally:
        for server in servers:
            server.close()


class TestClusterConfig:
    def test_default_node_count_is_two(self):
        assert ClusterRunner().workers == 2

    def test_workers_env_names_the_node_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ClusterRunner().workers == 3

    def test_explicit_nodes_win_over_workers(self):
        runner = ClusterRunner(nodes="h1:7000,h2:7000,h3:7000", workers=9)
        assert runner.workers == 3

    def test_nodes_env_consulted(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "hostA:7001,hostB:7002")
        runner = ClusterRunner()
        assert runner.workers == 2
        assert runner._addresses == (("hostA", 7001), ("hostB", 7002))

    def test_malformed_nodes_env_rejected(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "hostA:7001,hostB")
        with pytest.raises(ValueError):
            ClusterRunner()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ClusterRunner(retries=-1)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ClusterRunner(workers=0)

    def test_chunksize_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "0")
        with pytest.raises(ValueError):
            ClusterRunner(workers=2)

    def test_connection_refused_is_a_clean_error(self):
        # Nothing listens on these ports; construction is lazy, the
        # first parallel batch surfaces the connection failure.
        runner = ClusterRunner(
            nodes="127.0.0.1:1,127.0.0.1:2",
            chunksize=1,
            connect_timeout=0.5,
        )
        with pytest.raises(OSError):
            runner.run(kit.square_specs(8))
