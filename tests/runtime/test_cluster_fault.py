"""Fault injection for the cluster executor.

These tests run self-managed clusters (the runner spawns its own
localhost node processes) so killing nodes cannot disturb the
session-shared nodes of the conformance suite.  Faults are injected
from inside trials, at both failure domains the node-side pool
creates:

* **pool-worker faults** — :func:`repro.runtime.testing.exit_hard` /
  :func:`~repro.runtime.testing.exit_once_then` kill the pool worker
  executing the trial.  The *node survives*: it rebuilds its pool and
  answers ``lost``, and the coordinator requeues the chunk through the
  retry path without dropping the connection.
* **node faults** — :func:`~repro.runtime.testing.kill_node` /
  :func:`~repro.runtime.testing.kill_node_once` kill the whole node
  process (a dead socket mid-batch, the pre-pool failure shape), and
  :func:`~repro.runtime.testing.wedge_node_once` SIGSTOPs it with the
  socket healthy — the hang only heartbeat supervision can catch.

Recovery must stay invisible either way: trials are pure, so every
completed run's results are byte-identical to ``SerialRunner``'s.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.runtime import (
    ClusterRunner,
    SerialRunner,
    TrialExecutionError,
    TrialSpec,
)
from repro.runtime import testing as kit
from repro.runtime.cluster import (
    HEARTBEAT_ENV,
    NODE_CACHE_ENV,
    NODE_WORKERS_ENV,
    NODES_ENV,
    PIPELINE_ENV,
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    _read_ready_line,
    resolve_heartbeat,
    spawn_local_nodes,
)
from repro.runtime.trial import TrialResult


@pytest.fixture(autouse=True)
def _self_managed_only(monkeypatch):
    for var in (
        NODES_ENV,
        "REPRO_WORKERS",
        "REPRO_CHUNKSIZE",
        NODE_WORKERS_ENV,
        PIPELINE_ENV,
        HEARTBEAT_ENV,
        NODE_CACHE_ENV,
    ):
        monkeypatch.delenv(var, raising=False)


# -- node-death faults (dead socket mid-batch) -----------------------------


def test_node_death_mid_batch_completes_on_survivor(tmp_path):
    # One node dies executing the killer spec; its outstanding chunks
    # are requeued to the surviving node and the batch finishes with
    # results identical to serial execution of the same (pure) trials.
    latch = tmp_path / "latch"
    seeded = kit.seeded_specs(8, label="fault")
    killer = TrialSpec(
        key=("kill",), fn=kit.kill_node_once, args=(7.5, str(latch))
    )
    batch = seeded[:4] + [killer] + seeded[4:]
    latch.touch()  # serial reference: the pure, post-fault behaviour
    expected = SerialRunner().run(batch)
    latch.unlink()
    with ClusterRunner(workers=2, chunksize=1, retries=3) as runner:
        assert runner.run(batch) == expected


def test_workload_batch_survives_node_death(tmp_path):
    # Same requeue, but with a shared payload in play: the surviving
    # node must already have (or be reshipped) the workload for the
    # requeued chunk.
    latch = tmp_path / "latch"
    workload = kit.make_workload("fault-payload")
    specs = kit.workload_specs(workload, 8)
    killer = TrialSpec(
        key=("kill",), fn=kit.kill_node_once, args=(1.0, str(latch))
    )
    batch = specs[:3] + [killer] + specs[3:]
    latch.touch()
    expected = SerialRunner().run(batch)
    latch.unlink()
    with ClusterRunner(workers=2, chunksize=1, retries=3) as runner:
        assert runner.run(batch) == expected


def test_all_nodes_lost_reports_unfinished_chunks():
    # A generous retry cap, but the killer takes out every node it
    # reaches: the run must fail naming what never finished rather
    # than hang waiting for nodes that no longer exist.
    batch = kit.square_specs(4) + [TrialSpec(key=("die",), fn=kit.kill_node)]
    with ClusterRunner(workers=2, chunksize=1, retries=10) as runner:
        with pytest.raises(TrialExecutionError, match="nodes lost"):
            runner.run(batch)


def test_partial_node_loss_heals_before_next_batch(tmp_path):
    # One node dies mid-batch; the batch completes on the survivor.
    # The *next* batch must not run on a permanently shrunken cluster:
    # the dead self-managed node is respawned first.
    latch = tmp_path / "latch"
    killer = TrialSpec(
        key=("kill",), fn=kit.kill_node_once, args=(0.0, str(latch))
    )
    with ClusterRunner(workers=2, chunksize=1, retries=3) as runner:
        runner.run(kit.square_specs(6) + [killer])
        assert sum(node.alive for node in runner._nodes) == 1
        assert runner.run_values(kit.square_specs(6)) == [
            i * i for i in range(6)
        ]
        assert sum(node.alive for node in runner._nodes) == 2


def test_runner_recovers_after_failed_run():
    # A run that lost its nodes discards them; the next run respawns a
    # fresh self-managed cluster and succeeds.
    runner = ClusterRunner(workers=2, chunksize=1, retries=0)
    with runner:
        with pytest.raises(TrialExecutionError):
            runner.run(
                kit.square_specs(4)
                + [TrialSpec(key=("die",), fn=kit.kill_node)]
            )
        assert runner.run_values(kit.square_specs(6)) == [
            i * i for i in range(6)
        ]


# -- pool-worker faults (the node itself survives) -------------------------


def test_pool_worker_crash_requeues_without_losing_the_node(tmp_path):
    # The killer takes out the pool worker executing it, not the node:
    # the node rebuilds its pool, answers `lost`, and the coordinator
    # requeues over the *same* connection — every node stays alive and
    # the results are byte-identical to serial.
    latch = tmp_path / "latch"
    seeded = kit.seeded_specs(8, label="worker-crash")
    killer = TrialSpec(
        key=("kill",), fn=kit.exit_once_then, args=(7.5, str(latch))
    )
    batch = seeded[:4] + [killer] + seeded[4:]
    latch.touch()
    expected = SerialRunner().run(batch)
    latch.unlink()
    with ClusterRunner(workers=2, chunksize=1, retries=3) as runner:
        assert runner.run(batch) == expected
        assert all(node.alive for node in runner._nodes)


def test_retry_cap_exhaustion_names_the_lost_chunk():
    # A chunk that breaks the pool of every node that tries it burns
    # one retry per `lost` reply; exhaustion names the chunk.  Depth
    # and pool are pinned to 1 so no innocent neighbour is in flight
    # when the pool breaks.
    batch = kit.square_specs(6) + [
        TrialSpec(key=("die", 0), fn=kit.exit_hard)
    ]
    with ClusterRunner(
        workers=2,
        chunksize=1,
        retries=0,
        pipeline_depth=1,
        node_workers=1,
    ) as runner:
        with pytest.raises(TrialExecutionError) as err:
            runner.run(batch)
    message = str(err.value)
    assert "retry cap" in message
    assert "die" in message  # the lost chunk is named by its keys


def test_unshippable_chunk_fails_instead_of_hanging():
    # A spec whose arguments cannot pickle is the chunk's fault, not a
    # node fault: the run must raise promptly (naming the chunk), not
    # requeue it around the cluster or strand the coordinator.
    bad = TrialSpec(key=("unpicklable",), fn=kit.square, args=(lambda: 1,))
    with ClusterRunner(workers=2, chunksize=1) as runner:
        with pytest.raises(TrialExecutionError, match="could not be shipped"):
            runner.run(kit.square_specs(6) + [bad])


def test_unpicklable_result_surfaces_the_real_cause():
    # A trial whose *result* will not pickle executes fine in the pool
    # worker but cannot ship back; the failure must surface as a trial
    # error naming the serialisation problem — not kill the node or be
    # misdiagnosed as a lost chunk.
    bad = TrialSpec(key=("badvalue",), fn=kit.unpicklable_value, args=(0,))
    with ClusterRunner(workers=2, chunksize=1, retries=0) as runner:
        with pytest.raises(TrialExecutionError) as err:
            runner.run(kit.square_specs(6) + [bad])
        assert "pickle" in err.value.detail.lower()
        # The nodes themselves shrugged the failure off.
        assert runner.run_values(kit.square_specs(4)) == [0, 1, 4, 9]


# -- wedged nodes (heartbeat supervision) ----------------------------------


def test_wedged_node_detected_and_chunks_requeued(tmp_path):
    # The wedge SIGSTOPs one node mid-batch: its socket stays open, so
    # only the heartbeat deadline can catch it.  The coordinator must
    # declare the node lost, requeue its in-flight chunks on the
    # survivor, and still produce serial-identical results.
    latch = tmp_path / "latch"
    seeded = kit.seeded_specs(8, label="wedge")
    wedger = TrialSpec(
        key=("wedge",), fn=kit.wedge_node_once, args=(3.25, str(latch))
    )
    batch = seeded[:4] + [wedger] + seeded[4:]
    latch.touch()
    expected = SerialRunner().run(batch)
    latch.unlink()
    with ClusterRunner(
        workers=2, chunksize=1, retries=3, heartbeat=1.5
    ) as runner:
        start = time.monotonic()
        assert runner.run(batch) == expected
        elapsed = time.monotonic() - start
        # Detection is bounded by the deadline (plus scheduling slack),
        # not by some multi-minute TCP timeout.
        assert elapsed < 30
        assert sum(node.alive for node in runner._nodes) == 1


def test_wedged_node_with_workloads_still_byte_identical(tmp_path):
    # Same wedge with shared payloads in play: requeued chunks must
    # re-resolve their workloads on the survivor.
    latch = tmp_path / "latch"
    workload = kit.make_workload("wedge-payload")
    specs = kit.workload_specs(workload, 8)
    wedger = TrialSpec(
        key=("wedge",), fn=kit.wedge_node_once, args=(0.5, str(latch))
    )
    batch = specs[:3] + [wedger] + specs[3:]
    latch.touch()
    expected = SerialRunner().run(batch)
    latch.unlink()
    with ClusterRunner(
        workers=2, chunksize=1, retries=3, heartbeat=1.5
    ) as runner:
        assert runner.run(batch) == expected


def _serve_fake(server: socket.socket, on_chunk) -> None:
    """A one-connection fake in-process node: prompt handshake and
    pongs, with the ``chunk`` reply delegated to ``on_chunk(body)`` —
    the only part the fault scenarios differ in."""
    try:
        conn, _ = server.accept()
    except OSError:
        return
    stream = MessageStream(conn)
    try:
        while True:
            try:
                kind, body = stream.recv()
            except (ConnectionError, ProtocolError, OSError):
                return
            if kind == "hello":
                stream.send(
                    ("welcome", {"version": PROTOCOL_VERSION, "pid": 0})
                )
            elif kind == "ping":
                stream.send(("pong", body))
            elif kind == "chunk":
                stream.send(on_chunk(body))
            else:
                return
    finally:
        stream.close()


def _start_fake_node(on_chunk):
    """Bind an ephemeral port and serve one connection on a daemon
    thread; returns ``(listening socket, "host:port")``."""
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen()
    threading.Thread(
        target=_serve_fake, args=(server, on_chunk), daemon=True
    ).start()
    return server, f"127.0.0.1:{server.getsockname()[1]}"


def _done_reply(body):
    return (
        "done",
        {
            "chunk": body["chunk"],
            "results": [spec.execute() for spec in body["specs"]],
        },
    )


def test_slow_shipment_does_not_trip_heartbeat(monkeypatch):
    # Regression: a shipment that itself outlasts the heartbeat
    # deadline must not condemn a healthy node.  Silence only counts
    # from the moment the coordinator resumed listening — not from the
    # last frame received before a long blocking send, during which no
    # ping was outstanding and the node owed nothing.  The fake node
    # replies late enough that the first post-ship poll sees a quiet
    # socket, which the stale basis would misread as a wedged node.
    def slow_done(body):
        time.sleep(2.75)  # pongs queue behind this too
        return _done_reply(body)

    server, address = _start_fake_node(slow_done)

    real_ship = ClusterRunner._ship_task

    def slow_ship(self, node, task, payload_table):
        real_ship(self, node, task, payload_table)
        time.sleep(2.25)  # > the 1.5s heartbeat deadline below

    monkeypatch.setattr(ClusterRunner, "_ship_task", slow_ship)
    try:
        with ClusterRunner(
            nodes=[address], chunksize=4, retries=0, heartbeat=1.5
        ) as runner:
            assert runner.run_values(kit.square_specs(4)) == [0, 1, 4, 9]
    finally:
        server.close()


def test_heartbeat_zero_disables_supervision():
    # heartbeat=0 must be accepted (the old no-supervision behaviour)
    # and a healthy cluster must run normally under it.
    with ClusterRunner(workers=2, chunksize=1, heartbeat=0) as runner:
        assert runner.heartbeat == 0.0
        assert runner.run_values(kit.square_specs(6)) == [
            i * i for i in range(6)
        ]


# -- node-side pool + pipelining throughput --------------------------------


def test_node_pool_overlaps_blocking_trials():
    # One node, pool of 4, pipeline deep enough to keep it fed: eight
    # 0.3s blocking trials must overlap (<2.4s serial floor), which
    # fails if either the node pool or pipelining stops working.
    specs = [
        TrialSpec(key=("nap", i), fn=kit.sleep_return, args=(0.3, i))
        for i in range(8)
    ]
    with kit.local_nodes(1, node_workers=4) as addresses:
        with ClusterRunner(
            nodes=addresses, chunksize=1, pipeline_depth=8
        ) as runner:
            start = time.monotonic()
            values = runner.run_values(specs)
            elapsed = time.monotonic() - start
    assert values == list(range(8))
    assert elapsed < 1.8, f"no overlap: {elapsed:.2f}s for 8x0.3s naps"


def test_pipelining_keeps_flat_node_busy():
    # Even a pool-of-1 node benefits from depth > 1: the next chunk is
    # already on the node when the previous finishes, so a batch of
    # quick trials is not dominated by ship/collect round-trips.
    # (Correctness, not timing: deep pipelines must not reorder.)
    specs = kit.seeded_specs(12, label="deep")
    with kit.local_nodes(1, node_workers=1) as addresses:
        with ClusterRunner(
            nodes=addresses, chunksize=1, pipeline_depth=6
        ) as runner:
            assert runner.run(specs) == SerialRunner().run(specs)


# -- node-side workload-cache eviction -------------------------------------


def test_evicted_workload_is_reshipped_transparently():
    # cache-cap 1: shipping workload B evicts A node-side, while the
    # coordinator's ledger still says A was shipped.  Running A again
    # must recover via the miss path (re-ship, amended ledger), not
    # fail as non-convergent — and results stay serial-identical.
    first = kit.make_workload("evict-a")
    second = kit.make_workload("evict-b")
    with kit.local_nodes(1, cache_cap=1) as addresses:
        with ClusterRunner(nodes=addresses, chunksize=1) as runner:
            for workload, tag in (
                (first, "a1"),
                (second, "b1"),
                (first, "a2"),
                (second, "b2"),
            ):
                specs = kit.workload_specs(workload, 4, tag=tag)
                assert runner.run(specs) == SerialRunner().run(specs)


# -- shutdown drain --------------------------------------------------------


def _handshake(address):
    host, port = address.split(":")
    sock = socket.create_connection((host, int(port)), timeout=10)
    stream = MessageStream(sock)
    stream.send(("hello", {"version": PROTOCOL_VERSION}))
    kind, _body = stream.recv()
    assert kind == "welcome"
    return stream


def test_shutdown_drains_inflight_chunks_before_exit():
    # Connection 1 has a slow chunk executing when connection 2 asks
    # for shutdown: the node must finish (and deliver) the chunk in
    # hand, refuse new chunks with `lost`, and only then exit.
    nodes = spawn_local_nodes(1, node_workers=1)
    node = nodes[0]
    try:
        work = _handshake(node.address)
        slow = [
            TrialSpec(key=("slow",), fn=kit.sleep_return, args=(1.2, "ok"))
        ]
        work.send(("chunk", {"chunk": 0, "specs": slow, "payloads": {}}))
        time.sleep(0.3)  # let the chunk reach the pool
        control = _handshake(node.address)
        control.send(("shutdown", {}))
        kind, _body = control.recv(timeout=10)
        assert kind == "bye"
        time.sleep(0.2)  # let the stop flag settle
        # New work is refused while draining...
        late = [TrialSpec(key=("late",), fn=kit.square, args=(3,))]
        work.send(("chunk", {"chunk": 1, "specs": late, "payloads": {}}))
        replies = {}
        while len(replies) < 2:
            message = work.recv(timeout=15)
            assert message is not None, "node went silent while draining"
            kind, body = message
            replies[body["chunk"]] = (kind, body)
        # ...but the chunk in hand completed and shipped its results.
        kind, body = replies[0]
        assert kind == "done"
        assert body["results"] == [TrialResult(key=("slow",), value="ok")]
        kind, body = replies[1]
        assert kind == "lost"
        assert "drain" in body["reason"]
        assert node.proc.wait(timeout=15) == 0
    finally:
        for spawned in nodes:
            spawned.terminate()


def test_draining_node_does_not_burn_retries():
    # A node mid-graceful-shutdown bounces chunks back in milliseconds.
    # Those refusals are not chunk failures: even with retries=0 the
    # batch must migrate to the healthy node and complete, instead of
    # failing because the draining node replied `lost` faster than the
    # survivor could work through the queue.  The retired connection
    # must also be CLOSED, so the next batch of a persistent runner
    # routes the address through the heal path rather than shipping
    # chunks to the corpse and burning retries one batch later.
    def drain_refusal(body):
        return (
            "lost",
            {
                "chunk": body["chunk"],
                "reason": "node draining for shutdown",
                "draining": True,
            },
        )

    server, drain_address = _start_fake_node(drain_refusal)
    try:
        with kit.local_nodes(1) as addresses:
            with ClusterRunner(
                nodes=[*addresses, drain_address],
                chunksize=1,
                retries=0,
                connect_timeout=1.0,
            ) as runner:
                assert runner.run_values(kit.square_specs(8)) == [
                    i * i for i in range(8)
                ]
                drained = [
                    node
                    for node in runner._nodes
                    if node.label() == drain_address
                ]
                assert drained and not drained[0].alive
                # Second batch: the gone node heals-or-backs-off; it
                # must not be shipped to over the retired connection.
                assert runner.run_values(kit.square_specs(6)) == [
                    i * i for i in range(6)
                ]
    finally:
        server.close()


def test_draining_node_finishing_the_last_chunk_is_still_retired():
    # Ordering regression: the draining node holds a chunk in hand and
    # that chunk is the batch's LAST completion, so state.finished is
    # set on the very iteration that empties inflight.  The retire
    # branch must still run (ahead of the finished early-return), or
    # the pump exits with the connection open and alive=True — and the
    # next batch ships to the corpse.
    calls = []

    def drain_then_slow_done(body):
        calls.append(body["chunk"])
        if len(calls) == 1:
            return (
                "lost",
                {
                    "chunk": body["chunk"],
                    "reason": "node draining for shutdown",
                    "draining": True,
                },
            )
        time.sleep(0.8)  # in-hand chunk finishes well after the
        return _done_reply(body)  # healthy node clears the queue

    server, drain_address = _start_fake_node(drain_then_slow_done)
    try:
        with kit.local_nodes(1) as addresses:
            with ClusterRunner(
                nodes=[*addresses, drain_address],
                chunksize=1,
                retries=0,
                connect_timeout=1.0,
            ) as runner:
                assert runner.run_values(kit.square_specs(8)) == [
                    i * i for i in range(8)
                ]
                drained = [
                    node
                    for node in runner._nodes
                    if node.label() == drain_address
                ]
                assert drained and not drained[0].alive
                assert runner.run_values(kit.square_specs(4)) == [
                    0, 1, 4, 9,
                ]
    finally:
        server.close()


def test_close_lets_self_managed_nodes_exit_gracefully():
    # close() sends `shutdown` and must then let the node finish its
    # drain: the reap behind it may not SIGKILL the drain it just
    # asked for.  A gracefully-drained node exits 0; a kill would
    # leave -SIGKILL.
    runner = ClusterRunner(workers=2, chunksize=1)
    assert runner.run_values(kit.square_specs(4)) == [0, 1, 4, 9]
    procs = [local.proc for local in runner._local]
    runner.close()
    assert [proc.poll() for proc in procs] == [0, 0]


def test_sigterm_drains_inflight_chunks_before_exit():
    # SIGTERM — what LocalNode.terminate and init systems send — must
    # take the same drain path as the `shutdown` message: finish and
    # deliver the chunk in hand, then exit cleanly, not die mid-drain.
    nodes = spawn_local_nodes(1, node_workers=1)
    node = nodes[0]
    try:
        work = _handshake(node.address)
        slow = [
            TrialSpec(key=("slow",), fn=kit.sleep_return, args=(1.2, "ok"))
        ]
        work.send(("chunk", {"chunk": 0, "specs": slow, "payloads": {}}))
        time.sleep(0.3)  # let the chunk reach the pool
        node.proc.send_signal(signal.SIGTERM)
        message = work.recv(timeout=15)
        assert message is not None, "node dropped the chunk on SIGTERM"
        kind, body = message
        assert kind == "done"
        assert body["results"] == [TrialResult(key=("slow",), value="ok")]
        assert node.proc.wait(timeout=15) == 0
    finally:
        for spawned in nodes:
            spawned.terminate()


# -- spawn deadline --------------------------------------------------------


def test_spawn_hang_without_ready_line_is_reaped():
    # A "node" that prints output but never the READY line must not
    # hang the spawner forever: the deadline reaps it and the error
    # carries the captured output for diagnosis.
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-c",
            "print('warming up', flush=True); "
            "import time; time.sleep(600)",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    start = time.monotonic()
    with pytest.raises(RuntimeError, match="warming up"):
        _read_ready_line(proc, timeout=1.0)
    assert time.monotonic() - start < 10
    assert proc.poll() is not None  # reaped, not leaked


def test_spawn_stdout_eof_with_live_process_is_reaped():
    # A "node" that closes its stdout but stays alive must not hang
    # the spawner in an unbounded wait() on the EOF branch: the spawn
    # deadline reaps it.  (stderr must NOT share the stdout pipe here,
    # or the parent would never see EOF.)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-c",
            "import os, time; os.close(1); time.sleep(600)",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    start = time.monotonic()
    with pytest.raises(RuntimeError, match="stayed alive"):
        _read_ready_line(proc, timeout=1.0)
    assert time.monotonic() - start < 10
    assert proc.poll() is not None  # reaped, not leaked


def test_spawn_exit_before_ready_reports_output():
    proc = subprocess.Popen(
        [sys.executable, "-u", "-c", "print('boom', flush=True)"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    with pytest.raises(RuntimeError, match="exited before announcing"):
        _read_ready_line(proc, timeout=10.0)


# -- rogue node ------------------------------------------------------------


def test_short_done_reply_is_a_protocol_failure():
    # A node that returns fewer results than the chunk holds is not
    # speaking the protocol; the run must fail cleanly (via the
    # retry-cap path, since the rogue answer discredits the node), not
    # report a completed batch with holes or overwrite neighbours.
    def one_result_short(body):
        fabricated = [
            TrialResult(key=spec.key, value=0) for spec in body["specs"]
        ][:-1]
        return ("done", {"chunk": body["chunk"], "results": fabricated})

    servers = []
    addresses = []
    for _ in range(2):
        server, address = _start_fake_node(one_result_short)
        servers.append(server)
        addresses.append(address)
    try:
        runner = ClusterRunner(
            nodes=addresses, chunksize=2, retries=0, pipeline_depth=1
        )
        with runner:
            with pytest.raises(TrialExecutionError, match="retry cap"):
                runner.run(kit.square_specs(8))
    finally:
        for server in servers:
            server.close()


def test_close_is_idempotent_and_runner_reusable():
    runner = ClusterRunner(workers=2, chunksize=1)
    assert runner.run_values(kit.square_specs(6)) == [i * i for i in range(6)]
    runner.close()
    assert runner._nodes is None
    runner.close()  # no-op
    # a closed runner is still usable; it just pays start-up again
    assert runner.run_values(kit.square_specs(6)) == [i * i for i in range(6)]
    runner.close()


class TestClusterConfig:
    def test_default_node_count_is_two(self):
        assert ClusterRunner().workers == 2

    def test_workers_env_names_the_node_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ClusterRunner().workers == 3

    def test_explicit_nodes_win_over_workers(self):
        runner = ClusterRunner(nodes="h1:7000,h2:7000,h3:7000", workers=9)
        assert runner.workers == 3

    def test_nodes_env_consulted(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "hostA:7001,hostB:7002")
        runner = ClusterRunner()
        assert runner.workers == 2
        assert runner._addresses == (("hostA", 7001), ("hostB", 7002))

    def test_malformed_nodes_env_rejected(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "hostA:7001,hostB")
        with pytest.raises(ValueError):
            ClusterRunner()

    def test_duplicate_nodes_env_rejected(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "hostA:7001,hostA:7001")
        with pytest.raises(ValueError, match="duplicate"):
            ClusterRunner()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ClusterRunner(retries=-1)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ClusterRunner(workers=0)

    def test_chunksize_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKSIZE", "0")
        with pytest.raises(ValueError):
            ClusterRunner(workers=2)

    def test_pipeline_depth_env_consulted(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_ENV, "5")
        assert ClusterRunner().pipeline_depth == 5

    def test_pipeline_depth_env_validated(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_ENV, "0")
        with pytest.raises(ValueError):
            ClusterRunner()

    def test_zero_pipeline_depth_rejected(self):
        with pytest.raises(ValueError):
            ClusterRunner(pipeline_depth=0)

    def test_heartbeat_env_consulted(self, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_ENV, "2.5")
        assert ClusterRunner().heartbeat == 2.5

    def test_heartbeat_env_validated(self, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_ENV, "soon")
        with pytest.raises(ValueError):
            ClusterRunner()

    def test_negative_heartbeat_rejected(self):
        with pytest.raises(ValueError):
            ClusterRunner(heartbeat=-1.0)
        with pytest.raises(ValueError):
            resolve_heartbeat(float("nan"))

    def test_zero_node_workers_rejected(self):
        with pytest.raises(ValueError):
            ClusterRunner(node_workers=0)

    def test_default_heartbeat_and_depth(self):
        runner = ClusterRunner()
        assert runner.heartbeat == 10.0
        assert runner.pipeline_depth == 2

    def test_connection_refused_is_a_clean_error(self):
        # Nothing listens on these ports; construction is lazy, the
        # first parallel batch surfaces the connection failure.
        runner = ClusterRunner(
            nodes="127.0.0.1:1,127.0.0.1:2",
            chunksize=1,
            connect_timeout=0.5,
        )
        with pytest.raises(OSError):
            runner.run(kit.square_specs(8))


def test_wedge_kernel_cleanup_terminates_stopped_node(tmp_path):
    # Housekeeping for the wedge tests themselves: terminate() must be
    # able to reap a SIGSTOPped node (SIGCONT before the TERM/KILL
    # escalation), or every wedge test would leak a frozen process.
    nodes = spawn_local_nodes(1, node_workers=1)
    node = nodes[0]
    try:
        os.kill(node.proc.pid, signal.SIGSTOP)
    finally:
        start = time.monotonic()
        node.terminate()
        assert node.proc.poll() is not None
        assert time.monotonic() - start < 10
