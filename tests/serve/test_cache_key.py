"""Property tests for the result-cache key recipe (repro.serve.digest).

The digest must be *invariant* to representation accidents — sweep-point
order, override-dict iteration order, kwargs insertion order — and
*sensitive* to every component a result actually depends on: workload
content, trial count, per-trial seeds, spec keys, scale, master seed,
and the code version.  A key that conflates two different computations
serves wrong results; a key that distinguishes two equal ones only
wastes recomputation — so sensitivity tests are the safety-critical
half.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import TrialSpec, Workload
from repro.serve.digest import job_key, point_digest, sweep_digest

VERSION = "test-code-version"


# Module-level kernels so workloads content-address by qualified name.
def _kernel(payload, trial, seed):
    return (payload, trial, seed)


def _other_kernel(payload, trial, seed):
    return (payload, trial, seed, "other")


def _specs(payload="ctx", trials=4, seed0=100, kernel=_kernel, label="pt"):
    """One sweep point: a workload + per-trial (trial, seed) tails."""
    workload = Workload(kernel, args=(payload,))
    return [
        TrialSpec(
            key=(label, t), workload=workload, args=(t, seed0 + t)
        )
        for t in range(trials)
    ]


_override_values = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.ascii_lowercase, max_size=6),
    st.lists(st.integers(min_value=0, max_value=9), max_size=4),
)
_overrides = st.dictionaries(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    _override_values,
    max_size=5,
)


class TestOrderInvariance:
    @given(_overrides)
    def test_job_key_ignores_override_insertion_order(self, overrides):
        reversed_build = dict(reversed(list(overrides.items())))
        assert job_key(
            "E1", "tiny", 0, overrides, version=VERSION
        ) == job_key("E1", "tiny", 0, reversed_build, version=VERSION)

    @given(st.permutations(list(range(6))))
    def test_sweep_digest_ignores_point_order(self, order):
        digests = [
            point_digest(_specs(payload=f"p{i}"), version=VERSION)
            for i in range(6)
        ]
        shuffled = [digests[i] for i in order]
        assert sweep_digest(shuffled) == sweep_digest(digests)

    def test_sweep_digest_keeps_duplicates(self):
        d = point_digest(_specs(), version=VERSION)
        assert sweep_digest([d]) != sweep_digest([d, d])

    def test_point_digest_is_order_sensitive_within_a_point(self):
        # Trials are ordered data: [t0, t1] is not [t1, t0].
        specs = _specs(trials=2)
        assert point_digest(specs, version=VERSION) != point_digest(
            list(reversed(specs)), version=VERSION
        )

    def test_kwargs_insertion_order_is_not_content(self):
        workload = Workload(_kernel, args=("ctx",))
        a = TrialSpec(
            key=("pt", 0),
            workload=workload,
            kwargs={"x": 1, "y": 2},
        )
        b = TrialSpec(
            key=("pt", 0),
            workload=workload,
            kwargs={"y": 2, "x": 1},
        )
        assert point_digest([a], version=VERSION) == point_digest(
            [b], version=VERSION
        )

    def test_deterministic_across_calls(self):
        assert point_digest(_specs(), version=VERSION) == point_digest(
            _specs(), version=VERSION
        )


class TestSensitivity:
    def test_workload_content(self):
        base = point_digest(_specs(payload="a"), version=VERSION)
        assert base != point_digest(_specs(payload="b"), version=VERSION)
        assert base != point_digest(
            _specs(kernel=_other_kernel), version=VERSION
        )

    def test_trial_count(self):
        assert point_digest(_specs(trials=4), version=VERSION) != (
            point_digest(_specs(trials=5), version=VERSION)
        )

    def test_per_trial_seeds(self):
        assert point_digest(_specs(seed0=100), version=VERSION) != (
            point_digest(_specs(seed0=101), version=VERSION)
        )

    def test_spec_keys(self):
        assert point_digest(_specs(label="pt"), version=VERSION) != (
            point_digest(_specs(label="qt"), version=VERSION)
        )

    def test_code_version(self):
        specs = _specs()
        assert point_digest(specs, version="v1") != point_digest(
            specs, version="v2"
        )

    @given(
        st.sampled_from(["E1", "E2"]),
        st.sampled_from(["tiny", "small"]),
        st.integers(min_value=0, max_value=3),
    )
    def test_job_key_components(self, experiment, scale, seed):
        base = job_key("E1", "tiny", 0, {}, version=VERSION)
        other = job_key(experiment, scale, seed, {}, version=VERSION)
        same = (experiment, scale, seed) == ("E1", "tiny", 0)
        assert (base == other) == same

    def test_job_key_overrides_and_version(self):
        base = job_key("E1", "tiny", 0, {}, version=VERSION)
        assert base != job_key(
            "E1", "tiny", 0, {"trials": 3}, version=VERSION
        )
        assert base != job_key("E1", "tiny", 0, {}, version="other")

    def test_job_key_experiment_id_is_case_insensitive(self):
        assert job_key("e1", "tiny", 0, version=VERSION) == job_key(
            "E1", "tiny", 0, version=VERSION
        )


class TestCollisionSmoke:
    @settings(deadline=None)
    @given(st.data())
    def test_distinct_points_get_distinct_digests(self, data):
        n = data.draw(st.integers(min_value=2, max_value=20))
        digests = {
            point_digest(
                _specs(
                    payload=f"p{i}",
                    trials=2 + i % 3,
                    seed0=1000 + 7 * i,
                ),
                version=VERSION,
            )
            for i in range(n)
        }
        assert len(digests) == n

    def test_many_job_keys_distinct(self):
        keys = {
            job_key("E1", scale, seed, {"k": v}, version=VERSION)
            for scale in ("tiny", "small", "medium")
            for seed in range(20)
            for v in range(5)
        }
        assert len(keys) == 3 * 20 * 5
