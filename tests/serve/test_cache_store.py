"""Tests for the on-disk result store (repro.serve.cache).

Round-trips, the corruption → recompute-and-repair contract, atomic
writes, LRU eviction under a cap, and the resolve_* knob validators
(argument and environment validated identically, like every runtime
knob).
"""

import os

import pytest

from repro.serve.cache import (
    CACHE_CAP_BYTES_ENV,
    CACHE_CAP_ENV,
    CACHE_DIR_ENV,
    ResultCache,
    default_cache_dir,
    resolve_cache_cap,
    resolve_cache_cap_bytes,
    resolve_cache_dir,
)

DIGEST = "ab" + "0" * 30
OTHER = "cd" + "1" * 30


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        values = [{"queries": 3}, {"queries": 5}]
        assert cache.put(DIGEST, values)
        assert cache.get(DIGEST) == values

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(DIGEST) is None
        assert cache.stats()["misses"] == 1

    def test_entries_are_sharded_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, [1])
        assert (tmp_path / DIGEST[:2] / f"{DIGEST}.rpc").is_file()
        assert cache.entry_count() == 1

    def test_second_instance_reads_first_instances_entries(self, tmp_path):
        ResultCache(tmp_path).put(DIGEST, [1, 2])
        assert ResultCache(tmp_path).get(DIGEST) == [1, 2]

    def test_unpicklable_values_declined_not_raised(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put(DIGEST, [lambda: None])
        assert cache.stats()["declined"] == 1
        assert cache.entry_count() == 0

    def test_hit_refreshes_mtime(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, [1])
        path = tmp_path / DIGEST[:2] / f"{DIGEST}.rpc"
        os.utime(path, (1, 1))
        cache.get(DIGEST)
        assert path.stat().st_mtime > 1


class TestRepair:
    def _entry_path(self, tmp_path):
        return tmp_path / DIGEST[:2] / f"{DIGEST}.rpc"

    @staticmethod
    def _checksummed_junk(blob):
        # Valid magic + checksum over a payload that is not a pickle:
        # exercises the unpickle failure path, not the checksum path.
        import hashlib

        payload = b"not a pickle"
        return (
            b"RPRC1"
            + hashlib.blake2b(payload, digest_size=16).digest()
            + payload
        )

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda blob: b"",  # empty file
            lambda blob: blob[: len(blob) // 2],  # truncated
            lambda blob: b"XXXXX" + blob[5:],  # wrong magic
            lambda blob: blob[:-1] + bytes([blob[-1] ^ 1]),  # bit flip
            _checksummed_junk.__func__,  # unpicklable payload
        ],
        ids=["empty", "truncated", "bad-magic", "bit-flip", "junk"],
    )
    def test_defect_is_miss_plus_delete(self, tmp_path, corrupt):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, [1, 2, 3])
        path = self._entry_path(tmp_path)
        path.write_bytes(corrupt(path.read_bytes()))
        assert cache.get(DIGEST) is None
        assert not path.exists(), "corrupt entry must be deleted"
        assert cache.stats()["repairs"] == 1

    def test_recompute_and_repair_cycle(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, [1, 2, 3])
        path = self._entry_path(tmp_path)
        path.write_bytes(b"garbage")
        assert cache.get(DIGEST) is None  # miss → caller recomputes
        assert cache.put(DIGEST, [1, 2, 3])  # ...and repairs
        assert cache.get(DIGEST) == [1, 2, 3]
        stats = cache.stats()
        assert stats["repairs"] == 1 and stats["hits"] == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" + "e" * 30, [i])
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []


class TestEviction:
    def test_cap_evicts_stalest(self, tmp_path):
        cache = ResultCache(tmp_path, cap=3)
        digests = [f"{i:02x}" + "f" * 30 for i in range(5)]
        for i, digest in enumerate(digests):
            cache.put(digest, [i])
            # Deterministic ages without sleeping.
            path = tmp_path / digest[:2] / f"{digest}.rpc"
            os.utime(path, (1000 + i, 1000 + i))
            cache._evict_over_cap()
        assert cache.entry_count() == 3
        assert cache.get(digests[0]) is None
        assert cache.get(digests[-1]) == [4]
        assert cache.stats()["evictions"] == 2

    def test_zero_cap_is_unbounded(self, tmp_path):
        cache = ResultCache(tmp_path, cap=0)
        for i in range(10):
            cache.put(f"{i:02x}" + "a" * 30, [i])
        assert cache.entry_count() == 10


class TestByteCapEviction:
    def _fill(self, cache, tmp_path, n=5, payload=1000):
        digests = [f"{i:02x}" + "e" * 30 for i in range(n)]
        for i, digest in enumerate(digests):
            cache.put(digest, ["x" * payload])
            path = tmp_path / digest[:2] / f"{digest}.rpc"
            os.utime(path, (1000 + i, 1000 + i))
        return digests

    def test_byte_cap_evicts_stalest_until_under(self, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        probe.put(DIGEST, ["x" * 1000])
        entry_size = probe.total_bytes()

        cache = ResultCache(tmp_path, cap_bytes=3 * entry_size)
        digests = self._fill(cache, tmp_path, n=5, payload=1000)
        cache._evict_over_cap()
        assert cache.entry_count() == 3
        assert cache.total_bytes() <= cache.cap_bytes
        # LRU: the two stalest went, the newest stayed.
        assert cache.get(digests[0]) is None
        assert cache.get(digests[1]) is None
        assert cache.get(digests[-1]) == ["x" * 1000]

    def test_byte_cap_composes_with_entry_cap(self, tmp_path):
        # Entry cap is the binding constraint here: byte cap alone
        # would keep 4 entries, the entry cap allows 2.
        probe = ResultCache(tmp_path / "probe")
        probe.put(DIGEST, ["x" * 100])
        entry_size = probe.total_bytes()
        cache = ResultCache(
            tmp_path, cap=2, cap_bytes=4 * entry_size
        )
        self._fill(cache, tmp_path, n=5, payload=100)
        cache._evict_over_cap()
        assert cache.entry_count() == 2

    def test_zero_byte_cap_is_unbounded(self, tmp_path):
        cache = ResultCache(tmp_path, cap_bytes=0)
        for i in range(10):
            cache.put(f"{i:02x}" + "b" * 30, ["x" * 1000])
        assert cache.entry_count() == 10

    def test_stats_report_bytes(self, tmp_path):
        cache = ResultCache(tmp_path, cap_bytes=1 << 20)
        cache.put(DIGEST, [1, 2, 3])
        stats = cache.stats()
        assert stats["cap_bytes"] == 1 << 20
        assert stats["bytes"] == cache.total_bytes() > 0


class TestResolvers:
    def test_dir_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_dir_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"
        assert default_cache_dir() == tmp_path / "env"

    def test_existing_file_rejected(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(ValueError, match="not a directory"):
            resolve_cache_dir(target)

    def test_cap_argument_and_env(self, monkeypatch):
        assert resolve_cache_cap(7) == 7
        assert resolve_cache_cap(0) == 0
        monkeypatch.setenv(CACHE_CAP_ENV, "12")
        assert resolve_cache_cap() == 12
        monkeypatch.delenv(CACHE_CAP_ENV)
        assert resolve_cache_cap() == 0

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "3"])
    def test_cap_argument_validation(self, bad):
        with pytest.raises(ValueError):
            resolve_cache_cap(bad)

    @pytest.mark.parametrize("bad", ["x", "-2", "1.5"])
    def test_cap_env_validation(self, monkeypatch, bad):
        monkeypatch.setenv(CACHE_CAP_ENV, bad)
        with pytest.raises(ValueError, match=CACHE_CAP_ENV):
            resolve_cache_cap()

    def test_cap_bytes_argument_and_env(self, monkeypatch):
        assert resolve_cache_cap_bytes(1 << 20) == 1 << 20
        assert resolve_cache_cap_bytes(0) == 0
        monkeypatch.setenv(CACHE_CAP_BYTES_ENV, "4096")
        assert resolve_cache_cap_bytes() == 4096
        monkeypatch.delenv(CACHE_CAP_BYTES_ENV)
        assert resolve_cache_cap_bytes() == 0

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "3"])
    def test_cap_bytes_argument_validation(self, bad):
        with pytest.raises(ValueError):
            resolve_cache_cap_bytes(bad)

    @pytest.mark.parametrize("bad", ["x", "-2", "1.5"])
    def test_cap_bytes_env_validation(self, monkeypatch, bad):
        monkeypatch.setenv(CACHE_CAP_BYTES_ENV, bad)
        with pytest.raises(ValueError, match=CACHE_CAP_BYTES_ENV):
            resolve_cache_cap_bytes()
