"""Tests for CachedRunner — point-level caching over any inner runner.

The contract under test: results through the wrapper are identical to
the inner runner's (hit or miss), a repeated sweep executes zero
trials, an overlapping sweep executes exactly the delta, and a miss
batch reaches the inner runner as ONE flat run_grouped call so the
delta still parallelises across points.
"""

import pytest

from repro.runtime import SerialRunner, TrialSpec, Workload
from repro.serve.cache import ResultCache
from repro.serve.cached_runner import CachedRunner

VERSION = "cached-runner-test"


def _kernel(payload, trial, seed):
    return {"payload": payload, "trial": trial, "seed": seed}


def _point(label, trials=3):
    workload = Workload(_kernel, args=(label,))
    return [
        TrialSpec(key=(label, t), workload=workload, args=(t, 50 + t))
        for t in range(trials)
    ]


class _CountingRunner(SerialRunner):
    """Serial inner runner that tallies what actually reaches it."""

    def __init__(self):
        super().__init__()
        self.run_calls = 0
        self.grouped_calls = 0
        self.executed = 0

    def run(self, specs):
        specs = list(specs)
        self.run_calls += 1
        self.executed += len(specs)
        return super().run(specs)

    def run_grouped(self, groups):
        groups = [(label, list(specs)) for label, specs in groups]
        self.grouped_calls += 1
        self.executed += sum(len(specs) for _, specs in groups)
        return super().run_grouped(groups)


@pytest.fixture
def cached(tmp_path):
    inner = _CountingRunner()
    runner = CachedRunner(
        inner, ResultCache(tmp_path), version=VERSION
    )
    return runner, inner


class TestRunGrouped:
    def test_results_match_serial(self, cached):
        runner, _ = cached
        groups = [("a", _point("a")), ("b", _point("b"))]
        expected = SerialRunner().run_grouped(
            [("a", _point("a")), ("b", _point("b"))]
        )
        assert runner.run_grouped(groups) == expected

    def test_repeat_executes_zero_trials(self, cached):
        runner, inner = cached
        groups = lambda: [("a", _point("a")), ("b", _point("b"))]
        first = runner.run_grouped(groups())
        executed_after_first = inner.executed
        runner.reset_counters()
        second = runner.run_grouped(groups())
        assert second == first
        assert inner.executed == executed_after_first
        assert runner.trials_executed == 0
        assert runner.points_cached == runner.points_total == 2

    def test_overlap_executes_only_the_delta(self, cached):
        runner, inner = cached
        runner.run_grouped([("a", _point("a")), ("b", _point("b"))])
        runner.reset_counters()
        out = runner.run_grouped(
            [("b", _point("b")), ("c", _point("c"))]
        )
        assert set(out) == {"b", "c"}
        assert runner.points_cached == 1
        assert runner.trials_executed == len(_point("c"))
        assert out["b"] == SerialRunner().run_grouped(
            [("b", _point("b"))]
        )["b"]

    def test_misses_reach_inner_as_one_flat_batch(self, cached):
        runner, inner = cached
        runner.run_grouped([("a", _point("a"))])
        inner.grouped_calls = 0
        runner.run_grouped(
            [
                ("a", _point("a")),
                ("c", _point("c")),
                ("d", _point("d")),
            ]
        )
        # Two misses, ONE inner run_grouped call (the delta stays a
        # single batch so it parallelises across points).
        assert inner.grouped_calls == 1

    def test_all_hits_skip_inner_entirely(self, cached):
        runner, inner = cached
        runner.run_grouped([("a", _point("a"))])
        inner.grouped_calls = 0
        runner.run_grouped([("a", _point("a"))])
        assert inner.grouped_calls == 0

    def test_duplicate_labels_rejected(self, cached):
        runner, _ = cached
        with pytest.raises(ValueError, match="unique"):
            runner.run_grouped([("a", _point("a")), ("a", _point("a"))])

    def test_version_change_invalidates(self, cached, tmp_path):
        runner, inner = cached
        runner.run_grouped([("a", _point("a"))])
        bumped = CachedRunner(
            inner, ResultCache(tmp_path), version=VERSION + "-2"
        )
        bumped.run_grouped([("a", _point("a"))])
        assert bumped.points_cached == 0


class TestRun:
    def test_plain_run_caches_whole_batch(self, cached):
        runner, inner = cached
        specs = _point("flat", trials=4)
        first = runner.run(specs)
        assert inner.run_calls == 1
        second = runner.run(_point("flat", trials=4))
        assert inner.run_calls == 1  # served from cache
        assert [r.value for r in second] == [r.value for r in first]
        assert [r.key for r in second] == [s.key for s in specs]


class TestProgressAndCounters:
    def test_on_progress_sees_final_counters(self, cached, tmp_path):
        snapshots = []
        runner = CachedRunner(
            SerialRunner(),
            ResultCache(tmp_path / "p"),
            version=VERSION,
            on_progress=snapshots.append,
        )
        runner.run_grouped([("a", _point("a")), ("b", _point("b"))])
        assert snapshots[-1] == runner.counters()
        assert snapshots[-1]["trials_executed"] == 6
        assert snapshots[-1]["points_total"] == 2

    def test_unpicklable_results_run_but_do_not_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CachedRunner(
            _CountingRunner(), cache, version=VERSION
        )
        workload = Workload(_unpicklable_kernel)
        specs = [
            TrialSpec(key=("u", t), workload=workload, args=(t, 0))
            for t in range(2)
        ]
        out = runner.run_grouped([("u", specs)])
        assert len(out["u"]) == 2
        assert cache.stats()["declined"] == 1
        assert cache.entry_count() == 0


def _unpicklable_kernel(trial, seed):
    return lambda: (trial, seed)  # closures do not pickle


class TestLifecycle:
    def test_does_not_own_inner_by_default(self, tmp_path):
        inner = _CountingRunner()
        closed = []
        inner.close = lambda: closed.append(True)
        CachedRunner(inner, ResultCache(tmp_path)).close()
        assert closed == []
        CachedRunner(
            inner, ResultCache(tmp_path), own_inner=True
        ).close()
        assert closed == [True]

    def test_workers_mirror_inner(self, tmp_path):
        inner = SerialRunner()
        runner = CachedRunner(inner, ResultCache(tmp_path))
        assert runner.workers == inner.workers
