"""Job TTL: finished jobs age out of the ledger, the cache does not.

Unit tests drive :class:`~repro.serve.jobs.JobManager` with an
injectable clock (no sleeping); the end-to-end test runs a real
service with a short TTL and asserts the reaped job id answers 404
while a resubmission of the same job is served entirely from cache —
reaping forgets bookkeeping, never results.
"""

import time

import pytest

from repro.runtime import SerialRunner
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobManager
from repro.serve.testing import (
    get_json,
    request,
    start_service,
    submit_job,
    wait_for_job,
)


class _Clock:
    """Real time plus a test-controlled offset."""

    def __init__(self) -> None:
        self.offset = 0.0

    def __call__(self) -> float:
        return time.time() + self.offset


@pytest.fixture
def manager(tmp_path):
    clock = _Clock()
    mgr = JobManager(
        SerialRunner(),
        ResultCache(tmp_path),
        job_ttl=30.0,
        clock=clock,
    )
    yield mgr, clock
    mgr.close()


def _wait_done(mgr, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while True:
        job = mgr.get(job_id)
        assert job is not None
        if job.state in ("done", "failed"):
            return job
        assert time.monotonic() < deadline, f"job stuck in {job.state}"
        time.sleep(0.02)


class TestManagerReaping:
    def test_finished_job_reaped_after_ttl(self, manager):
        mgr, clock = manager
        job, created = mgr.submit("E1", scale="tiny", seed=3)
        assert created
        _wait_done(mgr, job.job_id)
        assert mgr.snapshot(job.job_id) is not None

        clock.offset = 60.0
        assert mgr.snapshot(job.job_id) is None
        assert mgr.get(job.job_id) is None
        assert mgr.jobs() == []
        assert mgr.counts()["total"] == 0

    def test_fresh_finished_job_survives(self, manager):
        mgr, clock = manager
        job, _ = mgr.submit("E1", scale="tiny", seed=3)
        _wait_done(mgr, job.job_id)
        clock.offset = 10.0  # under the 30s TTL
        assert mgr.snapshot(job.job_id) is not None

    def test_unfinished_jobs_are_never_reaped(self, manager):
        mgr, clock = manager
        stuck = Job(
            job_id="j9999-deadbeef",
            key="deadbeef",
            experiment="E1",
            scale="tiny",
            seed=0,
            overrides={},
            state="running",
        )
        with mgr._lock:
            mgr._jobs[stuck.job_id] = stuck
        clock.offset = 1e6
        assert mgr.get(stuck.job_id) is stuck

    def test_no_ttl_keeps_everything(self, tmp_path):
        mgr = JobManager(SerialRunner(), ResultCache(tmp_path))
        try:
            job, _ = mgr.submit("E1", scale="tiny", seed=3)
            _wait_done(mgr, job.job_id)
            assert mgr.snapshot(job.job_id) is not None
        finally:
            mgr.close()

    @pytest.mark.parametrize("bad", [0, -1.0])
    def test_nonpositive_ttl_rejected(self, tmp_path, bad):
        with pytest.raises(ValueError, match="job_ttl"):
            JobManager(SerialRunner(), ResultCache(tmp_path), job_ttl=bad)


class TestServiceTTL:
    def test_reaped_job_is_404_but_cache_survives(self, tmp_path):
        service = start_service(
            backend="serial",
            cache_dir=tmp_path / "cache",
            job_ttl=0.2,
        )
        try:
            first = wait_for_job(
                service, submit_job(service, "E1", seed=3)["job_id"]
            )
            assert first["state"] == "done"
            assert first["trials_executed"] > 0

            deadline = time.monotonic() + 30
            while True:
                status, _ = request(
                    service, "GET", f"/jobs/{first['job_id']}?wait=0"
                )
                if status == 404:
                    break
                assert time.monotonic() < deadline, "job never reaped"
                time.sleep(0.05)

            # The listing agrees the ledger is empty...
            assert get_json(service, "/jobs")["jobs"] == []
            # ...and the results live on: the resubmission is pure cache.
            second = wait_for_job(
                service, submit_job(service, "E1", seed=3)["job_id"]
            )
            assert second["state"] == "done"
            assert second["trials_executed"] == 0
            assert second["cached"] is True
        finally:
            service.stop()
