"""End-to-end tests for the experiment service (repro serve).

A real :class:`ExperimentService` — TCP socket, asyncio front-end, job
executor — boots on an ephemeral port per test class; clients talk
genuine HTTP.  The acceptance claims under test:

* a repeated job is served **entirely from cache** (zero trials
  executed — asserted through the runner instrumentation, not timing)
  and its table is byte-identical to a direct ``repro run``-style
  serial execution;
* an **overlapping sweep** (50% shared points) executes only the
  delta;
* ``/healthz`` reports the resolved backend, cache dir and entry
  count the small-fix satellite added.
"""

import json

import pytest

from repro.experiments.registry import get_experiment
from repro.runtime import SerialRunner
from repro.serve.testing import (
    get_json,
    request,
    start_service,
    submit_job,
    wait_for_job,
)


@pytest.fixture(scope="class")
def service(tmp_path_factory):
    svc = start_service(
        backend="serial",
        cache_dir=tmp_path_factory.mktemp("serve-cache"),
    )
    yield svc
    svc.stop()


class TestRepeatedJob:
    def test_second_submission_is_pure_cache(self, service):
        first = wait_for_job(
            service, submit_job(service, "E1", seed=3)["job_id"]
        )
        assert first["state"] == "done"
        assert first["trials_executed"] > 0
        assert first["cached"] is False

        second = wait_for_job(
            service, submit_job(service, "E1", seed=3)["job_id"]
        )
        assert second["state"] == "done"
        assert second["trials_executed"] == 0, (
            "repeat of a finished job must execute zero trials"
        )
        assert second["cached"] is True
        assert second["points_cached"] == second["points_total"] > 0
        assert second["job_id"] != first["job_id"]

        _, table1 = request(
            service, "GET", f"/jobs/{first['job_id']}/table"
        )
        _, table2 = request(
            service, "GET", f"/jobs/{second['job_id']}/table"
        )
        assert table1 == table2

    def test_table_byte_identical_to_direct_serial_run(self, service):
        done = wait_for_job(
            service, submit_job(service, "E1", seed=3)["job_id"]
        )
        status, served = request(
            service, "GET", f"/jobs/{done['job_id']}/table"
        )
        assert status == 200
        with SerialRunner() as runner:
            direct = get_experiment("E1")(
                scale="tiny", seed=3, runner=runner
            )
        assert served == direct.render().encode()

    def test_table_json_format(self, service):
        done = wait_for_job(
            service, submit_job(service, "E1", seed=3)["job_id"]
        )
        payload = get_json(
            service, f"/jobs/{done['job_id']}/table?format=json"
        )
        assert payload["experiment_id"] == "E1"
        assert payload["columns"][0] == "n"
        assert len(payload["rows"]) == done["rows"]
        assert payload["render"].encode() == request(
            service, "GET", f"/jobs/{done['job_id']}/table"
        )[1]


class TestOverlappingSweep:
    def test_half_shared_sweep_executes_only_the_delta(self, service):
        # Two 4-point sweeps over (n=6) x (2 alphas) x (2 routers),
        # sharing alpha=0.5 — 50% of their points.
        first = wait_for_job(
            service,
            submit_job(
                service,
                "E1",
                seed=7,
                overrides={"alphas": [0.3, 0.5], "trials": 4},
            )["job_id"],
        )
        assert first["state"] == "done"
        assert first["points_total"] == 4
        assert first["trials_executed"] == 16

        second = wait_for_job(
            service,
            submit_job(
                service,
                "E1",
                seed=7,
                overrides={"alphas": [0.5, 0.7], "trials": 4},
            )["job_id"],
        )
        assert second["state"] == "done"
        assert second["points_total"] == 4
        assert second["points_cached"] == 2, (
            "the alpha=0.5 points must come from cache"
        )
        assert second["trials_executed"] == 8, (
            "only the alpha=0.7 delta may execute"
        )

    def test_override_order_coalesces_to_same_key(self, service):
        a = submit_job(
            service,
            "E1",
            seed=7,
            overrides={"alphas": [0.3, 0.5], "trials": 4},
        )
        b = submit_job(
            service,
            "E1",
            seed=7,
            overrides={"trials": 4, "alphas": [0.3, 0.5]},
        )
        assert a["key"] == b["key"]


class TestEndpoints:
    def test_healthz_reports_resolved_environment(self, service):
        health = get_json(service, "/healthz")
        assert health["status"] == "ok"
        assert health["backend"] == "serial"
        assert health["cache_dir"] == str(service.cache.directory)
        assert health["cache_entries"] == service.cache.entry_count()
        assert health["code_version"]
        assert set(health["jobs"]) == {
            "total", "queued", "running", "done", "failed",
        }

    def test_cache_stats_endpoint(self, service):
        stats = get_json(service, "/cache/stats")
        for counter in (
            "hits", "misses", "stores", "repairs", "evictions",
            "declined", "entries", "cap",
        ):
            assert counter in stats

    def test_jobs_listing(self, service):
        wait_for_job(
            service, submit_job(service, "E1", seed=3)["job_id"]
        )
        listing = get_json(service, "/jobs")
        assert any(
            job["experiment"] == "E1" for job in listing["jobs"]
        )

    def test_stream_ends_with_terminal_snapshot(self, service):
        job_id = submit_job(service, "E1", seed=11)["job_id"]
        status, body = request(service, "GET", f"/jobs/{job_id}")
        assert status == 200
        lines = [
            json.loads(line)
            for line in body.decode().splitlines()
            if line
        ]
        assert lines, "stream must carry at least one snapshot"
        assert lines[-1]["state"] == "done"
        assert all(line["job_id"] == job_id for line in lines)

    def test_validation_errors_are_400(self, service):
        cases = [
            {"experiment": "E99"},
            {"experiment": "E1", "scale": "huge"},
            {"experiment": "E1", "seed": "zero"},
            {"experiment": "E2", "overrides": {"alphas": [1]}},
            {"experiment": "E1", "overrides": {"bogus": 1}},
            {"experiment": "E1", "unknown_field": 1},
            {},
        ]
        for payload in cases:
            status, body = request(
                service, "POST", "/jobs", body=payload
            )
            assert status == 400, (payload, body)
            assert "error" in json.loads(body)

    def test_unknown_routes_and_methods(self, service):
        assert request(service, "GET", "/nope")[0] == 404
        assert request(service, "DELETE", "/jobs")[0] == 405
        assert request(service, "GET", "/jobs/j9999-missing")[0] == 404
        assert (
            request(service, "GET", "/jobs/j9999-missing/table")[0]
            == 404
        )
