"""Fault-path tests for the experiment service.

Three failure stories the service must survive without serving wrong
results or losing work:

* a **corrupted or truncated cache entry** degrades to a miss — the
  point recomputes and the entry is repaired in place, never fatal;
* a **client that disconnects mid-stream** only tears down its own
  watcher; the job completes and populates the cache for the next
  submission;
* **concurrent identical submissions** coalesce onto one in-flight
  job (single-flight) — the computation runs once.

The slow/countable experiment these need is registered in the test
registry for the duration of the module and removed afterwards (the
framework tests assert the exact production registry).
"""

import socket
import threading
import time

import pytest

from repro.experiments import registry
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec
from repro.runtime import TrialSpec
from repro.serve.testing import (
    request,
    start_service,
    submit_job,
    wait_for_job,
)

# -- a countable, optionally slow test experiment -------------------------

_EXECUTIONS = []  # one entry per executed trial, across the module
_SLOW_SECONDS = 0.0


def _counting_trial(label, trial, seed):
    _EXECUTIONS.append((label, trial))
    if _SLOW_SECONDS:
        time.sleep(_SLOW_SECONDS)
    return {"label": label, "trial": trial, "seed": seed}


def _slow1_run(scale, seed, runner=None):
    from repro.runtime import SerialRunner

    runner = runner if runner is not None else SerialRunner()
    groups = [
        (
            label,
            [
                TrialSpec(
                    key=("slow1", label, t),
                    fn=_counting_trial,
                    args=(label, t, seed),
                )
                for t in range(3)
            ],
        )
        for label in ("a", "b")
    ]
    records = runner.run_grouped(groups)
    table = ResultTable("SLOW1", "countable test experiment",
                        columns=["label", "trials"])
    for label in ("a", "b"):
        table.add_row(label=label, trials=len(records[label]))
    return table


@pytest.fixture(scope="module", autouse=True)
def _slow1_registered():
    registry.register(
        ExperimentSpec(
            experiment_id="SLOW1",
            title="countable test experiment",
            claim="test-only",
            reference="tests/serve",
            run=_slow1_run,
        )
    )
    try:
        yield
    finally:
        registry._REGISTRY.pop("SLOW1", None)


@pytest.fixture()
def service(tmp_path):
    svc = start_service(backend="serial", cache_dir=tmp_path / "cache")
    yield svc
    svc.stop()


def _set_slow(seconds):
    global _SLOW_SECONDS
    _SLOW_SECONDS = seconds


# -- corruption → recompute-and-repair ------------------------------------

class TestCorruptEntryRepair:
    @pytest.mark.parametrize(
        "damage",
        [lambda blob: blob[: len(blob) // 2], lambda blob: b"garbage"],
        ids=["truncated", "corrupted"],
    )
    def test_recompute_and_repair_through_the_service(
        self, service, damage
    ):
        _set_slow(0.0)
        _EXECUTIONS.clear()
        wait_for_job(
            service, submit_job(service, "SLOW1", seed=1)["job_id"]
        )
        assert len(_EXECUTIONS) == 6

        # Damage every entry behind the service's back.
        entries = list(service.cache.directory.glob("*/*.rpc"))
        assert entries
        for path in entries:
            path.write_bytes(damage(path.read_bytes()))

        _EXECUTIONS.clear()
        done = wait_for_job(
            service, submit_job(service, "SLOW1", seed=1)["job_id"]
        )
        assert done["state"] == "done"
        assert len(_EXECUTIONS) == 6, "damaged points must recompute"
        assert service.cache.stats()["repairs"] == len(entries)

        # ...and the rewritten entries serve the next repeat cold.
        _EXECUTIONS.clear()
        repaired = wait_for_job(
            service, submit_job(service, "SLOW1", seed=1)["job_id"]
        )
        assert repaired["trials_executed"] == 0
        assert _EXECUTIONS == []


# -- client disconnect mid-stream -----------------------------------------

class TestClientDisconnect:
    def test_job_completes_and_caches_after_watcher_drops(self, service):
        _set_slow(0.1)  # ~0.6s job: long enough to disconnect into
        _EXECUTIONS.clear()
        try:
            job_id = submit_job(service, "SLOW1", seed=2)["job_id"]
            # Open the progress stream raw, read one snapshot line,
            # then slam the connection shut mid-stream.
            with socket.create_connection(
                (service.host, service.port), timeout=10
            ) as sock:
                sock.sendall(
                    f"GET /jobs/{job_id} HTTP/1.1\r\n"
                    f"Host: {service.host}\r\n\r\n".encode()
                )
                assert sock.recv(1024)
        finally:
            _set_slow(0.0)

        done = wait_for_job(service, job_id)
        assert done["state"] == "done"
        assert done["trials_executed"] == 6

        # The abandoned job populated the cache: a fresh submission is
        # pure lookup.
        _EXECUTIONS.clear()
        repeat = wait_for_job(
            service, submit_job(service, "SLOW1", seed=2)["job_id"]
        )
        assert repeat["trials_executed"] == 0
        assert _EXECUTIONS == []
        assert repeat["cached"] is True


# -- single-flight coalescing ---------------------------------------------

class TestSingleFlight:
    def test_concurrent_identical_submissions_coalesce(self, service):
        _set_slow(0.1)
        _EXECUTIONS.clear()
        results = []

        def _submit():
            results.append(submit_job(service, "SLOW1", seed=3))

        try:
            threads = [
                threading.Thread(target=_submit) for _ in range(5)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            _set_slow(0.0)

        job_ids = {snap["job_id"] for snap in results}
        assert len(job_ids) == 1, "identical in-flight submissions " \
            "must coalesce onto one job"
        (job_id,) = job_ids
        done = wait_for_job(service, job_id)
        assert done["state"] == "done"
        assert done["coalesced"] == 4
        assert len(_EXECUTIONS) == 6, "the computation ran exactly once"

    def test_different_keys_do_not_coalesce(self, service):
        a = submit_job(service, "SLOW1", seed=4)
        b = submit_job(service, "SLOW1", seed=5)
        assert a["job_id"] != b["job_id"]
        wait_for_job(service, a["job_id"])
        wait_for_job(service, b["job_id"])

    def test_finished_key_starts_a_fresh_job(self, service):
        first = submit_job(service, "SLOW1", seed=6)
        wait_for_job(service, first["job_id"])
        second = submit_job(service, "SLOW1", seed=6)
        assert second["job_id"] != first["job_id"]
        assert wait_for_job(service, second["job_id"])["cached"] is True


# -- failures surface, not hang -------------------------------------------

def _failing_trial(trial, seed):
    raise RuntimeError("trial exploded")


def _fail1_run(scale, seed, runner=None):
    from repro.runtime import SerialRunner

    runner = runner if runner is not None else SerialRunner()
    runner.run(
        [
            TrialSpec(key=("fail1", 0), fn=_failing_trial, args=(0, seed))
        ]
    )
    raise AssertionError("unreachable")


class TestFailedJob:
    def test_failure_reported_and_table_404s(self, service):
        registry.register(
            ExperimentSpec(
                experiment_id="FAIL1",
                title="always fails",
                claim="test-only",
                reference="tests/serve",
                run=_fail1_run,
            )
        )
        try:
            done = wait_for_job(
                service, submit_job(service, "FAIL1")["job_id"]
            )
        finally:
            registry._REGISTRY.pop("FAIL1", None)
        assert done["state"] == "failed"
        assert "trial exploded" in done["error"]
        status, _ = request(
            service, "GET", f"/jobs/{done['job_id']}/table"
        )
        assert status == 404
