"""Tests for repro.graphs.mesh (Mesh and Torus)."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.mesh import Mesh, Torus
from tests.graphs.conftest import assert_graph_axioms, assert_metric_matches_bfs

COORD = st.integers(min_value=0, max_value=4)


class TestMeshStructure:
    def test_counts_2d(self):
        m = Mesh(d=2, side=3)
        assert m.num_vertices() == 9
        assert m.num_edges() == 12

    def test_counts_3d(self):
        m = Mesh(d=3, side=3)
        assert m.num_vertices() == 27
        assert m.num_edges() == 3 * 2 * 9

    def test_edges_enumeration_matches_count(self):
        m = Mesh(d=2, side=4)
        edges = list(m.edges())
        assert len(edges) == m.num_edges()
        assert len(set(edges)) == len(edges)

    def test_axioms(self):
        assert_graph_axioms(Mesh(d=2, side=4))
        assert_graph_axioms(Mesh(d=3, side=3))

    def test_corner_and_interior_degrees(self):
        m = Mesh(d=2, side=3)
        assert m.degree((0, 0)) == 2
        assert m.degree((1, 1)) == 4
        assert m.degree((1, 0)) == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Mesh(d=0, side=3)
        with pytest.raises(ValueError):
            Mesh(d=2, side=1)

    def test_has_vertex(self):
        m = Mesh(d=2, side=3)
        assert m.has_vertex((2, 2))
        assert not m.has_vertex((3, 0))
        assert not m.has_vertex((0,))
        assert not m.has_vertex(5)


class TestMeshMetric:
    def test_matches_bfs(self):
        m = Mesh(d=2, side=4)
        pairs = [((0, 0), (3, 3)), ((1, 2), (2, 0)), ((3, 0), (0, 3))]
        assert_metric_matches_bfs(m, pairs)

    def test_matches_bfs_3d(self):
        m = Mesh(d=3, side=3)
        pairs = [((0, 0, 0), (2, 2, 2)), ((1, 0, 2), (0, 2, 1))]
        assert_metric_matches_bfs(m, pairs)

    def test_diameter(self):
        assert Mesh(d=2, side=5).diameter() == 8

    def test_canonical_pair_spans_diameter(self):
        m = Mesh(d=3, side=4)
        u, v = m.canonical_pair()
        assert m.distance(u, v) == m.diameter()

    @given(st.tuples(COORD, COORD), st.tuples(COORD, COORD))
    def test_l1_metric(self, u, v):
        m = Mesh(d=2, side=5)
        assert m.distance(u, v) == abs(u[0] - v[0]) + abs(u[1] - v[1])


class TestCenteredPair:
    @pytest.mark.parametrize("n", [0, 1, 5, 10, 16])
    def test_distance_is_exact(self, n):
        m = Mesh(d=2, side=20)
        u, v = m.centered_pair_at_distance(n)
        assert m.distance(u, v) == n

    def test_pair_is_centred(self):
        m = Mesh(d=2, side=21)
        u, v = m.centered_pair_at_distance(6)
        for coord_u, coord_v in zip(u, v):
            # both endpoints stay within the middle of the cube
            assert 5 <= coord_u <= 15
            assert 5 <= coord_v <= 15

    def test_rejects_unreachable_distance(self):
        with pytest.raises(ValueError):
            Mesh(d=2, side=3).centered_pair_at_distance(10)

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_all_dimensions(self, d):
        m = Mesh(d=d, side=9)
        u, v = m.centered_pair_at_distance(d * 2)
        assert m.distance(u, v) == d * 2


class TestTorus:
    def test_counts(self):
        t = Torus(d=2, side=4)
        assert t.num_vertices() == 16
        assert t.num_edges() == 32
        assert len(list(t.edges())) == 32

    def test_axioms(self):
        assert_graph_axioms(Torus(d=2, side=4))

    def test_all_degrees_equal(self):
        t = Torus(d=2, side=5)
        assert all(t.degree(v) == 4 for v in t.vertices())

    def test_wraparound_distance(self):
        t = Torus(d=1, side=10)
        assert t.distance((1,), (9,)) == 2

    def test_metric_matches_bfs(self):
        t = Torus(d=2, side=5)
        pairs = list(itertools.product([(0, 0), (4, 1)], [(2, 2), (4, 4), (0, 3)]))
        assert_metric_matches_bfs(t, pairs)

    def test_rejects_small_side(self):
        with pytest.raises(ValueError):
            Torus(d=2, side=2)

    def test_diameter(self):
        assert Torus(d=2, side=6).diameter() == 6
