"""Tests for repro.graphs.complete."""

import pytest

from repro.graphs.complete import CompleteGraph
from tests.graphs.conftest import assert_graph_axioms


class TestCompleteGraph:
    def test_counts(self):
        k = CompleteGraph(5)
        assert k.num_vertices() == 5
        assert k.num_edges() == 10
        assert len(list(k.edges())) == 10

    def test_axioms(self):
        assert_graph_axioms(CompleteGraph(6))

    def test_degree(self):
        assert CompleteGraph(7).degree(3) == 6

    def test_is_edge(self):
        k = CompleteGraph(4)
        assert k.is_edge(0, 3)
        assert not k.is_edge(2, 2)
        assert not k.is_edge(0, 4)

    def test_distance(self):
        k = CompleteGraph(4)
        assert k.distance(1, 1) == 0
        assert k.distance(1, 2) == 1

    def test_shortest_path(self):
        k = CompleteGraph(4)
        assert k.shortest_path(0, 3) == [0, 3]
        assert k.shortest_path(2, 2) == [2]

    def test_canonical_pair(self):
        assert CompleteGraph(9).canonical_pair() == (0, 8)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            CompleteGraph(1)

    def test_diameter(self):
        assert CompleteGraph(3).diameter() == 1
