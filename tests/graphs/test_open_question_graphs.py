"""Tests for the Section-6 open-question topologies.

Butterfly, de Bruijn and shuffle-exchange are constant-degree,
logarithmic-diameter families; experiment E12 scans their percolation vs
routing thresholds.
"""

import pytest

from repro.graphs.butterfly import Butterfly
from repro.graphs.debruijn import DeBruijn
from repro.graphs.shuffle_exchange import ShuffleExchange
from repro.graphs.traversal import bfs_distances, is_connected
from tests.graphs.conftest import assert_graph_axioms


class TestButterfly:
    def test_counts(self):
        bf = Butterfly(3)
        assert bf.num_vertices() == 4 * 8
        assert bf.num_edges() == 2 * 3 * 8
        assert len(list(bf.edges())) == bf.num_edges()

    def test_axioms(self):
        assert_graph_axioms(Butterfly(3))

    def test_degrees(self):
        bf = Butterfly(3)
        assert bf.degree((0, 0)) == 2  # boundary level
        assert bf.degree((1, 0)) == 4  # interior level
        assert bf.degree((3, 5)) == 2

    def test_connected(self):
        assert is_connected(Butterfly(3))

    def test_canonical_pair_reachable(self):
        bf = Butterfly(3)
        u, v = bf.canonical_pair()
        assert v in bfs_distances(bf, u)

    def test_levels_are_layered(self):
        bf = Butterfly(3)
        for w in bf.neighbors((2, 3)):
            assert abs(w[0] - 2) == 1

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            Butterfly(0)


class TestDeBruijn:
    def test_counts(self):
        db = DeBruijn(4)
        assert db.num_vertices() == 16

    def test_axioms(self):
        assert_graph_axioms(DeBruijn(4))

    def test_constant_degree_bound(self):
        db = DeBruijn(5)
        assert all(db.degree(v) <= 4 for v in db.vertices())

    def test_no_self_loops_at_extremes(self):
        db = DeBruijn(4)
        assert 0 not in db.neighbors(0)
        assert 15 not in db.neighbors(15)

    def test_connected(self):
        assert is_connected(DeBruijn(5))

    def test_diameter_at_most_n(self):
        db = DeBruijn(4)
        ecc = max(bfs_distances(db, 0).values())
        assert ecc <= db.n

    def test_shift_adjacency(self):
        db = DeBruijn(4)
        x = 0b0110
        assert ((x << 1) & 0xF) in db.neighbors(x)
        assert (x >> 1) in db.neighbors(x)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            DeBruijn(1)


class TestShuffleExchange:
    def test_counts(self):
        se = ShuffleExchange(4)
        assert se.num_vertices() == 16

    def test_axioms(self):
        assert_graph_axioms(ShuffleExchange(4))

    def test_constant_degree_bound(self):
        se = ShuffleExchange(5)
        assert all(se.degree(v) <= 3 for v in se.vertices())

    def test_exchange_edge(self):
        se = ShuffleExchange(4)
        assert (0b0101 ^ 1) in se.neighbors(0b0101)

    def test_shuffle_edge_is_rotation(self):
        se = ShuffleExchange(3)
        assert 0b011 in se.neighbors(0b110)  # rotate right
        assert 0b101 in se.neighbors(0b110)  # rotate left

    def test_connected(self):
        assert is_connected(ShuffleExchange(5))

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            ShuffleExchange(1)
