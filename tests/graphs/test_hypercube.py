"""Tests for repro.graphs.hypercube."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.hypercube import Hypercube
from tests.graphs.conftest import assert_graph_axioms, assert_metric_matches_bfs


class TestStructure:
    def test_counts(self):
        h = Hypercube(4)
        assert h.num_vertices() == 16
        assert h.num_edges() == 32
        assert h.degree(0) == 4

    def test_edges_enumeration_matches_count(self):
        h = Hypercube(4)
        edges = list(h.edges())
        assert len(edges) == h.num_edges()
        assert len(set(edges)) == len(edges)

    def test_axioms(self):
        assert_graph_axioms(Hypercube(4))

    def test_has_vertex(self):
        h = Hypercube(3)
        assert h.has_vertex(7)
        assert not h.has_vertex(8)
        assert not h.has_vertex(-1)
        assert not h.has_vertex("0")

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            Hypercube(0)

    def test_neighbors_outside_raises(self):
        with pytest.raises(ValueError):
            Hypercube(3).neighbors(9)


class TestMetric:
    def test_matches_bfs_small(self):
        h = Hypercube(4)
        pairs = list(itertools.product([0, 5, 9], [0, 3, 15]))
        assert_metric_matches_bfs(h, pairs)

    def test_diameter(self):
        assert Hypercube(6).diameter() == 6

    def test_canonical_pair_is_antipodal(self):
        h = Hypercube(5)
        u, v = h.canonical_pair()
        assert h.distance(u, v) == 5

    def test_antipode(self):
        h = Hypercube(4)
        assert h.antipode(0b0110) == 0b1001
        assert h.distance(3, h.antipode(3)) == 4

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_geodesic_length_equals_distance(self, u, v):
        h = Hypercube(8)
        path = h.shortest_path(u, v)
        assert len(path) - 1 == h.distance(u, v)

    @given(st.integers(min_value=0, max_value=255))
    def test_neighbors_at_distance_one(self, v):
        h = Hypercube(8)
        for w in h.neighbors(v):
            assert h.distance(v, w) == 1

    def test_large_instance_is_lazy(self):
        # Constructing a 2^30-vertex hypercube must be O(1).
        h = Hypercube(30)
        assert h.num_vertices() == 2**30
        assert len(h.neighbors(12345)) == 30
