"""Tests for repro.graphs.explicit and repro.graphs.traversal."""

import pytest

from repro.graphs.explicit import ExplicitGraph, cycle_graph, path_graph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_path,
    connected_components,
    eccentricity,
    induced_edges,
    is_connected,
    vertices_at_distance,
)
from tests.graphs.conftest import assert_graph_axioms


class TestExplicitGraph:
    def test_basic(self):
        g = ExplicitGraph([(0, 1), (1, 2)])
        assert g.num_vertices() == 3
        assert g.num_edges() == 2
        assert g.neighbors(1) == [0, 2]

    def test_axioms(self):
        assert_graph_axioms(ExplicitGraph([(0, 1), (1, 2), (2, 0), (2, 3)]))

    def test_duplicate_edges_collapse(self):
        g = ExplicitGraph([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges() == 1

    def test_isolated_vertices(self):
        g = ExplicitGraph([(0, 1)], vertices=[5])
        assert g.has_vertex(5)
        assert g.neighbors(5) == []

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            ExplicitGraph([(1, 1)])

    def test_default_shortest_path(self):
        g = ExplicitGraph([(0, 1), (1, 2), (0, 3), (3, 2)])
        path = g.shortest_path(0, 2)
        assert len(path) == 3

    def test_disconnected_shortest_path_raises(self):
        g = ExplicitGraph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            g.shortest_path(0, 3)

    def test_path_graph(self):
        g = path_graph(4)
        assert g.num_vertices() == 5
        assert g.distance(0, 4) == 4

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.num_edges() == 6
        assert g.distance(0, 3) == 3
        assert g.distance(0, 5) == 1

    def test_factories_reject_bad_sizes(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            cycle_graph(2)


class TestTraversal:
    def test_bfs_distances(self):
        g = path_graph(4)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_distances_max_depth(self):
        g = path_graph(6)
        d = bfs_distances(g, 0, max_depth=2)
        assert set(d) == {0, 1, 2}

    def test_bfs_path(self):
        g = cycle_graph(8)
        path = bfs_path(g, 0, 4)
        assert len(path) == 5

    def test_eccentricity(self):
        assert eccentricity(path_graph(5), 0) == 5
        assert eccentricity(path_graph(4), 2) == 2

    def test_vertices_at_distance(self):
        g = cycle_graph(8)
        assert sorted(vertices_at_distance(g, 0, 2)) == [2, 6]

    def test_vertices_at_distance_limit(self):
        g = cycle_graph(8)
        assert len(vertices_at_distance(g, 0, 2, limit=1)) == 1

    def test_vertices_at_distance_rejects_negative(self):
        with pytest.raises(ValueError):
            vertices_at_distance(cycle_graph(4), 0, -1)

    def test_connected_components(self):
        g = ExplicitGraph([(0, 1), (2, 3)], vertices=[9])
        comps = sorted(connected_components(g), key=min)
        assert comps == [{0, 1}, {2, 3}, {9}]

    def test_is_connected(self):
        assert is_connected(cycle_graph(5))
        assert not is_connected(ExplicitGraph([(0, 1), (2, 3)]))

    def test_induced_edges(self):
        g = cycle_graph(6)
        inside = induced_edges(g, {0, 1, 2})
        assert sorted(inside) == [(0, 1), (1, 2)]

    def test_canonical_pair_default(self):
        g = path_graph(3)
        assert g.canonical_pair() == (0, 3)
