"""Shared helpers for graph-topology tests."""

import itertools

import pytest

from repro.graphs.traversal import bfs_distances


def assert_graph_axioms(graph):
    """Check the structural invariants every Graph must satisfy."""
    vertices = list(graph.vertices())
    assert len(vertices) == graph.num_vertices()
    assert len(set(vertices)) == len(vertices), "duplicate vertices"
    for v in itertools.islice(vertices, 200):
        neigh = graph.neighbors(v)
        assert len(set(neigh)) == len(neigh), f"duplicate neighbours at {v!r}"
        assert v not in neigh, f"self-loop at {v!r}"
        for w in neigh:
            assert graph.has_vertex(w)
            assert v in graph.neighbors(w), f"asymmetric edge {v!r}-{w!r}"
            key = graph.edge_key(v, w)
            assert key == graph.edge_key(w, v)
            assert set(key) == {v, w}


def assert_metric_matches_bfs(graph, sample_pairs):
    """Check the analytic metric and geodesics against BFS ground truth."""
    for u, v in sample_pairs:
        reference = bfs_distances(graph, u)[v]
        assert graph.distance(u, v) == reference, (u, v)
        path = graph.shortest_path(u, v)
        assert path[0] == u and path[-1] == v
        assert len(path) == reference + 1
        for a, b in zip(path, path[1:]):
            assert b in graph.neighbors(a), f"non-edge {a!r}-{b!r} in geodesic"
        assert len(set(path)) == len(path), "geodesic revisits a vertex"


@pytest.fixture
def axioms():
    return assert_graph_axioms


@pytest.fixture
def metric_check():
    return assert_metric_matches_bfs
