"""Structural invariants of the k-ary fat-tree."""

import itertools

import pytest

from repro.graphs.clos import FatTree
from repro.graphs.traversal import bfs_distances
from repro.percolation.faults import AdversarialCutPercolation
from repro.percolation.cluster import connected


@pytest.mark.parametrize("k", [2, 4, 6])
@pytest.mark.parametrize("with_hosts", [False, True])
class TestFatTreeInvariants:
    def test_axioms(self, k, with_hosts, axioms):
        axioms(FatTree(k, with_hosts=with_hosts))

    def test_counts_match_closed_forms(self, k, with_hosts):
        g = FatTree(k, with_hosts=with_hosts)
        half = k // 2
        switches = half * half + 2 * k * half
        hosts = k * half * half if with_hosts else 0
        assert g.num_vertices() == switches + hosts
        tier = k * half * half  # links per adjacent layer pair
        assert g.num_edges() == tier * (3 if with_hosts else 2)
        # Handshake: the analytic edge count vs summed degrees.
        degree_sum = sum(len(g.neighbors(v)) for v in g.vertices())
        assert degree_sum == 2 * g.num_edges()

    def test_degree_regular_per_layer(self, k, with_hosts):
        g = FatTree(k, with_hosts=with_hosts)
        half = k // 2
        expected = {
            "core": k,
            "agg": k,
            "edge": half + (half if with_hosts else 0),
            "host": 1,
        }
        for v in g.vertices():
            assert len(g.neighbors(v)) == expected[v[0]], v

    def test_edges_only_between_adjacent_layers(self, k, with_hosts):
        g = FatTree(k, with_hosts=with_hosts)
        adjacent = {("core", "agg"), ("agg", "edge"), ("edge", "host")}
        for u, v in g.edges():
            layers = tuple(sorted((u[0], v[0])))
            assert (
                layers in adjacent or tuple(reversed(layers)) in adjacent
            ), (u, v)

    def test_intra_pod_wiring(self, k, with_hosts):
        # Aggregation↔edge is complete bipartite within a pod and
        # absent across pods; hosts hang off exactly their own switch.
        g = FatTree(k, with_hosts=with_hosts)
        half = k // 2
        for pod, a, e in itertools.product(
            range(k), range(half), range(half)
        ):
            assert ("edge", pod, e) in g.neighbors(("agg", pod, a))
        other = ("agg", 1, 0)
        assert other not in g.neighbors(("edge", 0, 0))

    def test_core_stripe_wiring(self, k, with_hosts):
        # Core c connects to aggregation switch c // (k/2) of EVERY
        # pod — the stripe pattern that gives (k/2)² disjoint paths.
        g = FatTree(k, with_hosts=with_hosts)
        half = k // 2
        for c in range(half * half):
            neigh = g.neighbors(("core", c))
            assert neigh == [("agg", pod, c // half) for pod in range(k)]

    def test_canonical_pair(self, k, with_hosts):
        g = FatTree(k, with_hosts=with_hosts)
        u, v = g.canonical_pair()
        assert g.has_vertex(u) and g.has_vertex(v)
        assert g.pod_of(u) == 0 and g.pod_of(v) == k - 1

    def test_metric_against_bfs(self, k, with_hosts, metric_check):
        g = FatTree(k, with_hosts=with_hosts)
        vertices = list(g.vertices())
        pairs = [
            g.canonical_pair(),
            (vertices[0], vertices[-1]),
            (("core", 0), ("edge", k - 1, 0)),
        ]
        metric_check(g, pairs)


class TestFatTreeGeometry:
    def test_inter_pod_distance(self):
        # edge → agg → core → agg → edge crossing pods: 4 hops
        # (6 host-to-host).
        assert FatTree(4).distance(*FatTree(4).canonical_pair()) == 4
        ft = FatTree(4, with_hosts=True)
        assert ft.distance(*ft.canonical_pair()) == 6

    def test_path_diversity_matches_uplink_cut(self):
        # Min cut between inter-pod edge switches is the k/2 uplinks:
        # removing them severs; removing all but one of them does not.
        g = FatTree(6)
        m = AdversarialCutPercolation(g, 1.0, seed=0, budget=g.k // 2)
        assert len(m.removed_edges()) == g.k // 2
        assert not connected(m, *g.canonical_pair())
        short = AdversarialCutPercolation(
            g, 1.0, seed=0, budget=g.k // 2 - 1
        )
        assert connected(short, *g.canonical_pair())

    def test_whole_fabric_connected(self):
        g = FatTree(4, with_hosts=True)
        reach = bfs_distances(g, ("core", 0))
        assert len(reach) == g.num_vertices()

    def test_has_vertex_rejects_malformed(self):
        g = FatTree(4)
        assert not g.has_vertex(("core", 4))
        assert not g.has_vertex(("agg", 4, 0))
        assert not g.has_vertex(("edge", 0, 2))
        assert not g.has_vertex(("host", 0, 0, 0))  # no hosts built
        assert not g.has_vertex(("core", 0, 0))
        assert not g.has_vertex("core")
        assert not g.has_vertex(("spine", 0))
        assert FatTree(4, with_hosts=True).has_vertex(("host", 0, 0, 0))

    def test_pod_of(self):
        g = FatTree(4)
        assert g.pod_of(("core", 1)) is None
        assert g.pod_of(("agg", 2, 0)) == 2
        assert g.pod_of(("edge", 3, 1)) == 3

    @pytest.mark.parametrize("bad", [0, 1, 3, 5, -2])
    def test_rejects_bad_arity(self, bad):
        with pytest.raises(ValueError):
            FatTree(bad)
