"""Tests for repro.graphs.cycle_matching."""

import math

import pytest

from repro.graphs.cycle_matching import RandomMatchingCycle
from repro.graphs.traversal import bfs_distances, is_connected
from tests.graphs.conftest import assert_graph_axioms


class TestRandomMatchingCycle:
    def test_axioms(self):
        assert_graph_axioms(RandomMatchingCycle(16, seed=0))

    def test_counts(self):
        g = RandomMatchingCycle(20, seed=1)
        assert g.num_vertices() == 20
        assert 20 <= g.num_edges() <= 30

    def test_degrees_bounded(self):
        g = RandomMatchingCycle(32, seed=2)
        assert all(2 <= g.degree(v) <= 3 for v in g.vertices())

    def test_matching_is_involution(self):
        g = RandomMatchingCycle(24, seed=3)
        for v in g.vertices():
            partner = g.matching_partner(v)
            assert partner != v
            assert g.matching_partner(partner) == v

    def test_matching_edges_exist(self):
        g = RandomMatchingCycle(24, seed=4)
        for v in g.vertices():
            assert g.matching_partner(v) in g.neighbors(v)

    def test_connected(self):
        assert is_connected(RandomMatchingCycle(64, seed=5))

    def test_deterministic_per_seed(self):
        g1 = RandomMatchingCycle(16, seed=6)
        g2 = RandomMatchingCycle(16, seed=6)
        assert all(g1.neighbors(v) == g2.neighbors(v) for v in g1.vertices())

    def test_seed_changes_matching(self):
        g1 = RandomMatchingCycle(64, seed=0)
        g2 = RandomMatchingCycle(64, seed=1)
        assert any(
            g1.matching_partner(v) != g2.matching_partner(v)
            for v in g1.vertices()
        )

    def test_diameter_logarithmic(self):
        # Bollobás–Chung: diameter ~ log2(n); allow a generous constant.
        n = 256
        g = RandomMatchingCycle(n, seed=7)
        ecc = max(bfs_distances(g, 0).values())
        assert ecc <= 6 * math.log2(n)

    def test_diameter_beats_plain_cycle(self):
        n = 256
        g = RandomMatchingCycle(n, seed=8)
        ecc = max(bfs_distances(g, 0).values())
        assert ecc < n // 4  # plain cycle eccentricity is n/2

    def test_rejects_odd_or_tiny(self):
        with pytest.raises(ValueError):
            RandomMatchingCycle(7, seed=0)
        with pytest.raises(ValueError):
            RandomMatchingCycle(2, seed=0)

    def test_canonical_pair(self):
        g = RandomMatchingCycle(10, seed=0)
        assert g.canonical_pair() == (0, 5)
