"""Tests for repro.graphs.double_tree."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.double_tree import DoubleBinaryTree
from tests.graphs.conftest import assert_graph_axioms, assert_metric_matches_bfs


class TestStructure:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_counts(self, depth):
        tt = DoubleBinaryTree(depth)
        assert tt.num_vertices() == 3 * 2**depth - 2
        assert tt.num_edges() == 2 * (2 ** (depth + 1) - 2)
        assert len(list(tt.vertices())) == tt.num_vertices()
        assert len(list(tt.edges())) == tt.num_edges()

    def test_axioms(self):
        assert_graph_axioms(DoubleBinaryTree(3))

    def test_root_degree(self):
        tt = DoubleBinaryTree(3)
        assert tt.degree(("a", 1)) == 2
        assert tt.degree(("b", 1)) == 2

    def test_leaf_degree(self):
        tt = DoubleBinaryTree(3)
        for leaf in tt.leaves():
            assert tt.degree(leaf) == 2

    def test_internal_degree(self):
        tt = DoubleBinaryTree(3)
        assert tt.degree(("a", 2)) == 3

    def test_leaf_connects_both_trees(self):
        tt = DoubleBinaryTree(2)
        sides = {v[0] for v in tt.neighbors(("leaf", 0))}
        assert sides == {"a", "b"}

    def test_depth_one_is_four_cycle_plus(self):
        tt = DoubleBinaryTree(1)
        assert tt.num_vertices() == 4
        assert tt.num_edges() == 4

    def test_node_depth(self):
        tt = DoubleBinaryTree(3)
        assert tt.node_depth(("a", 1)) == 0
        assert tt.node_depth(("a", 5)) == 2
        assert tt.node_depth(("leaf", 0)) == 3

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            DoubleBinaryTree(0)

    def test_has_vertex(self):
        tt = DoubleBinaryTree(2)
        assert tt.has_vertex(("a", 3))
        assert not tt.has_vertex(("a", 4))  # depth-2 internal max heap is 3
        assert tt.has_vertex(("leaf", 3))
        assert not tt.has_vertex(("leaf", 4))
        assert not tt.has_vertex(("c", 1))
        assert not tt.has_vertex("a")


class TestMetric:
    def test_roots_at_distance_2n(self):
        for depth in (1, 2, 3, 5):
            tt = DoubleBinaryTree(depth)
            x, y = tt.canonical_pair()
            assert tt.distance(x, y) == 2 * depth

    def test_metric_matches_bfs_exhaustive_depth3(self):
        tt = DoubleBinaryTree(3)
        vertices = list(tt.vertices())
        pairs = list(itertools.product(vertices[::3], vertices[::4]))
        assert_metric_matches_bfs(tt, pairs)

    def test_metric_matches_bfs_depth4_sample(self):
        tt = DoubleBinaryTree(4)
        pairs = [
            (("a", 1), ("b", 1)),
            (("a", 5), ("b", 13)),
            (("a", 9), ("leaf", 15)),
            (("leaf", 0), ("leaf", 15)),
            (("a", 3), ("a", 9)),
            (("b", 2), ("b", 3)),
            (("a", 2), ("b", 2)),
            (("a", 15), ("b", 8)),
        ]
        assert_metric_matches_bfs(tt, pairs)

    def test_diameter(self):
        assert DoubleBinaryTree(4).diameter() == 8

    @given(st.integers(min_value=1, max_value=15), st.integers(min_value=1, max_value=15))
    def test_cross_tree_distance_symmetric(self, k1, k2):
        tt = DoubleBinaryTree(4)
        u, v = ("a", k1), ("b", k2)
        assert tt.distance(u, v) == tt.distance(v, u)


class TestMirror:
    def test_mirror_vertex_involution(self):
        tt = DoubleBinaryTree(3)
        for v in tt.vertices():
            assert tt.mirror_vertex(tt.mirror_vertex(v)) == v

    def test_mirror_leaf_is_identity(self):
        tt = DoubleBinaryTree(3)
        assert tt.mirror_vertex(("leaf", 5)) == ("leaf", 5)

    def test_mirror_edge_is_edge(self):
        tt = DoubleBinaryTree(3)
        for edge in tt.edges():
            mirrored = tt.mirror_edge(edge)
            u, v = mirrored
            assert v in tt.neighbors(u)

    def test_mirror_edge_involution(self):
        tt = DoubleBinaryTree(3)
        for edge in tt.edges():
            assert tt.mirror_edge(tt.mirror_edge(edge)) == edge

    def test_mirror_edge_swaps_sides(self):
        tt = DoubleBinaryTree(3)
        for edge in tt.edges():
            assert tt.side_of_edge(tt.mirror_edge(edge)) != tt.side_of_edge(edge)

    def test_mirror_pairing_is_perfect_matching(self):
        tt = DoubleBinaryTree(3)
        a_edges = [e for e in tt.edges() if tt.side_of_edge(e) == "a"]
        b_edges = {e for e in tt.edges() if tt.side_of_edge(e) == "b"}
        assert {tt.mirror_edge(e) for e in a_edges} == b_edges
