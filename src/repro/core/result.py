"""Routing results and path validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.graphs.base import Graph, Vertex
from repro.percolation.models import PercolationModel

__all__ = [
    "FailureReason",
    "InvalidPathError",
    "RoutingResult",
    "erase_loops",
    "validate_path",
]


class FailureReason(str, Enum):
    """Why a routing attempt returned no path."""

    #: The probe budget was exhausted mid-search.
    BUDGET = "budget"
    #: The router exhausted its search space without reaching the target
    #: (for a complete router this certifies the target is unreachable).
    EXHAUSTED = "exhausted"
    #: The router hit an internal limit (e.g. segment radius) and quit.
    GAVE_UP = "gave_up"


class InvalidPathError(Exception):
    """A router returned a path that is not an open source→target path."""


@dataclass(frozen=True)
class RoutingResult:
    """Outcome of one routing attempt.

    ``queries`` is the paper's complexity: distinct edges probed.  When
    ``success`` is False, ``failure`` says why; ``censored`` marks budget
    exhaustion (the true complexity is then *at least* ``queries``).
    """

    source: Vertex
    target: Vertex
    success: bool
    queries: int
    path: list[Vertex] | None = None
    failure: FailureReason | None = None
    router: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def censored(self) -> bool:
        """Whether the attempt was cut short by the probe budget."""
        return self.failure == FailureReason.BUDGET

    @property
    def path_length(self) -> int | None:
        """Number of edges of the found path (None on failure)."""
        return None if self.path is None else len(self.path) - 1

    def __post_init__(self) -> None:
        if self.success and self.path is None:
            raise ValueError("successful result must carry a path")
        if not self.success and self.path is not None:
            raise ValueError("failed result must not carry a path")
        if not self.success and self.failure is None:
            raise ValueError("failed result must carry a failure reason")


def validate_path(
    graph: Graph,
    model: PercolationModel,
    path: list[Vertex],
    source: Vertex,
    target: Vertex,
) -> None:
    """Raise :class:`InvalidPathError` unless ``path`` is a valid route.

    Valid means: starts at ``source``, ends at ``target``, every hop is a
    graph edge, every hop is open in ``model``, and no vertex repeats.
    """
    if not path:
        raise InvalidPathError("empty path")
    if path[0] != source:
        raise InvalidPathError(f"path starts at {path[0]!r}, not {source!r}")
    if path[-1] != target:
        raise InvalidPathError(f"path ends at {path[-1]!r}, not {target!r}")
    if len(set(path)) != len(path):
        raise InvalidPathError("path revisits a vertex")
    for a, b in zip(path, path[1:]):
        if not graph.is_edge(a, b):
            raise InvalidPathError(f"{a!r}-{b!r} is not an edge")
        if not model.is_open(a, b):
            raise InvalidPathError(f"edge {a!r}-{b!r} is closed")


def erase_loops(path: list[Vertex]) -> list[Vertex]:
    """Return ``path`` with cycles removed (loop erasure).

    Routers that stitch segments together (waypoint routing) may revisit
    a vertex; erasing the loop between the two visits keeps only edges
    already present in the path, so an open walk stays an open path.

    >>> erase_loops([0, 1, 2, 1, 3])
    [0, 1, 3]
    """
    position: dict[Vertex, int] = {}
    out: list[Vertex] = []
    for v in path:
        if v in position:
            del_from = position[v] + 1
            for dropped in out[del_from:]:
                del position[dropped]
            del out[del_from:]
        else:
            position[v] = len(out)
            out.append(v)
    return out
