"""The probe model: query-counted access to a percolated graph.

The paper's complexity measure (Definition 2) counts the number of
*distinct edges probed* by a routing algorithm.  A :class:`ProbeOracle`
wraps a percolation model and is the **only** way routers may learn edge
states; it memoises answers (re-examining known information is free, as
in the paper, which does not charge for computation) and counts each
edge once.

:class:`LocalProbeOracle` additionally enforces Definition 1: the first
probe must touch the source, and every probe must touch a vertex to
which an open path from the source has already been established.  The
framework — not router discipline — guarantees locality: an illegal
probe raises :class:`LocalityViolation`.

A consequence of the locality rule is that the established ("reached")
set grows one endpoint at a time: an open probed edge always touches the
reached set at probe time, so no detached open clusters can form and
enforcement is O(1) per probe.
"""

from __future__ import annotations

from repro.graphs.base import Edge, Graph, Vertex
from repro.percolation.models import PercolationModel

__all__ = [
    "LocalProbeOracle",
    "LocalityViolation",
    "ProbeBudgetExceeded",
    "ProbeOracle",
]


class ProbeBudgetExceeded(Exception):
    """Raised when a new probe would exceed the oracle's query budget."""

    def __init__(self, budget: int) -> None:
        super().__init__(f"probe budget of {budget} queries exhausted")
        self.budget = budget


class LocalityViolation(Exception):
    """Raised when a local router probes an edge it has not reached."""


class ProbeOracle:
    """Query-counted, memoised access to edge states (oracle model).

    Any edge of the graph may be probed in any order — this is the
    paper's *oracle routing* model (Section 5).

    >>> from repro.graphs.hypercube import Hypercube
    >>> from repro.percolation.models import HashPercolation
    >>> oracle = ProbeOracle(HashPercolation(Hypercube(4), 1.0, seed=0))
    >>> oracle.probe(0, 1)
    True
    >>> oracle.queries
    1
    >>> _ = oracle.probe(1, 0)   # re-probe is free
    >>> oracle.queries
    1
    """

    is_local = False

    def __init__(
        self, model: PercolationModel, budget: int | None = None
    ) -> None:
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        self.model = model
        self.budget = budget
        self._results: dict[Edge, bool] = {}

    @property
    def graph(self) -> Graph:
        """The underlying (non-faulty) topology."""
        return self.model.graph

    @property
    def queries(self) -> int:
        """Number of distinct edges probed so far."""
        return len(self._results)

    def probe(self, u: Vertex, v: Vertex) -> bool:
        """Probe the edge ``{u, v}``; return whether it is open.

        Counts one query the first time this edge is probed; repeats are
        free.  Raises :class:`ValueError` for non-edges and
        :class:`ProbeBudgetExceeded` when a new probe would exceed the
        budget.
        """
        key = self.graph.edge_key(u, v)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        self._check_allowed(u, v)
        if self.budget is not None and len(self._results) >= self.budget:
            raise ProbeBudgetExceeded(self.budget)
        if not self.graph.is_edge(u, v):
            raise ValueError(f"{u!r}-{v!r} is not an edge of {self.graph.name}")
        result = self.model.is_open(u, v)
        self._results[key] = result
        self._note_result(u, v, result)
        return result

    def known_state(self, u: Vertex, v: Vertex) -> bool | None:
        """Return the memoised state of an edge, or ``None`` if unprobed.

        Free: does not count a query.
        """
        return self._results.get(self.graph.edge_key(u, v))

    def probed_edges(self) -> dict[Edge, bool]:
        """Return a copy of all probed edges and their states."""
        return dict(self._results)

    # -- hooks for the local subclass ------------------------------------------

    def _check_allowed(self, u: Vertex, v: Vertex) -> None:
        """Subclass hook: raise if this (new) probe is not permitted."""

    def _note_result(self, u: Vertex, v: Vertex, result: bool) -> None:
        """Subclass hook: observe the outcome of a counted probe."""


class LocalProbeOracle(ProbeOracle):
    """Probe oracle that enforces the paper's locality rule.

    A probe is legal iff one endpoint is *reached* — connected to the
    source by a path of probed open edges.  The source starts reached.

    >>> from repro.graphs.explicit import path_graph
    >>> from repro.percolation.models import HashPercolation
    >>> oracle = LocalProbeOracle(
    ...     HashPercolation(path_graph(3), 1.0, seed=0), source=0)
    >>> oracle.probe(0, 1)
    True
    >>> oracle.probe(2, 3)
    Traceback (most recent call last):
        ...
    repro.core.probe.LocalityViolation: probe 2-3 touches no reached vertex
    """

    is_local = True

    def __init__(
        self,
        model: PercolationModel,
        source: Vertex,
        budget: int | None = None,
    ) -> None:
        super().__init__(model, budget)
        model.graph._require_vertex(source)
        self.source = source
        self._reached: set[Vertex] = {source}

    @property
    def reached(self) -> frozenset[Vertex]:
        """Vertices with an established open path from the source."""
        return frozenset(self._reached)

    def is_reached(self, v: Vertex) -> bool:
        """Return whether ``v`` has an established path from the source."""
        return v in self._reached

    def _check_allowed(self, u: Vertex, v: Vertex) -> None:
        if u not in self._reached and v not in self._reached:
            raise LocalityViolation(
                f"probe {u!r}-{v!r} touches no reached vertex"
            )

    def _note_result(self, u: Vertex, v: Vertex, result: bool) -> None:
        if result:
            # At least one endpoint was reached (checked above), so the
            # open edge extends the established cluster by the other.
            self._reached.add(u)
            self._reached.add(v)
