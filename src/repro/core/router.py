"""The routing-algorithm interface.

A :class:`Router` encapsulates one algorithm from the paper (or a
baseline).  Concrete routers implement :meth:`Router._route`, which sees
only a :class:`~repro.core.probe.ProbeOracle` — they cannot inspect edge
states any other way, so the query count is trustworthy by construction.

``Router.route`` wraps ``_route`` with the bookkeeping every experiment
needs: oracle construction (local or oracle-model according to the
router's declared locality), budget enforcement, loop erasure, and path
validation.  A router bug that emits a closed or disconnected path is an
:class:`~repro.core.result.InvalidPathError`, never a silently wrong
measurement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

from repro.core.probe import (
    LocalProbeOracle,
    ProbeBudgetExceeded,
    ProbeOracle,
)
from repro.core.result import (
    FailureReason,
    RoutingResult,
    erase_loops,
    validate_path,
)
from repro.graphs.base import Vertex
from repro.percolation.models import PercolationModel

__all__ = ["Router"]


class Router(ABC):
    """Base class for routing algorithms.

    Class attributes:

    ``is_local``
        Whether the algorithm obeys Definition 1.  Local routers get a
        :class:`LocalProbeOracle` (locality is *enforced*, not assumed).
    ``is_complete``
        Whether failure-without-budget certifies that no open path
        exists.  Complete routers can double as connectivity oracles
        (used by the conditioning ablation A1).
    """

    name: str = "router"
    is_local: ClassVar[bool] = True
    is_complete: ClassVar[bool] = False

    @abstractmethod
    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        """Find an open ``source → target`` path using only ``oracle``.

        Return the path as a vertex list (may contain transient loops —
        they are erased by the caller) or ``None`` to give up.
        """

    def route(
        self,
        model: PercolationModel,
        source: Vertex,
        target: Vertex,
        budget: int | None = None,
    ) -> RoutingResult:
        """Run the algorithm on one percolated graph; validate the outcome."""
        model.graph._require_vertex(source)
        model.graph._require_vertex(target)
        oracle = self.make_oracle(model, source, budget)
        try:
            path = self._route(oracle, source, target)
        except ProbeBudgetExceeded:
            return RoutingResult(
                source=source,
                target=target,
                success=False,
                queries=oracle.queries,
                failure=FailureReason.BUDGET,
                router=self.name,
            )
        if path is None:
            return RoutingResult(
                source=source,
                target=target,
                success=False,
                queries=oracle.queries,
                failure=(
                    FailureReason.EXHAUSTED
                    if self.is_complete
                    else FailureReason.GAVE_UP
                ),
                router=self.name,
            )
        path = erase_loops(path)
        validate_path(model.graph, model, path, source, target)
        return RoutingResult(
            source=source,
            target=target,
            success=True,
            queries=oracle.queries,
            path=path,
            router=self.name,
        )

    def route_demands(
        self,
        model: PercolationModel,
        demands,
        budget: int | None = None,
    ) -> list[RoutingResult]:
        """Route every commodity of a demand matrix; one result per pair.

        The multi-commodity seam: the default routes each
        ``(source, target)`` of ``demands.pairs`` **independently**
        through :meth:`route` — fresh oracle, independent probe
        accounting, no state shared between commodities — so every
        existing router works unchanged and the batched kernel
        (:mod:`repro.kernels.traffic`) has a well-defined sequential
        path to replay.  Results line up with ``demands.pairs`` index
        for index; link-load accounting over the delivered paths is
        centralised in :func:`repro.core.traffic.summarize_traffic`.

        Subclasses may override to share probe knowledge across
        commodities, but must preserve the per-commodity result
        contract (each result field-identical to what some valid
        single-pair strategy would return).
        """
        return [
            self.route(model, source, target, budget=budget)
            for source, target in demands.pairs
        ]

    def make_oracle(
        self,
        model: PercolationModel,
        source: Vertex,
        budget: int | None = None,
    ) -> ProbeOracle:
        """Build the probe oracle matching this router's locality class."""
        if self.is_local:
            return LocalProbeOracle(model, source, budget=budget)
        return ProbeOracle(model, budget=budget)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
