"""The paper's core contribution: the routing-complexity framework.

* :mod:`repro.core.probe` — the probe/query model.  Routers learn edge
  states only through a counting oracle; the *local* oracle enforces
  Definition 1 (probes must touch the established open cluster of the
  source) as a hard runtime invariant.
* :mod:`repro.core.router` — the algorithm interface; running a router
  validates any returned path against the percolation (open edges,
  correct endpoints), so measurements cannot be silently wrong.
* :mod:`repro.core.result` — results, failure taxonomy, loop erasure.
* :mod:`repro.core.complexity` — Definition 2 made executable:
  rejection-sampled estimation of query distributions conditioned on
  ``{u ~ v}``, split into per-trial work units (spec emission → pure
  trial kernel → deterministic reassembly) so sweeps parallelise.
* :mod:`repro.core.lower_bounds` — Lemma 5 as an empirical certificate:
  estimate ``η``, ``Pr[(u~v) ∈ S]`` and ``Pr[u ~ v]`` for a concrete cut
  and obtain a CDF bound every local router must respect.
"""

from repro.core.complexity import (
    ComplexityMeasurement,
    TrialRecord,
    assemble_measurement,
    complexity_specs,
    measure_complexity,
    run_trial,
)
from repro.core.lower_bounds import (
    Lemma5Certificate,
    ball,
    cut_edges,
    estimate_certificate,
)
from repro.core.probe import (
    LocalityViolation,
    LocalProbeOracle,
    ProbeBudgetExceeded,
    ProbeOracle,
)
from repro.core.result import (
    FailureReason,
    InvalidPathError,
    RoutingResult,
    erase_loops,
    validate_path,
)
from repro.core.router import Router

__all__ = [
    "ComplexityMeasurement",
    "FailureReason",
    "InvalidPathError",
    "Lemma5Certificate",
    "LocalProbeOracle",
    "LocalityViolation",
    "ProbeBudgetExceeded",
    "ProbeOracle",
    "Router",
    "RoutingResult",
    "TrialRecord",
    "assemble_measurement",
    "ball",
    "complexity_specs",
    "cut_edges",
    "erase_loops",
    "estimate_certificate",
    "measure_complexity",
    "run_trial",
    "validate_path",
]
