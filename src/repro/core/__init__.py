"""The paper's core contribution: the routing-complexity framework.

* :mod:`repro.core.probe` — the probe/query model.  Routers learn edge
  states only through a counting oracle; the *local* oracle enforces
  Definition 1 (probes must touch the established open cluster of the
  source) as a hard runtime invariant.
* :mod:`repro.core.router` — the algorithm interface; running a router
  validates any returned path against the percolation (open edges,
  correct endpoints), so measurements cannot be silently wrong.
* :mod:`repro.core.result` — results, failure taxonomy, loop erasure.
* :mod:`repro.core.complexity` — Definition 2 made executable:
  rejection-sampled estimation of query distributions conditioned on
  ``{u ~ v}``, split into per-trial work units (spec emission → pure
  trial kernel → deterministic reassembly) so sweeps parallelise.
* :mod:`repro.core.traffic` — the per-trial unit generalised to a
  demand matrix: seeded permutation / hotspot / all-to-all generators,
  per-commodity routing through ``Router.route_demands``, and
  congestion metrics (routability, max/mean link load, probes per
  delivered commodity) — the single pair is the one-commodity case.
* :mod:`repro.core.lower_bounds` — Lemma 5 as an empirical certificate:
  estimate ``η``, ``Pr[(u~v) ∈ S]`` and ``Pr[u ~ v]`` for a concrete cut
  and obtain a CDF bound every local router must respect.
"""

from repro.core.complexity import (
    ComplexityMeasurement,
    TrialRecord,
    assemble_measurement,
    complexity_specs,
    measure_complexity,
    run_trial,
)
from repro.core.lower_bounds import (
    Lemma5Certificate,
    ball,
    cut_edges,
    estimate_certificate,
)
from repro.core.probe import (
    LocalityViolation,
    LocalProbeOracle,
    ProbeBudgetExceeded,
    ProbeOracle,
)
from repro.core.result import (
    FailureReason,
    InvalidPathError,
    RoutingResult,
    erase_loops,
    validate_path,
)
from repro.core.router import Router
from repro.core.traffic import (
    AllToAllTraffic,
    DemandMatrix,
    FixedTraffic,
    HotspotTraffic,
    PermutationTraffic,
    TrafficMeasurement,
    TrafficResult,
    assemble_traffic,
    run_traffic_trial,
    summarize_traffic,
    traffic_specs,
)

__all__ = [
    "AllToAllTraffic",
    "ComplexityMeasurement",
    "DemandMatrix",
    "FailureReason",
    "FixedTraffic",
    "HotspotTraffic",
    "InvalidPathError",
    "Lemma5Certificate",
    "LocalProbeOracle",
    "LocalityViolation",
    "PermutationTraffic",
    "ProbeBudgetExceeded",
    "ProbeOracle",
    "Router",
    "RoutingResult",
    "TrafficMeasurement",
    "TrafficResult",
    "TrialRecord",
    "assemble_measurement",
    "assemble_traffic",
    "ball",
    "complexity_specs",
    "cut_edges",
    "erase_loops",
    "estimate_certificate",
    "measure_complexity",
    "run_trial",
    "run_traffic_trial",
    "summarize_traffic",
    "traffic_specs",
    "validate_path",
]
