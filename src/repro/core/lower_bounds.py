"""Lemma 5 — the cut lower bound — as an empirical certificate.

The paper's Lemma 5: let ``(S, S̄)`` partition the vertices with the
target ``v ∈ S``.  If every edge ``e`` crossing the cut satisfies
``Pr[(v ~ e) ∈ S] ≤ η``, then for any local router ``X`` (query count,
routing ``u → v``):

    Pr[X < t]  ≤  ( t·η + Pr[(u ~ v) ∈ S] ) / Pr[u ~ v].

The proof is a union bound over the (at most ``t``) cut edges probed:
each has probability ≤ η of being the doorway to ``v``, and adaptivity
does not help because the bound is uniform over edge sets.

:func:`estimate_certificate` Monte-Carlo-estimates the three quantities
for a concrete graph, ``p`` and cut, yielding a curve
``t ↦ bound(t)`` that every local router's empirical CDF must respect.
Experiments E2 (hypercube, ``S`` = ball around the target) and E7
(double tree, ``S`` = second tree) overlay measured router CDFs against
this certificate.

On estimator bias: η is a **maximum** over cut edges of a per-edge
probability.  Estimating each per-edge probability and taking the max
is upward-biased (good: the bound stays conservative) but can be noisy;
we report both the max and the mean.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.graphs.base import Edge, Graph, Vertex
from repro.graphs.traversal import bfs_distances
from repro.percolation.cluster import connected
from repro.percolation.models import PercolationModel, TablePercolation
from repro.util.rng import derive_seed

__all__ = [
    "Lemma5Certificate",
    "ball",
    "cut_edges",
    "estimate_certificate",
]


def ball(graph: Graph, center: Vertex, radius: int) -> set[Vertex]:
    """Return the radius-``radius`` ball around ``center`` (paper's ``S``
    for the hypercube lower bound)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return set(bfs_distances(graph, center, max_depth=radius))


def cut_edges(graph: Graph, s: set[Vertex]) -> list[Edge]:
    """Return canonical keys of edges with exactly one endpoint in ``s``."""
    out = []
    for v in s:
        for w in graph.neighbors(v):
            if w not in s:
                out.append(graph.edge_key(v, w))
    return out


@dataclass(frozen=True)
class Lemma5Certificate:
    """Monte-Carlo estimates of the three Lemma 5 quantities."""

    eta_max: float
    eta_mean: float
    pr_uv_in_s: float
    pr_uv: float
    trials: int
    cut_size: int

    def bound(self, t: float, eta: float | None = None) -> float:
        """Return the Lemma 5 upper bound on ``Pr[X < t]`` (capped at 1).

        Uses :attr:`eta_max` unless an explicit ``eta`` (e.g. an exact
        theory value) is supplied.
        """
        if self.pr_uv == 0:
            raise ValueError("Pr[u ~ v] estimated as 0; bound undefined")
        eta_value = self.eta_max if eta is None else eta
        return min(1.0, (t * eta_value + self.pr_uv_in_s) / self.pr_uv)

    def min_queries_for(self, probability: float) -> float:
        """Return the ``t`` below which ``Pr[X < t] ≤ probability``.

        Inverts the bound: any local router needs at least this many
        queries to succeed with the given probability.
        """
        if self.eta_max == 0:
            return float("inf")
        return max(
            0.0,
            (probability * self.pr_uv - self.pr_uv_in_s) / self.eta_max,
        )


def _reachable_within(
    model: PercolationModel, start: Vertex, region: set[Vertex]
) -> set[Vertex]:
    """Return vertices of ``region`` connected to ``start`` inside it."""
    if start not in region:
        return set()
    seen = {start}
    queue: deque[Vertex] = deque([start])
    while queue:
        x = queue.popleft()
        for y in model.open_neighbors(x):
            if y in region and y not in seen:
                seen.add(y)
                queue.append(y)
    return seen


def estimate_certificate(
    graph: Graph,
    p: float,
    s: set[Vertex],
    source: Vertex,
    target: Vertex,
    trials: int = 200,
    seed: int = 0,
    model_factory: Callable[[Graph, float, int], PercolationModel] = (
        TablePercolation
    ),
    cut: Iterable[Edge] | None = None,
) -> Lemma5Certificate:
    """Monte-Carlo-estimate the Lemma 5 certificate for cut ``(S, S̄)``.

    Per trial (one percolation draw): compute the open cluster of
    ``target`` **inside** ``S`` once, then check which cut edges have
    their ``S``-endpoint in it; also record whether ``(u ~ v) ∈ S``
    (when ``u ∈ S``) and ground-truth ``u ~ v``.
    """
    if target not in s:
        raise ValueError("Lemma 5 requires the target inside S")
    if source in s and source == target:
        raise ValueError("source and target must differ")
    if trials < 1:
        raise ValueError("need at least one trial")
    cut_list = list(cut) if cut is not None else cut_edges(graph, s)
    if not cut_list:
        raise ValueError("the cut (S, S̄) has no edges; bound is vacuous")

    edge_hits = [0] * len(cut_list)
    uv_in_s = 0
    uv = 0
    # Identify, per cut edge, its endpoint inside S.
    s_endpoints = []
    for a, b in cut_list:
        if a in s and b in s:
            raise ValueError(f"edge {(a, b)!r} does not cross the cut")
        s_endpoints.append(a if a in s else b)

    for t in range(trials):
        model = model_factory(graph, p, derive_seed(seed, "lemma5", t))
        cluster = _reachable_within(model, target, s)
        for i, endpoint in enumerate(s_endpoints):
            if endpoint in cluster:
                edge_hits[i] += 1
        if source in cluster:
            uv_in_s += 1
        if connected(model, source, target):
            uv += 1

    eta_estimates = [hits / trials for hits in edge_hits]
    return Lemma5Certificate(
        eta_max=max(eta_estimates),
        eta_mean=sum(eta_estimates) / len(eta_estimates),
        pr_uv_in_s=uv_in_s / trials,
        pr_uv=uv / trials,
        trials=trials,
        cut_size=len(cut_list),
    )
