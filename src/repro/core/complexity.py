"""Routing-complexity measurement (Definition 2 of the paper).

The routing complexity of an algorithm ``A`` w.r.t. vertices ``u, v`` is
the number of probes ``A`` makes in ``G_p``, **conditioned on the event
{u ~ v}**.  Its distribution is estimated by rejection sampling:

1. draw an independent percolation per trial (seeded, replayable);
2. establish ground truth for ``{u ~ v}`` (a cluster BFS independent of
   the router — or, for complete routers, the router's own verdict; the
   A1 ablation confirms the two agree);
3. keep only connected trials; run the router with a probe budget and
   record queries, success and censoring.

The measurement is split into three phases so a single (graph, p)
sweep point can fan its trials out across worker processes:

* :func:`complexity_specs` emits one :class:`~repro.runtime.TrialSpec`
  per trial, each carrying its own seed derived up front from the
  master seed — the rejection-sampling hot loop is the parallel unit.
  The shared context (graph, router, pair, factory, conditioning) is
  frozen into one :class:`~repro.runtime.Workload` for the whole group,
  so a spec's wire form is its ``(trial, seed)`` tail plus a content
  id: the graph ships to each worker once, not once per trial;
* :func:`run_trial` is the pure per-trial kernel (one percolation draw,
  one conditioning check, at most one routing attempt) executed by a
  :class:`~repro.runtime.TrialRunner`, in any process;
* :func:`assemble_measurement` folds the :class:`TrialRecord` stream —
  returned in deterministic trial order by every runner — back into a
  :class:`ComplexityMeasurement`.

:func:`measure_complexity` composes the three for callers that want the
classic one-call interface; pass ``runner=`` to parallelise it.  The
result keeps every per-trial record so experiments can compute CDFs
(needed to compare against the Lemma 5 bound) as well as summaries.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic import TrafficResult

from repro.core.result import RoutingResult
from repro.core.router import Router
from repro.graphs.base import Graph, Vertex
from repro.percolation.cluster import connected
from repro.percolation.models import (
    HashPercolation,
    PercolationModel,
    TablePercolation,
)
from repro.runtime import TrialRunner, TrialSpec, Workload
from repro.util.rng import derive_seed
from repro.util.stats import Summary, proportion_ci, summarize

__all__ = [
    "ComplexityMeasurement",
    "TrialRecord",
    "assemble_measurement",
    "complexity_specs",
    "measure_complexity",
    "run_trial",
]

ModelFactory = Callable[[Graph, float, int], PercolationModel]


@dataclass(frozen=True)
class TrialRecord:
    """One percolation draw and (if conditioned in) one routing attempt.

    Single-pair trials carry their attempt in ``result``; demand-matrix
    trials (:func:`repro.core.traffic.run_traffic_trial`) carry their
    per-commodity outcome in ``traffic`` instead (``result`` stays
    ``None`` and ``connected`` means every commodity was delivered).
    """

    trial: int
    seed: int
    connected: bool
    result: RoutingResult | None = None
    traffic: "TrafficResult | None" = None

    @property
    def attempted(self) -> bool:
        return self.result is not None

    def __repr__(self) -> str:
        # Byte-stable with the pre-traffic dataclass repr: single-pair
        # records (traffic=None) must render identically to before the
        # field existed — the golden record streams and repr-parity
        # gates pin those bytes.
        base = (
            f"TrialRecord(trial={self.trial!r}, seed={self.seed!r}, "
            f"connected={self.connected!r}, result={self.result!r}"
        )
        if self.traffic is None:
            return base + ")"
        return base + f", traffic={self.traffic!r})"


@dataclass
class ComplexityMeasurement:
    """All trials of one (graph, p, router, pair) measurement."""

    graph_name: str
    router_name: str
    p: float
    source: Vertex
    target: Vertex
    budget: int | None
    records: list[TrialRecord] = field(default_factory=list)

    # -- derived statistics ------------------------------------------------

    @property
    def trials(self) -> int:
        """Total percolation draws (before conditioning)."""
        return len(self.records)

    @property
    def connected_trials(self) -> int:
        """Trials where ``u ~ v`` held (the conditioning event)."""
        return sum(r.connected for r in self.records)

    @property
    def connection_rate(self) -> float:
        """Empirical ``Pr[u ~ v]``."""
        if not self.records:
            raise ValueError("no trials recorded")
        return self.connected_trials / self.trials

    def successes(self) -> list[RoutingResult]:
        """Routing attempts that found a path."""
        return [
            r.result
            for r in self.records
            if r.result is not None and r.result.success
        ]

    @property
    def success_rate(self) -> float:
        """Fraction of *conditioned* trials in which the router succeeded.

        For a complete router with no budget this is 1 by definition;
        for the waypoint routers it reproduces the paper's "with
        probability 1 - exp(-c n^{1-α})" statements.
        """
        attempted = [r for r in self.records if r.attempted]
        if not attempted:
            raise ValueError("no conditioned trials; cannot compute rate")
        return len(self.successes()) / len(attempted)

    def success_rate_ci(self) -> tuple[float, float, float]:
        """Wilson 95% CI of :attr:`success_rate`."""
        attempted = sum(r.attempted for r in self.records)
        return proportion_ci(len(self.successes()), attempted)

    @property
    def censored_trials(self) -> int:
        """Attempts cut off by the probe budget (complexity ≥ budget)."""
        return sum(
            1
            for r in self.records
            if r.result is not None and r.result.censored
        )

    def query_counts(self, include_censored: bool = False) -> list[int]:
        """Per-attempt query counts (successes; optionally censored too).

        Censored counts are lower bounds on the true complexity, so
        including them *under-estimates* heavy tails — exactly the safe
        direction when demonstrating a lower bound.
        """
        counts = [res.queries for res in self.successes()]
        if include_censored:
            counts += [
                r.result.queries
                for r in self.records
                if r.result is not None and r.result.censored
            ]
        return counts

    def query_summary(self, include_censored: bool = False) -> Summary:
        """Summary statistics of the query distribution."""
        return summarize(self.query_counts(include_censored))

    def empirical_cdf(self, thresholds: Sequence[int]) -> list[float]:
        """Return ``Pr[X < t]`` for each ``t``, over conditioned trials.

        Censored attempts count as ``X >= budget``, which is exact as
        long as ``t <= budget`` — the regime the Lemma 5 comparison uses.
        """
        attempted = [r.result for r in self.records if r.result is not None]
        if not attempted:
            raise ValueError("no conditioned trials; CDF undefined")
        out = []
        for t in thresholds:
            below = sum(
                1 for res in attempted if res.success and res.queries < t
            )
            out.append(below / len(attempted))
        return out

    def path_lengths(self) -> list[int]:
        """Lengths of the found paths."""
        return [res.path_length for res in self.successes()]


def _validate(trials: int, router: Router, budget, conditioning: str) -> None:
    if trials < 1:
        raise ValueError("need at least one trial")
    if conditioning not in ("exact", "router", "none"):
        raise ValueError(f"unknown conditioning mode {conditioning!r}")
    if conditioning == "router" and not router.is_complete:
        raise ValueError(
            f"router {router.name!r} is not complete; its failures do not "
            "certify disconnection"
        )
    if conditioning == "router" and budget is not None:
        raise ValueError("router conditioning requires an unbounded budget")


def run_trial(
    graph: Graph,
    p: float,
    router: Router,
    source: Vertex,
    target: Vertex,
    trial: int,
    trial_seed: int,
    budget: int | None = None,
    model_factory: ModelFactory | None = None,
    conditioning: str = "exact",
) -> TrialRecord:
    """Execute one trial: percolate, condition, (maybe) route.

    The per-trial kernel of the measurement — a pure function of its
    arguments, so the same trial computes the same
    :class:`TrialRecord` in any process.  ``trial_seed`` is the seed
    already derived for this trial index (see :func:`complexity_specs`).
    """
    factory = model_factory or _default_factory(graph)
    model = factory(graph, p, trial_seed)
    if conditioning == "exact":
        is_conn = connected(model, source, target)
        result = None
        if is_conn:
            result = router.route(model, source, target, budget=budget)
    elif conditioning == "router":
        result = router.route(model, source, target, budget=None)
        is_conn = result.success
    else:  # "none"
        result = router.route(model, source, target, budget=budget)
        is_conn = result.success  # best-effort marker
    return TrialRecord(
        trial=trial, seed=trial_seed, connected=is_conn, result=result
    )


def complexity_specs(
    graph: Graph,
    p: float,
    router: Router,
    pair: tuple[Vertex, Vertex] | None = None,
    trials: int = 20,
    seed: int = 0,
    budget: int | None = None,
    model_factory: ModelFactory | None = None,
    conditioning: str = "exact",
    key: tuple = ("complexity",),
    demands=None,
) -> list[TrialSpec]:
    """Emit one :class:`TrialSpec` per trial of a measurement.

    Each spec calls :func:`run_trial` with the seed for its trial index
    derived up front (``derive_seed(seed, "complexity", t)`` — the same
    derivation the classic inline loop used, so the emitted stream
    reproduces it bit for bit).  Spec keys are ``key + (t,)``; pass the
    sweep-point label as ``key`` so error reports identify the point.

    The measurement context — graph, router, pair, budget, factory,
    conditioning — is emitted once as a shared
    :class:`~repro.runtime.Workload` referenced by every spec of the
    group, so a spec pickles to its per-trial ``(t, seed)`` tail plus a
    16-byte content id however large the graph is.  The returned specs
    keep the workload alive; see the ownership contract in
    :mod:`repro.runtime.workload`.

    ``demands=`` switches the trial unit from one probe pair to a
    demand matrix: specs then call :func:`~repro.core.traffic.
    run_traffic_trial` with the given demand factory (see
    :func:`~repro.core.traffic.traffic_specs`, which this delegates
    to).  ``pair`` and ``conditioning`` do not apply to demand trials —
    every commodity is attempted — so non-default values are rejected
    rather than silently ignored.
    """
    if demands is not None:
        from repro.core.traffic import traffic_specs

        if pair is not None:
            raise ValueError(
                "demands= replaces the probe pair; pass sources/targets "
                "through the demand factory instead"
            )
        if conditioning != "exact":
            raise ValueError(
                "demand trials attempt every commodity; conditioning "
                "does not apply"
            )
        return traffic_specs(
            graph,
            p,
            router,
            demands,
            trials=trials,
            seed=seed,
            budget=budget,
            model_factory=model_factory,
            key=key,
        )
    _validate(trials, router, budget, conditioning)
    source, target = pair if pair is not None else graph.canonical_pair()
    factory = model_factory or _default_factory(graph)
    workload = Workload(
        fn=run_trial,
        args=(graph, p, router, source, target),
        kwargs={
            "budget": budget,
            "model_factory": factory,
            "conditioning": conditioning,
        },
    )
    return [
        TrialSpec(
            key=tuple(key) + (t,),
            args=(t, derive_seed(seed, "complexity", t)),
            workload=workload,
        )
        for t in range(trials)
    ]


def assemble_measurement(
    graph: Graph,
    p: float,
    router: Router,
    records: Iterable[TrialRecord],
    pair: tuple[Vertex, Vertex] | None = None,
    budget: int | None = None,
    max_conditioned: int | None = None,
) -> ComplexityMeasurement:
    """Fold a trial-ordered :class:`TrialRecord` stream into a measurement.

    ``records`` must be in trial order (every runner returns results in
    submission order, so ``runner.run_values(complexity_specs(...))``
    qualifies).  ``max_conditioned`` truncates the stream right after
    the record in which the ``max_conditioned``-th conditioned attempt
    happened — the same cut the classic early-stopping loop made, since
    trials are independent.
    """
    source, target = pair if pair is not None else graph.canonical_pair()
    measurement = ComplexityMeasurement(
        graph_name=graph.name,
        router_name=router.name,
        p=p,
        source=source,
        target=target,
        budget=budget,
    )
    attempted = 0
    for record in records:
        measurement.records.append(record)
        attempted += record.attempted
        if max_conditioned is not None and attempted >= max_conditioned:
            break
    return measurement


def measure_complexity(
    graph: Graph,
    p: float,
    router: Router,
    pair: tuple[Vertex, Vertex] | None = None,
    trials: int = 20,
    seed: int = 0,
    budget: int | None = None,
    model_factory: ModelFactory | None = None,
    conditioning: str = "exact",
    max_conditioned: int | None = None,
    runner: TrialRunner | None = None,
) -> ComplexityMeasurement:
    """Estimate the routing complexity of ``router`` on ``graph`` at ``p``.

    Composes :func:`complexity_specs` → runner →
    :func:`assemble_measurement`; the result is identical for any
    runner and worker count (see the :mod:`repro.runtime` contract).

    Parameters
    ----------
    pair:
        (source, target); defaults to ``graph.canonical_pair()``.
    trials:
        Number of independent percolation draws **before** conditioning.
    budget:
        Probe budget per attempt (None = unbounded; only safe for
        complete routers on enumerable graphs).
    model_factory:
        How to percolate; default :class:`TablePercolation` for graphs
        that enumerate fewer than ~2·10⁶ edges, else lazy hashing.
    conditioning:
        ``"exact"`` — ground-truth cluster BFS decides ``{u ~ v}``;
        ``"router"`` — a *complete* router's own verdict decides (runs
        the router on every draw; failures certify disconnection);
        ``"none"`` — no conditioning (every draw is attempted and
        recorded as connected-unknown; used by threshold scans where
        disconnection itself is the signal).
    max_conditioned:
        Stop early once this many conditioned trials were attempted.
        Without a runner the trailing trials are never computed; with
        one, every trial runs (they are scheduled up front) and the
        record stream is truncated to the identical prefix.
    runner:
        A :class:`~repro.runtime.TrialRunner` to execute the trials;
        ``None`` runs them inline in the calling process.
    """
    specs = complexity_specs(
        graph,
        p,
        router,
        pair=pair,
        trials=trials,
        seed=seed,
        budget=budget,
        model_factory=model_factory,
        conditioning=conditioning,
    )
    if runner is None:
        # Lazy: assemble_measurement stops consuming at the
        # max_conditioned cut, so trailing trials are never executed.
        records = (spec.execute().value for spec in specs)
    else:
        records = runner.run_values(specs)
    return assemble_measurement(
        graph,
        p,
        router,
        records,
        pair=pair,
        budget=budget,
        max_conditioned=max_conditioned,
    )


def _default_factory(graph: Graph) -> ModelFactory:
    """Materialise small graphs; hash lazily on big ones."""
    try:
        too_big = graph.num_vertices() > 2_000_000
    except (OverflowError, ValueError):  # pragma: no cover - defensive
        too_big = True
    if too_big:
        return HashPercolation
    return TablePercolation
