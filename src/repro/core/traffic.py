"""Demand-matrix trials: many-commodity routing under load.

The paper measures one ``(source, target)`` probe per percolation draw;
a production network routes a **demand matrix**.  This module makes
"route a demand matrix" the per-trial unit while keeping the existing
single-pair machinery as the degenerate one-commodity case:

* :class:`DemandMatrix` — an ordered tuple of commodities, each a
  ``(source, target)`` pair routed independently over the same
  percolated graph;
* the demand *generators* (:class:`PermutationTraffic`,
  :class:`HotspotTraffic`, :class:`AllToAllTraffic`,
  :class:`FixedTraffic`) — frozen, picklable factories called as
  ``factory(graph, trial_seed)``, drawing their randomness from the
  same keyed-BLAKE2b streams as everything else
  (:func:`repro.util.rng.uniform_for`), so a trial's demands are a pure
  function of ``(master seed, labels, trial)``;
* :class:`TrafficResult` — the per-trial outcome: delivered fraction
  (*routability*), per-commodity query counts, and link congestion
  (max / mean link load over the delivered paths);
* :func:`run_traffic_trial` — the pure per-trial kernel (one
  percolation draw, one demand draw, one
  :meth:`~repro.core.router.Router.route_demands` pass), executed by
  any runner in any process;
* :func:`traffic_specs` / :func:`assemble_traffic` — the spec-emission
  and reassembly halves, mirroring
  :func:`~repro.core.complexity.complexity_specs` exactly (slim
  ``(trial, seed)`` tails against one shared workload), so demand
  trials inherit the parity, conformance, cluster and caching gates
  unchanged.

Congestion accounting is centralised in :func:`summarize_traffic`: both
the sequential-commodity path and the batched kernel path
(:mod:`repro.kernels.traffic`) feed their per-commodity
:class:`~repro.core.result.RoutingResult` lists through this one
function, so the derived floats are bit-identical by construction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.complexity import (
    ModelFactory,
    TrialRecord,
    _default_factory,
)
from repro.core.result import RoutingResult
from repro.core.router import Router
from repro.graphs.base import Graph, Vertex
from repro.runtime import TrialSpec, Workload
from repro.util.rng import derive_seed, uniform_for

__all__ = [
    "AllToAllTraffic",
    "DemandMatrix",
    "FixedTraffic",
    "HotspotTraffic",
    "PermutationTraffic",
    "TrafficMeasurement",
    "TrafficResult",
    "assemble_traffic",
    "run_traffic_trial",
    "summarize_traffic",
    "traffic_specs",
]


@dataclass(frozen=True)
class DemandMatrix:
    """An ordered set of commodities to route over one percolation.

    Each pair is routed independently (fresh oracle, independent probe
    accounting); the *order* is part of the value — per-commodity
    results line up index for index.
    """

    pairs: tuple[tuple[Vertex, Vertex], ...]

    @property
    def commodities(self) -> int:
        return len(self.pairs)

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("demand matrix needs at least one commodity")


_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)


def _shuffled_vertices(graph: Graph, trial_seed: int) -> list[Vertex]:
    """The graph's vertices in a seeded, deterministic random order.

    One BLAKE2b derivation per trial seeds a SplitMix64 stream; each
    vertex's sort key is the stream word at its position in the graph's
    (deterministic) enumeration.  The order is a pure function of
    ``(trial_seed, graph)``, identical in every process, and costs one
    hash plus a vectorized mix instead of a hash per vertex.  SplitMix64
    is a bijection on 64-bit words, so the keys are tie-free.
    """
    canonical = list(graph.vertices())
    stream = np.uint64(derive_seed(trial_seed, "traffic", "order"))
    x = stream + np.arange(len(canonical), dtype=np.uint64) * _SPLITMIX_GAMMA
    z = (x ^ (x >> np.uint64(30))) * _SPLITMIX_M1
    z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_M2
    z ^= z >> np.uint64(31)
    return [canonical[i] for i in np.argsort(z, kind="stable")]


@dataclass(frozen=True)
class FixedTraffic:
    """A constant demand matrix, ignoring the trial seed.

    The degenerate bridge to the classic measurement: a one-pair
    ``FixedTraffic`` makes :func:`run_traffic_trial` route exactly the
    probe :func:`~repro.core.complexity.run_trial` routes (under
    ``conditioning="none"``) — the single-pair path as the
    one-commodity case.
    """

    pairs: tuple[tuple[Vertex, Vertex], ...]

    def __call__(self, graph: Graph, trial_seed: int) -> DemandMatrix:
        for source, target in self.pairs:
            graph._require_vertex(source)
            graph._require_vertex(target)
        return DemandMatrix(self.pairs)


@dataclass(frozen=True)
class PermutationTraffic:
    """``commodities`` sources each sending to one distinct receiver.

    A seeded vertex shuffle picks the participants; commodity ``i``
    sends from ``order[i]`` to ``order[i+1 mod commodities]`` — a
    single cycle, so the demand is a fixed-point-free partial
    permutation with every participant sending and receiving exactly
    once.
    """

    commodities: int

    def __call__(self, graph: Graph, trial_seed: int) -> DemandMatrix:
        c = self.commodities
        if c < 1:
            raise ValueError("need at least one commodity")
        order = _shuffled_vertices(graph, trial_seed)
        if len(order) < max(2, c):
            raise ValueError(
                f"graph has {len(order)} vertices; cannot host "
                f"{c} permutation commodities"
            )
        if c == 1:
            return DemandMatrix(((order[0], order[1]),))
        chosen = order[:c]
        return DemandMatrix(
            tuple((chosen[i], chosen[(i + 1) % c]) for i in range(c))
        )


@dataclass(frozen=True)
class HotspotTraffic:
    """Permutation traffic skewed toward one hot receiver.

    The seeded shuffle's first vertex is the hotspot; each of the
    ``commodities`` senders (the next vertices of the shuffle) targets
    the hotspot with probability ``skew`` — an independent per-commodity
    BLAKE2b coin — and its cyclic permutation partner otherwise.
    ``skew=0`` recovers permutation traffic among the senders;
    ``skew=1`` is full incast, every flow converging on one vertex.
    """

    commodities: int
    skew: float

    def __call__(self, graph: Graph, trial_seed: int) -> DemandMatrix:
        c = self.commodities
        if c < 1:
            raise ValueError("need at least one commodity")
        if not 0.0 <= self.skew <= 1.0:
            raise ValueError(f"skew must be in [0, 1], got {self.skew!r}")
        order = _shuffled_vertices(graph, trial_seed)
        if len(order) < c + 1:
            raise ValueError(
                f"graph has {len(order)} vertices; cannot host a hotspot "
                f"plus {c} senders"
            )
        hotspot = order[0]
        senders = order[1 : c + 1]
        pairs = []
        for i, sender in enumerate(senders):
            partner = senders[(i + 1) % c]
            hot = uniform_for(trial_seed, "traffic", "hot", i) < self.skew
            if hot or partner == sender:
                pairs.append((sender, hotspot))
            else:
                pairs.append((sender, partner))
        return DemandMatrix(tuple(pairs))


@dataclass(frozen=True)
class AllToAllTraffic:
    """Every ordered pair among a seeded group of ``group`` vertices.

    ``group * (group - 1)`` commodities — the densest workload shape,
    for capacity questions where total offered load matters more than
    who sends to whom.
    """

    group: int

    def __call__(self, graph: Graph, trial_seed: int) -> DemandMatrix:
        g = self.group
        if g < 2:
            raise ValueError("all-to-all needs a group of at least two")
        order = _shuffled_vertices(graph, trial_seed)
        if len(order) < g:
            raise ValueError(
                f"graph has {len(order)} vertices; cannot host an "
                f"all-to-all group of {g}"
            )
        members = order[:g]
        return DemandMatrix(
            tuple((a, b) for a in members for b in members if a != b)
        )


@dataclass(frozen=True)
class TrafficResult:
    """One trial's demand-matrix outcome: delivery plus congestion.

    ``queries`` and ``delivered`` line up with the demand matrix's
    commodity order.  Link loads count delivered paths crossing each
    undirected edge; ``mean_link_load`` averages over *all* graph
    edges (idle links included), so it is total carried hops divided
    by capacity.
    """

    commodities: int
    delivered: int
    queries: tuple[int, ...]
    delivered_mask: tuple[bool, ...]
    max_link_load: int
    mean_link_load: float

    @property
    def routability(self) -> float:
        """Delivered fraction of the offered commodities."""
        return self.delivered / self.commodities

    @property
    def total_queries(self) -> int:
        return sum(self.queries)

    @property
    def queries_per_delivered(self) -> float:
        """Probe cost per delivered commodity (NaN if none delivered)."""
        if not self.delivered:
            return float("nan")
        return self.total_queries / self.delivered

    def __post_init__(self) -> None:
        if len(self.queries) != self.commodities:
            raise ValueError("queries must cover every commodity")
        if len(self.delivered_mask) != self.commodities:
            raise ValueError("delivered_mask must cover every commodity")
        if self.delivered != sum(self.delivered_mask):
            raise ValueError("delivered must equal the mask's popcount")


def summarize_traffic(
    graph: Graph, results: Sequence[RoutingResult]
) -> TrafficResult:
    """Fold per-commodity routing results into one :class:`TrafficResult`.

    The **single** congestion accountant: both the sequential-commodity
    path and the batched kernel path call this on their (identical)
    result lists, so every derived number — including the one float
    division behind ``mean_link_load`` — is computed exactly once, the
    same way, on both paths.
    """
    loads: dict = {}
    for res in results:
        if res.success and res.path is not None:
            for a, b in zip(res.path, res.path[1:]):
                k = graph.edge_key(a, b)
                loads[k] = loads.get(k, 0) + 1
    carried = sum(loads.values())
    return TrafficResult(
        commodities=len(results),
        delivered=sum(1 for res in results if res.success),
        queries=tuple(res.queries for res in results),
        delivered_mask=tuple(bool(res.success) for res in results),
        max_link_load=max(loads.values(), default=0),
        mean_link_load=carried / graph.num_edges(),
    )


def run_traffic_trial(
    graph: Graph,
    p: float,
    router: Router,
    demand_factory,
    trial: int,
    trial_seed: int,
    budget: int | None = None,
    model_factory: ModelFactory | None = None,
) -> TrialRecord:
    """Execute one demand-matrix trial: percolate, draw demands, route.

    The traffic counterpart of :func:`~repro.core.complexity.run_trial`
    — a pure function of its arguments, so the same trial computes the
    same :class:`~repro.core.complexity.TrialRecord` in any process.
    There is no conditioning step: every commodity is attempted, and
    partial delivery *is* the measurement.  ``record.connected`` means
    full delivery (every commodity routed); ``record.result`` stays
    ``None`` — the per-commodity outcomes live in ``record.traffic``.
    """
    factory = model_factory or _default_factory(graph)
    model = factory(graph, p, trial_seed)
    demands = demand_factory(graph, trial_seed)
    results = router.route_demands(model, demands, budget=budget)
    traffic = summarize_traffic(graph, results)
    return TrialRecord(
        trial=trial,
        seed=trial_seed,
        connected=traffic.delivered == traffic.commodities,
        result=None,
        traffic=traffic,
    )


def traffic_specs(
    graph: Graph,
    p: float,
    router: Router,
    demands,
    trials: int = 20,
    seed: int = 0,
    budget: int | None = None,
    model_factory: ModelFactory | None = None,
    key: tuple = ("traffic",),
) -> list[TrialSpec]:
    """Emit one :class:`TrialSpec` per demand-matrix trial.

    The traffic twin of :func:`~repro.core.complexity.complexity_specs`
    (which delegates here when given ``demands=``): the shared context
    — graph, router, demand factory, budget, percolation factory — is
    frozen into one :class:`~repro.runtime.Workload`, and each spec
    carries only its ``(t, derive_seed(seed, "traffic", t))`` tail, so
    demand trials ride the same chunk-kernel seam, record wire and
    result cache as single-pair trials.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if not callable(demands):
        raise ValueError(
            f"demands must be a demand factory callable, got {demands!r}"
        )
    factory = model_factory or _default_factory(graph)
    workload = Workload(
        fn=run_traffic_trial,
        args=(graph, p, router, demands),
        kwargs={"budget": budget, "model_factory": factory},
    )
    return [
        TrialSpec(
            key=tuple(key) + (t,),
            args=(t, derive_seed(seed, "traffic", t)),
            workload=workload,
        )
        for t in range(trials)
    ]


@dataclass
class TrafficMeasurement:
    """All trials of one (graph, p, router, demands) traffic sweep point."""

    graph_name: str
    router_name: str
    p: float
    budget: int | None
    records: list[TrialRecord] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return len(self.records)

    def traffics(self) -> list[TrafficResult]:
        return [r.traffic for r in self.records if r.traffic is not None]

    @property
    def offered(self) -> int:
        """Total commodities offered across trials."""
        return sum(t.commodities for t in self.traffics())

    @property
    def delivered(self) -> int:
        """Total commodities delivered across trials."""
        return sum(t.delivered for t in self.traffics())

    @property
    def routability(self) -> float:
        """Pooled delivered fraction over every offered commodity."""
        offered = self.offered
        if not offered:
            raise ValueError("no traffic trials recorded")
        return self.delivered / offered

    @property
    def full_delivery_rate(self) -> float:
        """Fraction of trials in which *every* commodity was delivered."""
        traffics = self.traffics()
        if not traffics:
            raise ValueError("no traffic trials recorded")
        full = sum(1 for t in traffics if t.delivered == t.commodities)
        return full / len(traffics)

    def median_queries_per_delivered(self) -> float:
        """Median per-trial probe cost per delivered commodity.

        Trials that delivered nothing carry no cost-per-delivery signal
        and are excluded; NaN if no trial delivered anything.
        """
        values = sorted(
            t.queries_per_delivered for t in self.traffics() if t.delivered
        )
        return _median(values)

    def max_link_load(self) -> int:
        """The worst link congestion seen in any trial."""
        return max((t.max_link_load for t in self.traffics()), default=0)

    def median_max_link_load(self) -> float:
        """Median over trials of the per-trial max link load."""
        return _median(sorted(float(t.max_link_load) for t in self.traffics()))

    def mean_link_load(self) -> float:
        """Mean over trials of the per-trial mean link load."""
        traffics = self.traffics()
        if not traffics:
            return float("nan")
        return sum(t.mean_link_load for t in traffics) / len(traffics)


def _median(ordered: list[float]) -> float:
    if not ordered:
        return float("nan")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2


def assemble_traffic(
    graph: Graph,
    p: float,
    router: Router,
    records,
    budget: int | None = None,
) -> TrafficMeasurement:
    """Fold a trial-ordered record stream into a measurement.

    ``records`` must be in trial order — every runner returns results
    in submission order, so ``runner.run_values(traffic_specs(...))``
    (or the ``run_grouped`` group) qualifies.
    """
    measurement = TrafficMeasurement(
        graph_name=graph.name,
        router_name=router.name,
        p=p,
        budget=budget,
    )
    for record in records:
        if record.traffic is None:
            raise ValueError(
                f"trial {record.trial} carries no traffic result; "
                "assemble_traffic folds demand-matrix records only"
            )
        measurement.records.append(record)
    return measurement
