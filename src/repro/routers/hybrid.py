"""Hybrid greedy router — the remark after Theorem 3(ii), implemented.

The paper: *"A natural approach would be to use greedy routing ...
While this strategy may work most of the way, in the final steps a more
extensive search is required.  It may be the case though that a greedy
approach at the early stages of the routing would reduce the exponent
in the complexity of the algorithm."*

:class:`HybridGreedyRouter` does exactly that: strictly-monotone greedy
descent (with backtracking) while the current vertex is farther than
``switch_distance`` from the target, then an unrestricted local BFS
from everything reached so far for the final approach.  Complete —
if greedy strands itself, the BFS phase inherits the whole reached
cluster and finishes the job exhaustively.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.probe import ProbeOracle
from repro.core.router import Router
from repro.graphs.base import Graph, Vertex

__all__ = ["HybridGreedyRouter"]


class HybridGreedyRouter(Router):
    """Greedy descent far from the target, best-first search near it."""

    is_local = True
    is_complete = True

    def __init__(self, switch_distance: int = 2) -> None:
        if switch_distance < 0:
            raise ValueError(
                f"switch distance must be >= 0, got {switch_distance}"
            )
        self.switch_distance = switch_distance
        self.name = f"hybrid-greedy(switch={switch_distance})"

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        graph = oracle.graph
        # Phase 1: greedy monotone DFS while far from the target.
        parent: dict[Vertex, Vertex | None] = {source: None}
        path = [source]
        stack = [iter(self._descending(graph, source, target))]
        while stack:
            x = path[-1]
            if graph.distance(x, target) <= self.switch_distance:
                break  # close enough; switch to exhaustive search
            advanced = False
            for y in stack[-1]:
                if y in parent:
                    continue
                if not oracle.probe(x, y):
                    continue
                parent[y] = x
                path.append(y)
                if y == target:
                    return path
                stack.append(iter(self._descending(graph, y, target)))
                advanced = True
                break
            if not advanced:
                stack.pop()
                path.pop()
        # Phase 2: goal-directed best-first search over open edges,
        # seeded with everything phase 1 reached (greedy may have
        # stranded; the whole reached set participates).  Complete: every
        # edge off the reached cluster eventually enters the heap.
        counter = itertools.count()
        heap: list[tuple[int, int, Vertex, Vertex]] = []

        def push_candidates(x: Vertex) -> None:
            for y in graph.neighbors(x):
                if y not in parent:
                    heapq.heappush(
                        heap,
                        (graph.distance(y, target), next(counter), x, y),
                    )

        for x in list(parent):
            push_candidates(x)
        while heap:
            _, _, x, y = heapq.heappop(heap)
            if y in parent:
                continue
            if not oracle.probe(x, y):
                continue
            parent[y] = x
            if y == target:
                return self._backtrack(parent, y)
            push_candidates(y)
        return None

    @staticmethod
    def _descending(graph: Graph, v: Vertex, target: Vertex) -> list[Vertex]:
        here = graph.distance(v, target)
        return sorted(
            (
                w
                for w in graph.neighbors(v)
                if graph.distance(w, target) < here
            ),
            key=repr,
        )

    @staticmethod
    def _backtrack(parent: dict, v: Vertex) -> list[Vertex]:
        path = [v]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        path.reverse()
        return path
