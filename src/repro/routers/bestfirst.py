"""Best-first (A*-flavoured) local router.

A third member of the "natural local algorithms" suite: instead of
BFS's indiscriminate flood or DFS's commit-and-backtrack, expand the
frontier edge whose far endpoint looks closest to the target under the
non-faulty metric.  This is the strongest *generic* local heuristic one
would deploy in practice, so its failure to beat the Theorem 3(i)/7
lower bounds is the most convincing empirical evidence that the bounds
bite all reasonable algorithms, not just naive ones.

Complete: every edge adjacent to the reached cluster eventually gets
probed if the search runs dry.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.probe import ProbeOracle
from repro.core.router import Router
from repro.graphs.base import Vertex

__all__ = ["BestFirstRouter"]


class BestFirstRouter(Router):
    """Greedy best-first search over probed-open edges (local, complete).

    The priority of a candidate probe ``(x, y)`` is
    ``d(y, target)`` under the graph's analytic metric, with ties broken
    by insertion order (deterministic).
    """

    name = "best-first"
    is_local = True
    is_complete = True

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        graph = oracle.graph
        counter = itertools.count()  # FIFO tie-break, deterministic
        parent: dict[Vertex, Vertex | None] = {source: None}
        heap: list[tuple[int, int, Vertex, Vertex]] = []

        def push_candidates(x: Vertex) -> None:
            for y in graph.neighbors(x):
                if y not in parent:
                    heapq.heappush(
                        heap, (graph.distance(y, target), next(counter), x, y)
                    )

        push_candidates(source)
        while heap:
            _, _, x, y = heapq.heappop(heap)
            if y in parent:
                continue  # reached via a better edge meanwhile
            if not oracle.probe(x, y):
                continue
            parent[y] = x
            if y == target:
                path = [y]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            push_candidates(y)
        return None
