"""Waypoint routing — the shared engine behind Theorems 3(ii) and 4.

Both upper-bound algorithms in the paper have the same shape:

1. Fix a geodesic ``u = u_0, u_1, …, u_m = v`` of the *non-faulty*
   graph (hypercube: flip differing bits in order; mesh: adjust
   coordinates — both provided by ``graph.shortest_path``).
2. From the current waypoint, run a breadth-first search **in the
   percolated graph** (probing as it goes) until it stumbles on *any*
   later waypoint ``u_j`` (``j > i``); hop there and repeat.

On the mesh (Theorem 4), for any ``p > p_c`` the next giant-component
waypoint is O(1) hops along the geodesic and O(1) chemical distance
away, so each segment costs O(1) expected probes and the total is
O(n).  On the hypercube with ``p = n^{-α}``, ``α < 1/2`` (Theorem
3(ii)), consecutive waypoints are "good" vertices w.h.p. and their
percolation distance is bounded by ``l(α) = O((1-2α)^{-1})``, giving
``poly(n)`` total probes with probability ``1 - exp(-c n^{1-α})``.

``max_radius`` caps the per-segment search depth.  With ``None`` the
search may exhaust the whole open cluster, which makes the router
*complete* (the last waypoint is the target itself); a finite cap
trades completeness for the paper's poly(n) guarantee and is what the
A2 ablation varies.
"""

from __future__ import annotations

from repro.core.probe import ProbeOracle
from repro.core.router import Router
from repro.graphs.base import Vertex

__all__ = ["HypercubeWaypointRouter", "MeshWaypointRouter", "WaypointRouter"]


class WaypointRouter(Router):
    """Geodesic-waypoint router with bounded per-segment BFS."""

    is_local = True

    def __init__(
        self, max_radius: int | None = None, name: str | None = None
    ) -> None:
        if max_radius is not None and max_radius < 1:
            raise ValueError(f"max_radius must be >= 1, got {max_radius}")
        self.max_radius = max_radius
        # Unbounded segment search explores the full open cluster before
        # giving up, and the target is itself a waypoint => complete.
        self.is_complete = max_radius is None
        self.name = name or (
            "waypoint" if max_radius is None else f"waypoint(r<={max_radius})"
        )

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        waypoints = oracle.graph.shortest_path(source, target)
        index = {w: j for j, w in enumerate(waypoints)}
        path = [source]
        current = source
        position = 0
        while current != target:
            segment = self._segment_search(oracle, current, index, position)
            if segment is None:
                return None
            path.extend(segment[1:])
            current = segment[-1]
            position = index[current]
        return path

    def _segment_search(
        self,
        oracle: ProbeOracle,
        start: Vertex,
        index: dict[Vertex, int],
        position: int,
    ) -> list[Vertex] | None:
        """BFS in the percolated graph until a waypoint past ``position``.

        Returns the open path from ``start`` to the discovered waypoint,
        or ``None`` if the (radius-capped) search exhausts.
        """
        graph = oracle.graph
        parent: dict[Vertex, Vertex | None] = {start: None}
        frontier = [start]
        depth = 0
        while frontier:
            depth += 1
            if self.max_radius is not None and depth > self.max_radius:
                return None
            next_frontier: list[Vertex] = []
            for x in frontier:
                for y in graph.neighbors(x):
                    if y in parent:
                        continue
                    if not oracle.probe(x, y):
                        continue
                    parent[y] = x
                    if index.get(y, -1) > position:
                        out = [y]
                        while parent[out[-1]] is not None:
                            out.append(parent[out[-1]])
                        out.reverse()
                        return out
                    next_frontier.append(y)
            frontier = next_frontier
        return None


class HypercubeWaypointRouter(WaypointRouter):
    """Theorem 3(ii): waypoints along a bit-flip geodesic.

    The default radius cap follows the paper's ``l(α) = O((1-2α)^{-1})``
    percolation-distance bound between consecutive good vertices; pass
    ``alpha`` to set it, or ``max_radius`` explicitly.
    """

    def __init__(
        self,
        alpha: float | None = None,
        max_radius: int | None = None,
        slack: int = 2,
    ) -> None:
        if alpha is not None:
            if not 0 <= alpha < 0.5:
                raise ValueError(
                    f"theorem 3(ii) requires alpha in [0, 1/2), got {alpha}"
                )
            if max_radius is not None:
                raise ValueError("pass either alpha or max_radius, not both")
            max_radius = max(3, round(slack / (1 - 2 * alpha)))
        super().__init__(
            max_radius=max_radius,
            name=(
                "hypercube-waypoint"
                if max_radius is None
                else f"hypercube-waypoint(r<={max_radius})"
            ),
        )


class MeshWaypointRouter(WaypointRouter):
    """Theorem 4: waypoints along a lattice geodesic, unbounded search.

    Unbounded per-segment BFS keeps the router complete; above ``p_c``
    the expected per-segment work is O(1) anyway (Antal–Pisztora), which
    is exactly what experiment E4 measures.
    """

    def __init__(self, max_radius: int | None = None) -> None:
        super().__init__(
            max_radius=max_radius,
            name=(
                "mesh-waypoint"
                if max_radius is None
                else f"mesh-waypoint(r<={max_radius})"
            ),
        )
