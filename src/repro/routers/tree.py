"""Double-binary-tree routers (Theorems 7 and 9).

The local side needs no special code — :class:`DirectedDFSRouter` *is*
the natural local strategy on ``TT_n`` (dive to a leaf, climb while
open, backtrack), and Theorem 7 says every local strategy pays
``≈ p^{-n}`` anyway.  What does need special code is the paper's oracle
trick:

:class:`MirrorPairOracleRouter` (Theorem 9) probes each tree-``a`` edge
**together with its mirror** in tree ``b``.  A pair is "open" iff both
edges are; pairs are independent with probability ``p²``, so the open
pairs below the root form a Galton–Watson tree that is supercritical
exactly when ``p > 1/√2`` (Lemma 6's threshold).  A DFS over open pairs
reaching a leaf ``w`` certifies simultaneously the branch ``x → w`` in
tree ``a`` and the mirrored branch ``w → y`` in tree ``b``; the expected
number of pairs probed is O(n) because failed branches are subcritical
GW trees of finite expected size.
"""

from __future__ import annotations

from repro.core.probe import ProbeOracle
from repro.core.router import Router
from repro.graphs.base import Vertex
from repro.graphs.double_tree import DoubleBinaryTree

__all__ = ["MirrorPairOracleRouter"]


class MirrorPairOracleRouter(Router):
    """Theorem 9's oracle router between the roots of ``TT_n``.

    Only routes root-to-root on a :class:`DoubleBinaryTree` (the paper's
    setting); anything else raises :class:`ValueError`.  Incomplete by
    design: it only finds *mirror-symmetric* paths, which exist with
    probability bounded away from 0 iff ``p > 1/√2`` — when the roots
    are connected but no mirror path exists, it returns ``None``.
    """

    name = "mirror-pair-oracle"
    is_local = False
    is_complete = False

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        graph = oracle.graph
        if not isinstance(graph, DoubleBinaryTree):
            raise ValueError(
                "MirrorPairOracleRouter only runs on DoubleBinaryTree, "
                f"got {graph.name}"
            )
        roots = set(graph.roots())
        if {source, target} != roots:
            raise ValueError(
                "MirrorPairOracleRouter routes between the two roots; got "
                f"{source!r} → {target!r}"
            )
        # DFS from the source root over mirror-open edge pairs.  We walk
        # tree `source_side` explicitly; every probe also queries the
        # mirrored edge of the other tree.
        source_side = source[0]
        leaf = self._pair_dfs(oracle, graph, source_side)
        if leaf is None:
            return None
        # Certified open: source-side branch to `leaf` and its mirror.
        down = graph.shortest_path(source, leaf)
        up = graph.shortest_path(leaf, target)
        return down + up[1:]

    def _pair_dfs(
        self,
        oracle: ProbeOracle,
        graph: DoubleBinaryTree,
        side: str,
    ) -> Vertex | None:
        """Return a leaf reachable from the ``side`` root via open pairs."""
        root = (side, 1)
        stack: list[Vertex] = [root]
        while stack:
            node = stack.pop()
            if node[0] == "leaf":
                return node
            for child in self._children(graph, node):
                if self._pair_open(oracle, graph, node, child):
                    stack.append(child)
        return None

    @staticmethod
    def _children(graph: DoubleBinaryTree, node: Vertex) -> list[Vertex]:
        """The two downward neighbours of an internal node."""
        side, k = node
        return [
            graph._from_heap(side, 2 * k),
            graph._from_heap(side, 2 * k + 1),
        ]

    @staticmethod
    def _pair_open(
        oracle: ProbeOracle,
        graph: DoubleBinaryTree,
        parent: Vertex,
        child: Vertex,
    ) -> bool:
        """Probe an edge together with its mirror (two queries)."""
        edge = graph.edge_key(parent, child)
        mirror = graph.mirror_edge(edge)
        # Probe both unconditionally: the paper's pair-probing costs two
        # queries per pair; short-circuiting would only flatter us.
        first = oracle.probe(*edge)
        second = oracle.probe(*mirror)
        return first and second
