"""Breadth-first routers — the completeness baselines.

:class:`LocalBFSRouter` is the paper's "simple upper bound": probing the
whole reachable cluster (tantamount to probing the entire graph) always
finds a path if one exists.  Every other local algorithm is measured
against it.

:class:`BidirectionalBFSRouter` is the analogous oracle-model baseline:
it alternates BFS layers from both endpoints, which is legal only
because oracle routing may probe around the *target* before having
reached it.
"""

from __future__ import annotations

from collections import deque

from repro.core.probe import ProbeOracle
from repro.core.router import Router
from repro.graphs.base import Vertex

__all__ = ["BidirectionalBFSRouter", "LocalBFSRouter"]


def _backtrack(parent: dict, v: Vertex) -> list[Vertex]:
    path = [v]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


class LocalBFSRouter(Router):
    """Exhaustive local BFS: probe every edge adjacent to the reached set.

    Complete: if it returns ``None`` (and no budget interfered), the
    source's open cluster was fully explored and does not contain the
    target.
    """

    name = "local-bfs"
    is_local = True
    is_complete = True

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        graph = oracle.graph
        parent: dict[Vertex, Vertex | None] = {source: None}
        queue: deque[Vertex] = deque([source])
        while queue:
            x = queue.popleft()
            for y in graph.neighbors(x):
                if not oracle.probe(x, y):
                    continue
                if y in parent:
                    continue
                parent[y] = x
                if y == target:
                    return _backtrack(parent, y)
                queue.append(y)
        return None


class BidirectionalBFSRouter(Router):
    """Oracle-model BFS growing simultaneously from source and target.

    Alternates expanding the smaller frontier; stops when the two trees
    meet.  Complete, like the local version, but typically explores the
    square root of the volume on graphs with exponential growth.
    """

    name = "bidirectional-bfs"
    is_local = False
    is_complete = True

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        graph = oracle.graph
        parent_s: dict[Vertex, Vertex | None] = {source: None}
        parent_t: dict[Vertex, Vertex | None] = {target: None}
        queue_s: deque[Vertex] = deque([source])
        queue_t: deque[Vertex] = deque([target])
        while queue_s and queue_t:
            # expand the smaller live frontier
            if len(queue_s) <= len(queue_t):
                meet = self._expand(oracle, queue_s, parent_s, parent_t)
            else:
                meet = self._expand(oracle, queue_t, parent_t, parent_s)
            if meet is not None:
                return self._join(parent_s, parent_t, meet, source)
        return None

    @staticmethod
    def _expand(
        oracle: ProbeOracle,
        queue: deque,
        own: dict,
        other: dict,
    ) -> Vertex | None:
        """Expand one vertex; return a meeting vertex if trees touch."""
        x = queue.popleft()
        for y in oracle.graph.neighbors(x):
            if not oracle.probe(x, y):
                continue
            if y not in own:
                own[y] = x
                queue.append(y)
            if y in other:
                return y
        return None

    @staticmethod
    def _join(
        parent_s: dict, parent_t: dict, meet: Vertex, source: Vertex
    ) -> list[Vertex]:
        left = _backtrack(parent_s, meet)  # source … meet
        right = _backtrack(parent_t, meet)  # target … meet
        right.reverse()  # meet … target
        if left[0] != source:  # pragma: no cover - defensive
            raise AssertionError("source tree backtrack broken")
        return left + right[1:]
