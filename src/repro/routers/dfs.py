"""Depth-first local routers.

Two members of the "natural local algorithms" suite used to exhibit the
lower bounds (a lower bound on *every* local algorithm cannot be tested
directly; we test a representative suite and the Lemma 5 certificate):

* :class:`DirectedDFSRouter` — depth-first search that always explores
  the neighbour closest to the target first (by the non-faulty metric).
  On the double tree this is exactly the strategy Theorem 7 defeats:
  dive through the first tree, climb the second while lucky, backtrack
  on a closed edge.  Complete, because a vertex-marked DFS eventually
  visits the whole open cluster.
* :class:`GreedyRouter` — only ever moves strictly closer to the target
  (with backtracking over the descent DAG).  This is the "natural
  approach" the paper's remark after Theorem 3(ii) discusses: it works
  most of the way but gets stuck near the target, so it is *incomplete*;
  the A1/E1 ablations quantify how often.
"""

from __future__ import annotations

from repro.core.probe import ProbeOracle
from repro.core.router import Router
from repro.graphs.base import Graph, Vertex

__all__ = ["DirectedDFSRouter", "GreedyRouter"]


class DirectedDFSRouter(Router):
    """Target-directed depth-first search (local, complete)."""

    name = "directed-dfs"
    is_local = True
    is_complete = True

    def _ordered_neighbors(
        self, graph: Graph, v: Vertex, target: Vertex
    ) -> list[Vertex]:
        """Neighbours sorted by (metric distance to target, canonical)."""
        return sorted(
            graph.neighbors(v),
            key=lambda w: (graph.distance(w, target), repr(w)),
        )

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        graph = oracle.graph
        visited = {source}
        path = [source]
        stack = [iter(self._ordered_neighbors(graph, source, target))]
        while stack:
            advanced = False
            for y in stack[-1]:
                x = path[-1]
                if y in visited:
                    continue
                if not oracle.probe(x, y):
                    continue
                visited.add(y)
                path.append(y)
                if y == target:
                    return path
                stack.append(iter(self._ordered_neighbors(graph, y, target)))
                advanced = True
                break
            if not advanced:
                stack.pop()
                path.pop()
        return None


class GreedyRouter(Router):
    """Monotone greedy descent with backtracking (local, incomplete).

    Explores only edges that strictly decrease the metric distance to
    the target, depth-first.  Finds a path iff a *monotone* open path
    exists; fails (returns ``None``) otherwise.
    """

    name = "greedy"
    is_local = True
    is_complete = False

    def _descending(
        self, graph: Graph, v: Vertex, target: Vertex
    ) -> list[Vertex]:
        here = graph.distance(v, target)
        return sorted(
            (w for w in graph.neighbors(v) if graph.distance(w, target) < here),
            key=repr,
        )

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        graph = oracle.graph
        visited = {source}
        path = [source]
        stack = [iter(self._descending(graph, source, target))]
        while stack:
            advanced = False
            for y in stack[-1]:
                x = path[-1]
                if y in visited:
                    continue
                if not oracle.probe(x, y):
                    continue
                visited.add(y)
                path.append(y)
                if y == target:
                    return path
                stack.append(iter(self._descending(graph, y, target)))
                advanced = True
                break
            if not advanced:
                stack.pop()
                path.pop()
        return None
