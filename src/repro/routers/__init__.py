"""Routing algorithms: everything the paper defines, plus baselines.

=============================  =========  ==========  =====================
Router                         model      complete?   paper reference
=============================  =========  ==========  =====================
:class:`LocalBFSRouter`        local      yes         "probe the entire graph"
:class:`DirectedDFSRouter`     local      yes         natural local strategy
:class:`GreedyRouter`          local      no          remark after Thm 3(ii)
:class:`WaypointRouter`        local      if r=∞      shared engine
:class:`HypercubeWaypointRouter`  local   if r=∞      Theorem 3(ii)
:class:`MeshWaypointRouter`    local      if r=∞      Theorem 4
:class:`BidirectionalBFSRouter`  oracle   yes         oracle baseline
:class:`MirrorPairOracleRouter`  oracle   no          Theorem 9
:class:`GnpLocalRouter`        local      yes         Theorem 10
:class:`GnpBidirectionalRouter`  oracle   yes         Theorem 11
:class:`GnpUnidirectionalRouter` oracle   yes         ablation A3
=============================  =========  ==========  =====================

``local_router_suite`` bundles the complete local routers used to
exhibit "any local algorithm" lower bounds empirically.
"""

from repro.routers.bestfirst import BestFirstRouter
from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
from repro.routers.dfs import DirectedDFSRouter, GreedyRouter
from repro.routers.gnp import (
    GnpBidirectionalRouter,
    GnpLocalRouter,
    GnpUnidirectionalRouter,
)
from repro.routers.hybrid import HybridGreedyRouter
from repro.routers.tree import MirrorPairOracleRouter
from repro.routers.waypoint import (
    HypercubeWaypointRouter,
    MeshWaypointRouter,
    WaypointRouter,
)

__all__ = [
    "BestFirstRouter",
    "BidirectionalBFSRouter",
    "DirectedDFSRouter",
    "GnpBidirectionalRouter",
    "GnpLocalRouter",
    "GnpUnidirectionalRouter",
    "GreedyRouter",
    "HybridGreedyRouter",
    "HypercubeWaypointRouter",
    "LocalBFSRouter",
    "MeshWaypointRouter",
    "MirrorPairOracleRouter",
    "WaypointRouter",
    "local_router_suite",
]


def local_router_suite() -> list:
    """The complete local routers representing "any local algorithm".

    Used by lower-bound experiments (E2, E7, E9): each member's measured
    complexity must respect the Lemma 5 certificate.
    """
    return [
        LocalBFSRouter(),
        DirectedDFSRouter(),
        BestFirstRouter(),
        WaypointRouter(),
    ]
