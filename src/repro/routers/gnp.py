"""Routers for the faulty complete graph ``G(n, p)`` (Section 5).

* :class:`GnpLocalRouter` — the natural local strategy whose analysis is
  Theorem 10's proof sketch: every newly reached vertex first probes its
  edge to the target; growth otherwise probes edges from the reached set
  to fresh vertices round-robin.  Each probe opens with probability
  ``c/n``, each reached vertex hits the target with probability ``c/n``,
  so the expected complexity is ``Θ(n²)`` — and Theorem 10 says no local
  algorithm can beat that order.
* :class:`GnpBidirectionalRouter` — Theorem 11's oracle algorithm:
  grow ``U_t`` (from ``u``) and ``V_t`` (from ``v``) one vertex at a
  time, always first probing unprobed ``U×V`` pairs.  A connection
  appears by the birthday paradox once ``|U| ≈ |V| ≈ √n``, giving
  ``Θ(n^{3/2})`` probes — better than any local router by exactly √n.
* :class:`GnpUnidirectionalRouter` — ablation A3: the same code as the
  local strategy but run in the *oracle* model.  Its complexity stays
  ``Θ(n²)``: the win of Theorem 11 comes from bidirectional growth, not
  from oracle access per se.
"""

from __future__ import annotations

from collections import deque

from repro.core.probe import ProbeOracle
from repro.core.router import Router
from repro.graphs.base import Vertex

__all__ = [
    "GnpBidirectionalRouter",
    "GnpLocalRouter",
    "GnpUnidirectionalRouter",
]


def _backtrack(parent: dict, v: Vertex) -> list[Vertex]:
    path = [v]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


class _TargetFirstGrowth:
    """Shared engine: grow a reached set, target-edge first per vertex.

    ``grow_step`` probes one edge; the caller loops until success or
    exhaustion.  Kept separate from the Router classes so the local and
    oracle variants are *identical* code, probing through different
    oracles — that is the point of ablation A3.
    """

    def __init__(self, oracle: ProbeOracle, source: Vertex, target: Vertex):
        self.oracle = oracle
        self.target = target
        self.n = oracle.graph.num_vertices()
        self.parent: dict[Vertex, Vertex | None] = {source: None}
        self.pending_target_probe: deque[Vertex] = deque([source])
        # Round-robin growth state: (reached vertex, next candidate id).
        self.growth: deque[list] = deque([[source, 0]])

    def found(self) -> list[Vertex] | None:
        """Probe target edges of any newly reached vertices."""
        while self.pending_target_probe:
            x = self.pending_target_probe.popleft()
            if x == self.target:
                return _backtrack(self.parent, x)
            if self.oracle.probe(x, self.target):
                self.parent[self.target] = x
                return _backtrack(self.parent, self.target)
        return None

    def grow_step(self) -> bool:
        """Probe one growth edge; return False when fully exhausted."""
        while self.growth:
            slot = self.growth[0]
            x, candidate = slot
            # advance past vertices already reached or already probed
            while candidate < self.n:
                y = candidate
                candidate += 1
                if y == x or y == self.target or y in self.parent:
                    continue
                if self.oracle.known_state(x, y) is not None:
                    continue
                slot[1] = candidate
                if self.oracle.probe(x, y):
                    self.parent[y] = x
                    self.pending_target_probe.append(y)
                    self.growth.append([y, 0])
                # rotate for round-robin fairness
                self.growth.rotate(-1)
                return True
            self.growth.popleft()  # x has no candidates left
        return False


class GnpLocalRouter(Router):
    """Theorem 10's natural local algorithm (Θ(n²) expected probes)."""

    name = "gnp-local"
    is_local = True
    is_complete = True

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        engine = _TargetFirstGrowth(oracle, source, target)
        while True:
            path = engine.found()
            if path is not None:
                return path
            if not engine.grow_step():
                return None


class GnpUnidirectionalRouter(GnpLocalRouter):
    """Ablation A3: the identical strategy with oracle-model access."""

    name = "gnp-unidirectional-oracle"
    is_local = False


class GnpBidirectionalRouter(Router):
    """Theorem 11's bidirectional oracle router (Θ(n^{3/2}) probes).

    Invariants per loop iteration:

    1. If any ``U×V`` pair is unprobed, probe one (success joins the
       trees).
    2. Otherwise grow the smaller side by probing edges to fresh
       vertices until it gains one vertex (new cross pairs appear).
    3. If neither is possible, the component of ``u`` has been fully
       probed — certify failure.
    """

    name = "gnp-bidirectional"
    is_local = False
    is_complete = True

    def _route(
        self, oracle: ProbeOracle, source: Vertex, target: Vertex
    ) -> list[Vertex] | None:
        if source == target:
            return [source]
        if oracle.probe(source, target):
            return [source, target]
        n = oracle.graph.num_vertices()
        parent_u: dict[Vertex, Vertex | None] = {source: None}
        parent_v: dict[Vertex, Vertex | None] = {target: None}
        cross: deque[tuple[Vertex, Vertex]] = deque()
        growth_u: deque[list] = deque([[source, 0]])
        growth_v: deque[list] = deque([[target, 0]])

        while True:
            # (1) drain unprobed cross pairs
            joined = self._drain_cross(oracle, cross, parent_u, parent_v)
            if joined is not None:
                return self._join(parent_u, parent_v, *joined)
            # (2) grow the smaller side
            if len(parent_u) <= len(parent_v):
                grew = self._grow(
                    oracle, n, parent_u, parent_v, growth_u, cross, False
                )
            else:
                grew = self._grow(
                    oracle, n, parent_v, parent_u, growth_v, cross, True
                )
            if grew:
                continue
            # smaller side stuck: try the other side before giving up
            if len(parent_u) <= len(parent_v):
                grew = self._grow(
                    oracle, n, parent_v, parent_u, growth_v, cross, True
                )
            else:
                grew = self._grow(
                    oracle, n, parent_u, parent_v, growth_u, cross, False
                )
            if not grew and not cross:
                return None

    @staticmethod
    def _drain_cross(
        oracle: ProbeOracle,
        cross: deque,
        parent_u: dict,
        parent_v: dict,
    ) -> tuple[Vertex, Vertex] | None:
        while cross:
            x, y = cross.popleft()
            # membership may have changed sides via growth; skip stale pairs
            if x not in parent_u or y not in parent_v:
                continue
            if oracle.known_state(x, y) is not None:
                continue
            if oracle.probe(x, y):
                return x, y
        return None

    @staticmethod
    def _grow(
        oracle: ProbeOracle,
        n: int,
        own: dict,
        other: dict,
        growth: deque,
        cross: deque,
        own_is_target_side: bool,
    ) -> bool:
        """Probe growth edges until ``own`` gains one vertex (or stuck)."""
        while growth:
            slot = growth[0]
            x, candidate = slot
            while candidate < n:
                y = candidate
                candidate += 1
                if y == x or y in own or y in other:
                    continue
                if oracle.known_state(x, y) is not None:
                    continue
                slot[1] = candidate
                growth.rotate(-1)
                if oracle.probe(x, y):
                    own[y] = x
                    growth.appendleft([y, 0])
                    for z in other:
                        pair = (y, z) if not own_is_target_side else (z, y)
                        cross.append(pair)
                    return True
                return True  # probed one growth edge (closed); keep looping
            growth.popleft()
        return False

    @staticmethod
    def _join(
        parent_u: dict, parent_v: dict, x: Vertex, y: Vertex
    ) -> list[Vertex]:
        left = _backtrack(parent_u, x)  # source … x
        right = _backtrack(parent_v, y)  # target … y
        right.reverse()  # y … target
        return left + right
