"""Traversal utilities over *non-faulty* graphs.

These operate on the full graph (every edge present).  They serve as
reference implementations in tests (analytic metrics are validated
against BFS) and as helpers for experiment setup (e.g. finding vertex
pairs at a prescribed distance).  Percolated-graph traversal lives in
:mod:`repro.percolation.cluster`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graphs.base import Graph, Vertex

__all__ = ["bfs_distances", "bfs_path", "eccentricity", "vertices_at_distance"]


def bfs_distances(
    graph: Graph, source: Vertex, max_depth: int | None = None
) -> dict[Vertex, int]:
    """Return distances from ``source`` to all vertices within ``max_depth``.

    ``max_depth=None`` explores the whole component.
    """
    graph._require_vertex(source)
    dist = {source: 0}
    queue: deque[Vertex] = deque([source])
    while queue:
        x = queue.popleft()
        d = dist[x]
        if max_depth is not None and d >= max_depth:
            continue
        for y in graph.neighbors(x):
            if y not in dist:
                dist[y] = d + 1
                queue.append(y)
    return dist


def bfs_path(graph: Graph, u: Vertex, v: Vertex) -> list[Vertex]:
    """Return one shortest path via BFS (reference for analytic geodesics)."""
    return Graph.shortest_path(graph, u, v)


def eccentricity(graph: Graph, v: Vertex) -> int:
    """Return ``max_u d(v, u)`` over the component of ``v``."""
    return max(bfs_distances(graph, v).values())


def vertices_at_distance(
    graph: Graph, source: Vertex, distance: int, limit: int | None = None
) -> list[Vertex]:
    """Return vertices at exactly ``distance`` from ``source``.

    ``limit`` truncates the answer (BFS order) — useful on large graphs.
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    found: list[Vertex] = []
    for vertex, d in bfs_distances(graph, source, max_depth=distance).items():
        if d == distance:
            found.append(vertex)
            if limit is not None and len(found) >= limit:
                break
    return found


def connected_components(graph: Graph) -> list[set[Vertex]]:
    """Return the connected components of the full graph."""
    seen: set[Vertex] = set()
    components = []
    for v in graph.vertices():
        if v in seen:
            continue
        comp = set(bfs_distances(graph, v))
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """Return whether the full graph is connected."""
    it = iter(graph.vertices())
    try:
        start = next(it)
    except StopIteration:
        return True
    return len(bfs_distances(graph, start)) == graph.num_vertices()


def induced_edges(graph: Graph, vertices: Iterable[Vertex]) -> list[tuple]:
    """Return canonical keys of edges with both endpoints in ``vertices``."""
    vset = set(vertices)
    out = []
    for v in vset:
        for w in graph.neighbors(v):
            if w in vset:
                key = graph.edge_key(v, w)
                if key[0] == v:
                    out.append(key)
    return out
