"""The complete graph ``K_n`` — substrate of the ``G(n, p)`` model.

Section 5 of the paper treats ``G(n, p)`` as "a faulty complete graph":
percolating ``K_n`` with retention probability ``p = c/n`` *is* the
Erdős–Rényi graph.  Theorems 10 and 11 bound local routing by ``Ω(n²)``
and oracle routing by ``Θ(n^{3/2})`` on this substrate.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.base import Graph, Vertex

__all__ = ["CompleteGraph"]


class CompleteGraph(Graph):
    """``K_n`` on vertices ``0 .. n-1``.

    >>> k = CompleteGraph(4)
    >>> k.neighbors(2)
    [0, 1, 3]
    >>> k.num_edges()
    6
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"complete graph needs >= 2 vertices, got {n}")
        self.n = n
        self.name = f"complete(n={n})"

    def neighbors(self, v: Vertex) -> list[int]:
        self._require_vertex(v)
        return [w for w in range(self.n) if w != v]

    def has_vertex(self, v) -> bool:
        return isinstance(v, int) and 0 <= v < self.n

    def num_vertices(self) -> int:
        return self.n

    def vertices(self) -> Iterator[int]:
        return iter(range(self.n))

    def num_edges(self) -> int:
        return self.n * (self.n - 1) // 2

    def degree(self, v: Vertex) -> int:
        self._require_vertex(v)
        return self.n - 1

    def is_edge(self, u: Vertex, v: Vertex) -> bool:
        return self.has_vertex(u) and self.has_vertex(v) and u != v

    def distance(self, u: Vertex, v: Vertex) -> int:
        self._require_vertex(u)
        self._require_vertex(v)
        return 0 if u == v else 1

    def shortest_path(self, u: Vertex, v: Vertex) -> list[int]:
        self._require_vertex(u)
        self._require_vertex(v)
        return [u] if u == v else [u, v]

    def diameter(self) -> int:
        return 1

    def canonical_pair(self) -> tuple[int, int]:
        """Return ``(0, n-1)`` — any pair is equivalent by symmetry."""
        return 0, self.n - 1
