"""Abstract graph interface.

All topologies in the paper are *implicit* graphs: a vertex is a small
hashable value (an int, or a tuple of ints/strings) and adjacency is
computed, never stored.  This is essential — the ``n``-dimensional
hypercube at ``n = 20`` has ``n·2^{n-1} ≈ 10^7`` edges, and a routing
trial touches only a vanishing fraction of them.

Conventions
-----------

* Vertices within one graph are mutually comparable (``<``), which gives
  every edge a canonical key ``edge_key(u, v) = (min, max)``.  Percolation
  states are functions of that key, so both orientations of an edge agree.
* ``neighbors`` returns a sequence in a deterministic order; all routers
  rely on this for reproducibility.
* ``distance``/``shortest_path`` refer to the metric of the *non-faulty*
  graph.  Subclasses override them with closed forms where the paper uses
  them (hypercube geodesics for Theorem 3(ii), lattice geodesics for
  Theorem 4); the base class falls back to breadth-first search.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Hashable, Iterator, Sequence
from typing import Any

__all__ = ["Edge", "Graph", "Vertex"]

#: A vertex is any hashable, orderable value.
Vertex = Hashable
#: Canonical (sorted) endpoint pair.
Edge = tuple


class Graph(ABC):
    """A finite undirected graph with computed adjacency.

    Subclasses must implement :meth:`neighbors`, :meth:`has_vertex`,
    :meth:`num_vertices` and :meth:`vertices`; everything else has a
    generic default.
    """

    #: Short human-readable identifier used in experiment tables.
    name: str = "graph"

    # -- required topology ------------------------------------------------

    @abstractmethod
    def neighbors(self, v: Vertex) -> Sequence[Vertex]:
        """Return the neighbours of ``v`` in deterministic order."""

    @abstractmethod
    def has_vertex(self, v: Any) -> bool:
        """Return whether ``v`` is a vertex of this graph."""

    @abstractmethod
    def num_vertices(self) -> int:
        """Return the number of vertices."""

    @abstractmethod
    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices (deterministic order)."""

    # -- derived topology --------------------------------------------------

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v``."""
        return len(self.neighbors(v))

    def is_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether ``{u, v}`` is an edge."""
        return self.has_vertex(u) and v in self.neighbors(u)

    def edge_key(self, u: Vertex, v: Vertex) -> Edge:
        """Return the canonical key of the edge ``{u, v}``.

        Both orientations map to the same key, so percolation states and
        probe memoisation are orientation-independent.
        """
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges, each exactly once, canonically keyed."""
        for v in self.vertices():
            for w in self.neighbors(v):
                key = self.edge_key(v, w)
                if key[0] == v:
                    yield key

    def num_edges(self) -> int:
        """Return the number of edges (default: handshake lemma)."""
        return sum(self.degree(v) for v in self.vertices()) // 2

    # -- metric -------------------------------------------------------------

    def distance(self, u: Vertex, v: Vertex) -> int:
        """Return the graph distance between ``u`` and ``v``.

        The default runs a BFS; subclasses override with closed forms.
        Raises :class:`ValueError` if the vertices are disconnected or
        absent.
        """
        path = self.shortest_path(u, v)
        return len(path) - 1

    def shortest_path(self, u: Vertex, v: Vertex) -> list[Vertex]:
        """Return one shortest ``u → v`` path, inclusive of endpoints.

        The default runs a bidirectionless BFS over :meth:`neighbors`.
        Deterministic because neighbour order is.
        """
        self._require_vertex(u)
        self._require_vertex(v)
        if u == v:
            return [u]
        parent: dict[Vertex, Vertex] = {u: u}
        queue: deque[Vertex] = deque([u])
        while queue:
            x = queue.popleft()
            for y in self.neighbors(x):
                if y in parent:
                    continue
                parent[y] = x
                if y == v:
                    return self._backtrack(parent, u, v)
                queue.append(y)
        raise ValueError(f"{u!r} and {v!r} are not connected in {self.name}")

    @staticmethod
    def _backtrack(
        parent: dict[Vertex, Vertex], u: Vertex, v: Vertex
    ) -> list[Vertex]:
        path = [v]
        while path[-1] != u:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # -- experiment support ---------------------------------------------------

    def canonical_pair(self) -> tuple[Vertex, Vertex]:
        """Return the standard (source, target) pair for experiments.

        Subclasses pick the pair the paper routes between (antipodal
        hypercube corners, the two roots of the double tree, ...).  The
        default takes the two extreme vertices in iteration order.
        """
        it = iter(self.vertices())
        first = next(it)
        last = first
        for last in it:  # noqa: B007 — want the final element
            pass
        if first == last:
            raise ValueError("graph has a single vertex; no pair exists")
        return first, last

    def _require_vertex(self, v: Any) -> None:
        if not self.has_vertex(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
