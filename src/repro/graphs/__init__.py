"""Graph topologies studied by the paper.

All graphs are *implicit*: adjacency is computed from vertex structure,
so even the ``2^20``-vertex hypercube costs O(1) memory.  See
:mod:`repro.graphs.base` for the interface and conventions.

Topologies
----------

============================  =======================================
:class:`Hypercube`            Theorem 3 (routing phase transition)
:class:`Mesh` / :class:`Torus`  Theorem 4 (O(n) routing above p_c)
:class:`DoubleBinaryTree`     Theorems 7 & 9 (local vs oracle gap)
:class:`CompleteGraph`        Theorems 10 & 11 (G(n,p) substrate)
:class:`Butterfly`            Section 6 open question
:class:`DeBruijn`             Section 6 open question
:class:`ShuffleExchange`      Section 6 open question
:class:`FatTree`              E15/E17 structured-fault fabric
:class:`ExplicitGraph`        user-supplied / test topologies
============================  =======================================
"""

from repro.graphs.base import Edge, Graph, Vertex
from repro.graphs.butterfly import Butterfly
from repro.graphs.clos import FatTree
from repro.graphs.complete import CompleteGraph
from repro.graphs.cycle_matching import RandomMatchingCycle
from repro.graphs.debruijn import DeBruijn
from repro.graphs.double_tree import DoubleBinaryTree
from repro.graphs.explicit import ExplicitGraph, cycle_graph, path_graph
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh, Torus
from repro.graphs.shuffle_exchange import ShuffleExchange

__all__ = [
    "Butterfly",
    "CompleteGraph",
    "DeBruijn",
    "DoubleBinaryTree",
    "Edge",
    "ExplicitGraph",
    "FatTree",
    "Graph",
    "Hypercube",
    "Mesh",
    "RandomMatchingCycle",
    "ShuffleExchange",
    "Torus",
    "Vertex",
    "cycle_graph",
    "path_graph",
]
