"""Cycle plus a random perfect matching (Bollobás–Chung).

The paper's introduction cites this family ([6] in its references) as
the canonical example of "short paths exist but are hard to find": an
``n``-cycle plus a uniformly random perfect matching has diameter
``Θ(log n)``, constant degree 3, and strong expansion.  That makes it a
natural extra candidate for the Section 6 open question (is there a
constant-degree, log-diameter family whose percolation and routing
thresholds coincide?), so experiment E12 includes it alongside the
families the paper names.

The matching is sampled deterministically from a seed (our only random
*topology*; everything else in the library randomises edge states, not
structure).  ``n`` must be even so a perfect matching exists.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphs.base import Graph, Vertex
from repro.util.rng import derive_seed

__all__ = ["RandomMatchingCycle"]


class RandomMatchingCycle(Graph):
    """The ``n``-cycle plus a seeded random perfect matching.

    A matching chord that happens to parallel a cycle edge collapses
    into it, so degrees are 3 except at such coincidences (degree 2)
    and ``num_edges() <= n + n/2``.

    >>> g = RandomMatchingCycle(8, seed=0)
    >>> n_edges = g.num_edges()
    >>> 8 <= n_edges <= 12
    True
    >>> all(2 <= g.degree(v) <= 3 for v in g.vertices())
    True
    """

    def __init__(self, n: int, seed: int) -> None:
        if n < 4 or n % 2:
            raise ValueError(f"need an even n >= 4, got {n}")
        self.n = n
        self.seed = seed
        self.name = f"cycle_matching(n={n},seed={seed})"
        rng = np.random.default_rng(derive_seed(seed, "cycle-matching"))
        order = rng.permutation(n)
        self._partner: dict[int, int] = {}
        for i in range(0, n, 2):
            a, b = int(order[i]), int(order[i + 1])
            self._partner[a] = b
            self._partner[b] = a

    def neighbors(self, v: Vertex) -> list[int]:
        self._require_vertex(v)
        out = [(v - 1) % self.n, (v + 1) % self.n]
        partner = self._partner[v]
        if partner not in out:
            out.append(partner)
        return out

    def has_vertex(self, v) -> bool:
        return isinstance(v, int) and 0 <= v < self.n

    def num_vertices(self) -> int:
        return self.n

    def vertices(self) -> Iterator[int]:
        return iter(range(self.n))

    def matching_partner(self, v: Vertex) -> int:
        """Return the matched partner of ``v`` (the chord endpoint)."""
        self._require_vertex(v)
        return self._partner[v]

    def canonical_pair(self) -> tuple[int, int]:
        """Return ``(0, n/2)`` — antipodal on the underlying cycle."""
        return 0, self.n // 2
