"""The double binary tree ``TT_n`` (Section 2.1 of the paper).

``TT_n`` glues two complete binary trees of depth ``n`` at their leaves:
take trees ``a`` and ``b``, each with ``2^n`` leaves, and identify leaf
``j`` of ``a`` with leaf ``j`` of ``b``.  The two roots ``x = ('a', 1)``
and ``y = ('b', 1)`` are at distance ``2n``.

The paper uses ``TT_n`` twice:

* **Theorem 7** — for any fixed ``1/√2 < p < 1``, every *local* router
  between the roots makes ``≈ p^{-n}`` probes (exponential in the
  diameter): a path must penetrate the second tree through a leaf, and
  each leaf works with probability ``p^n``.
* **Theorem 9** — an *oracle* router probes each tree-``a`` edge together
  with its **mirror** edge in tree ``b``; pairs are open with probability
  ``p² > 1/2``, so DFS on pairs is a supercritical Galton–Watson search
  and costs ``O(n)`` on average.  :meth:`DoubleBinaryTree.mirror_edge`
  provides the pairing.

Vertex encoding: internal nodes are ``(side, k)`` with ``side ∈ {'a','b'}``
and heap index ``k ∈ [1, 2^n)`` (root is 1, children of ``k`` are ``2k``
and ``2k+1``); the shared bottom level is ``('leaf', j)`` with
``j ∈ [0, 2^n)``.  Internally a leaf has *virtual heap index* ``2^n + j``,
which makes both tree metrics ordinary heap-index arithmetic.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.base import Edge, Graph, Vertex

__all__ = ["DoubleBinaryTree"]

_SIDES = ("a", "b")


def _lca(h1: int, h2: int) -> int:
    """Return the lowest common ancestor of two heap indices."""
    while h1.bit_length() > h2.bit_length():
        h1 >>= 1
    while h2.bit_length() > h1.bit_length():
        h2 >>= 1
    while h1 != h2:
        h1 >>= 1
        h2 >>= 1
    return h1


def _depth(h: int) -> int:
    """Return the depth of heap index ``h`` (root = 1 has depth 0)."""
    return h.bit_length() - 1


class DoubleBinaryTree(Graph):
    """Two depth-``n`` binary trees glued at their leaves.

    >>> tt = DoubleBinaryTree(2)
    >>> tt.num_vertices()
    10
    >>> tt.distance(('a', 1), ('b', 1))
    4
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"tree depth must be >= 1, got {depth}")
        self.depth = depth
        self._leaf_base = 1 << depth  # virtual heap index of leaf 0
        self.name = f"double_tree(depth={depth})"

    # -- vertex bookkeeping -------------------------------------------------

    def has_vertex(self, v) -> bool:
        if not (isinstance(v, tuple) and len(v) == 2):
            return False
        kind, idx = v
        if kind in _SIDES:
            return isinstance(idx, int) and 1 <= idx < self._leaf_base
        if kind == "leaf":
            return isinstance(idx, int) and 0 <= idx < self._leaf_base
        return False

    def num_vertices(self) -> int:
        # 2 * (2^n - 1) internal nodes + 2^n shared leaves
        return 3 * self._leaf_base - 2

    def num_edges(self) -> int:
        # each tree contributes 2^{n+1} - 2 parent edges
        return 2 * (2 * self._leaf_base - 2)

    def vertices(self) -> Iterator[Vertex]:
        for side in _SIDES:
            for k in range(1, self._leaf_base):
                yield (side, k)
        for j in range(self._leaf_base):
            yield ("leaf", j)

    def _heap(self, v: Vertex) -> int:
        """Return the (virtual) heap index of ``v``."""
        kind, idx = v
        return idx if kind in _SIDES else self._leaf_base + idx

    def _from_heap(self, side: str, h: int) -> Vertex:
        """Return the vertex for heap index ``h`` viewed from ``side``."""
        if h >= self._leaf_base:
            return ("leaf", h - self._leaf_base)
        return (side, h)

    def node_depth(self, v: Vertex) -> int:
        """Return the depth of ``v`` within its tree (leaves: ``n``)."""
        self._require_vertex(v)
        return _depth(self._heap(v))

    # -- adjacency ------------------------------------------------------------

    def neighbors(self, v: Vertex) -> list[Vertex]:
        self._require_vertex(v)
        kind, idx = v
        if kind == "leaf":
            parent = (self._leaf_base + idx) >> 1
            return [("a", parent), ("b", parent)]
        out: list[Vertex] = []
        if idx > 1:
            out.append((kind, idx >> 1))
        out.append(self._from_heap(kind, 2 * idx))
        out.append(self._from_heap(kind, 2 * idx + 1))
        return out

    def is_edge(self, u: Vertex, v: Vertex) -> bool:
        """O(1) adjacency via the heap parent/child relation."""
        if not (self.has_vertex(u) and self.has_vertex(v)):
            return False
        parent, child = (
            (u, v) if self._heap(u) < self._heap(v) else (v, u)
        )
        if self._heap(child) >> 1 != self._heap(parent):
            return False
        if parent[0] == "leaf":
            return False
        # an internal child must live in the parent's tree; a leaf child
        # attaches to the bottom of either tree.
        return child[0] == "leaf" or child[0] == parent[0]

    # -- metric -----------------------------------------------------------------

    def distance(self, u: Vertex, v: Vertex) -> int:
        """Closed-form tree/cross-tree distance.

        Same-tree pairs use the ordinary heap-LCA formula.  For a pair in
        different trees the path crosses exactly one leaf, and the optimal
        leaf extends the deeper vertex's root path, giving
        ``2n - 2·depth(lca) - |depth(u) - depth(v)|``.
        """
        self._require_vertex(u)
        self._require_vertex(v)
        hu, hv = self._heap(u), self._heap(v)
        du, dv = _depth(hu), _depth(hv)
        if self._same_tree(u, v):
            return du + dv - 2 * _depth(_lca(hu, hv))
        return 2 * self.depth - 2 * _depth(_lca(hu, hv)) - abs(du - dv)

    @staticmethod
    def _same_tree(u: Vertex, v: Vertex) -> bool:
        """Whether some single tree contains both vertices."""
        return u[0] == v[0] or u[0] == "leaf" or v[0] == "leaf"

    def _tree_path(self, side: str, h1: int, h2: int) -> list[Vertex]:
        """Return the unique tree path between heap indices in ``side``."""
        lca = _lca(h1, h2)
        up = []
        h = h1
        while h != lca:
            up.append(self._from_heap(side, h))
            h >>= 1
        down = []
        h = h2
        while h != lca:
            down.append(self._from_heap(side, h))
            h >>= 1
        down.reverse()
        return up + [self._from_heap(side, lca)] + down

    def shortest_path(self, u: Vertex, v: Vertex) -> list[Vertex]:
        """Return one shortest path (closed form, no search)."""
        self._require_vertex(u)
        self._require_vertex(v)
        hu, hv = self._heap(u), self._heap(v)
        if self._same_tree(u, v):
            side = u[0] if u[0] in _SIDES else (v[0] if v[0] in _SIDES else "a")
            return self._tree_path(side, hu, hv)
        # Cross-tree: meet at the leftmost leaf below the deeper vertex.
        deeper = hu if _depth(hu) >= _depth(hv) else hv
        meet = deeper
        while meet < self._leaf_base:
            meet <<= 1
        first = self._tree_path(u[0], hu, meet)
        second = self._tree_path(v[0], meet, hv)
        return first + second[1:]

    def diameter(self) -> int:
        """Return the diameter ``2n`` (root to root)."""
        return 2 * self.depth

    # -- paper-specific structure ---------------------------------------------

    def canonical_pair(self) -> tuple[Vertex, Vertex]:
        """Return the two roots ``x, y`` the paper routes between."""
        return ("a", 1), ("b", 1)

    def roots(self) -> tuple[Vertex, Vertex]:
        """Alias of :meth:`canonical_pair`."""
        return self.canonical_pair()

    def leaves(self) -> Iterator[Vertex]:
        """Iterate over the shared leaves."""
        for j in range(self._leaf_base):
            yield ("leaf", j)

    def mirror_vertex(self, v: Vertex) -> Vertex:
        """Return the structurally corresponding vertex in the other tree.

        Leaves are shared, hence self-mirror.
        """
        self._require_vertex(v)
        kind, idx = v
        if kind == "leaf":
            return v
        return ("b" if kind == "a" else "a", idx)

    def mirror_edge(self, edge: Edge) -> Edge:
        """Return the mirror edge in the other tree (Theorem 9 pairing).

        The mirror of an ``a``-tree edge is the ``b``-tree edge between
        the corresponding heap positions, and vice versa; the pairing is
        an involution.
        """
        u, v = edge
        return self.edge_key(self.mirror_vertex(u), self.mirror_vertex(v))

    def side_of_edge(self, edge: Edge) -> str:
        """Return which tree (``'a'`` or ``'b'``) an edge belongs to."""
        u, v = edge
        for x in (u, v):
            if x[0] in _SIDES:
                return x[0]
        raise ValueError(f"edge {edge!r} touches no internal vertex")
