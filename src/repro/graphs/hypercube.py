"""The ``n``-dimensional hypercube ``H_n``.

Vertices are ints in ``[0, 2**n)``; two vertices are adjacent iff they
differ in exactly one bit.  This is the central topology of the paper:
Theorem 3 locates the routing-complexity phase transition of ``H_{n,p}``
at ``p = n^{-1/2}``, strictly above the giant-component threshold
``p ≈ 1/n``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.base import Graph, Vertex
from repro.util.bitops import hamming_distance, hypercube_geodesic

__all__ = ["Hypercube"]


class Hypercube(Graph):
    """The hypercube ``{0,1}^n`` with Hamming adjacency.

    >>> h = Hypercube(3)
    >>> sorted(h.neighbors(0))
    [1, 2, 4]
    >>> h.distance(0b000, 0b111)
    3
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {n}")
        self.n = n
        self._size = 1 << n
        self.name = f"hypercube(n={n})"

    def neighbors(self, v: Vertex) -> list[int]:
        self._require_vertex(v)
        return [v ^ (1 << i) for i in range(self.n)]

    def has_vertex(self, v) -> bool:
        return isinstance(v, int) and 0 <= v < self._size

    def num_vertices(self) -> int:
        return self._size

    def vertices(self) -> Iterator[int]:
        return iter(range(self._size))

    def num_edges(self) -> int:
        return self.n * (self._size >> 1)

    def degree(self, v: Vertex) -> int:
        self._require_vertex(v)
        return self.n

    def is_edge(self, u: Vertex, v: Vertex) -> bool:
        """O(1) adjacency: vertices differing in exactly one bit."""
        return (
            self.has_vertex(u)
            and self.has_vertex(v)
            and hamming_distance(u, v) == 1
        )

    def distance(self, u: Vertex, v: Vertex) -> int:
        """Hamming distance — the hypercube's graph metric."""
        self._require_vertex(u)
        self._require_vertex(v)
        return hamming_distance(u, v)

    def shortest_path(self, u: Vertex, v: Vertex) -> list[int]:
        """Deterministic geodesic flipping differing bits in index order.

        This is the waypoint sequence used by the Theorem 3(ii) router.
        """
        self._require_vertex(u)
        self._require_vertex(v)
        return hypercube_geodesic(u, v)

    def diameter(self) -> int:
        """Return the diameter ``n``."""
        return self.n

    def canonical_pair(self) -> tuple[int, int]:
        """Return the antipodal pair ``(0...0, 1...1)`` (distance ``n``)."""
        return 0, self._size - 1

    def antipode(self, v: Vertex) -> int:
        """Return the vertex at distance ``n`` from ``v``."""
        self._require_vertex(v)
        return v ^ (self._size - 1)
