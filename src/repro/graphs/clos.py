"""The folded-Clos / fat-tree datacenter fabric.

The paper's topologies are processor networks; the neighbouring fault
literature (Safaei & ValadBeigi's router failures, the WAN-router
failure-pattern studies) lives on *switching fabrics* — and the
canonical one is the ``k``-ary fat-tree (Al-Fares et al.): a 3-layer
folded Clos with ``(k/2)²`` core switches and ``k`` pods of ``k/2``
aggregation plus ``k/2`` edge switches each.  Its defining property is
*path diversity*: every inter-pod pair is joined by ``(k/2)²``
core-disjoint shortest paths, so i.i.d. edge faults are absorbed until
deep subcriticality while a targeted adversary can sever a pair with
just ``k/2`` edge removals (the edge-switch uplink cut).  Experiments
E15 and E17 measure exactly that contrast.

Vertices are layer-tagged tuples, mutually comparable within and
across layers (the tag decides cross-layer order, the indices decide
order within a layer):

* ``("core", c)`` for ``c ∈ [0, (k/2)²)``;
* ``("agg", pod, a)``, ``("edge", pod, e)`` for ``pod ∈ [0, k)`` and
  ``a, e ∈ [0, k/2)``;
* ``("host", pod, e, h)`` for ``h ∈ [0, k/2)`` when built with
  ``with_hosts=True``.

Wiring (standard ``k``-ary fat-tree): aggregation switch ``a`` of every
pod uplinks to the core *stripe* ``c ∈ [a·k/2, (a+1)·k/2)``; within a
pod, aggregation and edge switches form a complete bipartite graph;
hosts hang off their edge switch.  Without hosts the graph is
``k``-regular on core/aggregation switches and ``k/2``-regular on edge
switches.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.base import Graph, Vertex

__all__ = ["FatTree"]

_LAYERS = ("core", "agg", "edge", "host")


class FatTree(Graph):
    """The ``k``-ary fat-tree (``k`` even): a 3-layer folded Clos.

    ``with_hosts=False`` (default) keeps only the switching fabric —
    the multipath object routing experiments care about; hosts are
    degree-1 leaves that add nothing but a fragile last hop.

    >>> ft = FatTree(4)
    >>> ft.num_vertices(), ft.num_edges()
    (20, 32)
    >>> sorted(ft.neighbors(("edge", 0, 0)))
    [('agg', 0, 0), ('agg', 0, 1)]
    """

    def __init__(self, k: int, with_hosts: bool = False) -> None:
        if k < 2 or k % 2:
            raise ValueError(
                f"fat-tree arity must be an even integer >= 2, got {k!r}"
            )
        self.k = k
        self.half = k // 2
        self.with_hosts = bool(with_hosts)
        self.name = f"fattree(k={k}{',hosts' if with_hosts else ''})"

    # -- topology ---------------------------------------------------------

    def neighbors(self, v: Vertex) -> list[tuple]:
        self._require_vertex(v)
        half = self.half
        layer = v[0]
        if layer == "core":
            (_, c) = v
            a = c // half  # the stripe this core belongs to
            return [("agg", pod, a) for pod in range(self.k)]
        if layer == "agg":
            (_, pod, a) = v
            up = [("core", c) for c in range(a * half, (a + 1) * half)]
            down = [("edge", pod, e) for e in range(half)]
            return up + down
        if layer == "edge":
            (_, pod, e) = v
            up = [("agg", pod, a) for a in range(half)]
            if not self.with_hosts:
                return up
            return up + [("host", pod, e, h) for h in range(half)]
        # "host"
        (_, pod, e, _) = v
        return [("edge", pod, e)]

    def has_vertex(self, v) -> bool:
        if not isinstance(v, tuple) or not v or v[0] not in _LAYERS:
            return False
        layer, *idx = v
        if not all(isinstance(i, int) for i in idx):
            return False
        half = self.half
        if layer == "core":
            return len(idx) == 1 and 0 <= idx[0] < half * half
        if layer in ("agg", "edge"):
            return (
                len(idx) == 2
                and 0 <= idx[0] < self.k
                and 0 <= idx[1] < half
            )
        return (
            self.with_hosts
            and len(idx) == 3
            and 0 <= idx[0] < self.k
            and 0 <= idx[1] < half
            and 0 <= idx[2] < half
        )

    def num_vertices(self) -> int:
        switches = self.half * self.half + 2 * self.k * self.half
        if not self.with_hosts:
            return switches
        return switches + self.k * self.half * self.half

    def vertices(self) -> Iterator[tuple]:
        half = self.half
        for c in range(half * half):
            yield ("core", c)
        for pod in range(self.k):
            for a in range(half):
                yield ("agg", pod, a)
        for pod in range(self.k):
            for e in range(half):
                yield ("edge", pod, e)
        if self.with_hosts:
            for pod in range(self.k):
                for e in range(half):
                    for h in range(half):
                        yield ("host", pod, e, h)

    def num_edges(self) -> int:
        # core↔agg and agg↔edge tiers carry k³/4 links each; the host
        # tier (when present) another k³/4.
        tier = self.k * self.half * self.half
        return tier * (3 if self.with_hosts else 2)

    # -- experiment support ----------------------------------------------

    def canonical_pair(self) -> tuple[tuple, tuple]:
        """The extreme inter-pod pair: first and last leaf switch/host.

        Crossing from pod ``0`` to pod ``k-1`` forces the route through
        the core, which is where the fabric's path diversity (and the
        adversary's cut target) lives.
        """
        if self.with_hosts:
            last = self.half - 1
            return ("host", 0, 0, 0), ("host", self.k - 1, last, last)
        return ("edge", 0, 0), ("edge", self.k - 1, self.half - 1)

    def pod_of(self, v: Vertex) -> int | None:
        """The pod a switch/host belongs to (``None`` for core)."""
        self._require_vertex(v)
        return None if v[0] == "core" else v[1]
