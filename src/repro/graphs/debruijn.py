"""The (undirected) binary de Bruijn graph ``DB_n``.

Listed in the paper's open questions (Section 6).  Vertices are ``n``-bit
ints; the directed de Bruijn graph has arcs ``x → (2x + b) mod 2^n`` for
``b ∈ {0, 1}``; we take the undirected underlying simple graph (dropping
self-loops, e.g. at ``0…0`` and ``1…1``).  Degree ≤ 4, diameter ``n``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.base import Graph, Vertex

__all__ = ["DeBruijn"]


class DeBruijn(Graph):
    """Undirected binary de Bruijn graph on ``2^n`` vertices.

    >>> db = DeBruijn(3)
    >>> sorted(db.neighbors(0b010))
    [1, 4, 5]
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"de Bruijn order must be >= 2, got {n}")
        self.n = n
        self._size = 1 << n
        self._mask = self._size - 1
        self.name = f"debruijn(n={n})"

    def neighbors(self, v: Vertex) -> list[int]:
        self._require_vertex(v)
        candidates = {
            (v << 1) & self._mask,  # successor, append 0
            ((v << 1) | 1) & self._mask,  # successor, append 1
            v >> 1,  # predecessor, dropped bit 0
            (v >> 1) | (self._size >> 1),  # predecessor, dropped bit 1
        }
        candidates.discard(v)  # drop self-loops (at 00…0 and 11…1)
        return sorted(candidates)

    def has_vertex(self, v) -> bool:
        return isinstance(v, int) and 0 <= v < self._size

    def num_vertices(self) -> int:
        return self._size

    def vertices(self) -> Iterator[int]:
        return iter(range(self._size))

    def diameter_upper_bound(self) -> int:
        """Return ``n`` — the directed diameter, an upper bound here."""
        return self.n

    def canonical_pair(self) -> tuple[int, int]:
        """Return ``(0…0, 1…1)`` — the two extreme strings."""
        return 0, self._mask
