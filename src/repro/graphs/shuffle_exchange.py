"""The shuffle-exchange graph ``SE_n``.

Listed in the paper's open questions (Section 6).  Vertices are ``n``-bit
ints; edges are of two kinds:

* *exchange* — flip the lowest bit (``x ↔ x ^ 1``);
* *shuffle* — cyclic rotation by one bit (``x ↔ rot(x)``), taken
  undirected, so both rotation directions are neighbours.

Self-loops (all-zeros / all-ones rotate to themselves) are dropped.
Degree ≤ 3, diameter ``O(n)``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.base import Graph, Vertex

__all__ = ["ShuffleExchange"]


class ShuffleExchange(Graph):
    """Shuffle-exchange graph on ``2^n`` vertices.

    >>> se = ShuffleExchange(3)
    >>> sorted(se.neighbors(0b001))
    [0, 2, 4]
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"shuffle-exchange order must be >= 2, got {n}")
        self.n = n
        self._size = 1 << n
        self._mask = self._size - 1
        self.name = f"shuffle_exchange(n={n})"

    def _rotate_left(self, x: int) -> int:
        return ((x << 1) | (x >> (self.n - 1))) & self._mask

    def _rotate_right(self, x: int) -> int:
        return (x >> 1) | ((x & 1) << (self.n - 1))

    def neighbors(self, v: Vertex) -> list[int]:
        self._require_vertex(v)
        candidates = {v ^ 1, self._rotate_left(v), self._rotate_right(v)}
        candidates.discard(v)
        return sorted(candidates)

    def has_vertex(self, v) -> bool:
        return isinstance(v, int) and 0 <= v < self._size

    def num_vertices(self) -> int:
        return self._size

    def vertices(self) -> Iterator[int]:
        return iter(range(self._size))

    def canonical_pair(self) -> tuple[int, int]:
        """Return ``(0…0, 1…1)``."""
        return 0, self._mask
