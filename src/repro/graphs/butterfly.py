"""The butterfly network ``BF_n``.

Listed in the paper's open questions (Section 6) as a constant-degree,
logarithmic-diameter family on which the relative locations of the
percolation and routing thresholds are unknown.  Experiment E12 scans
both thresholds empirically.

Vertices are ``(level, row)`` with ``level ∈ [0, n]`` and ``row`` an
``n``-bit int.  Level ``l`` connects to level ``l+1`` by a *straight*
edge (same row) and a *cross* edge (row with bit ``l`` flipped).  Degree
is ≤ 4; the diameter is ``2n``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.base import Graph, Vertex

__all__ = ["Butterfly"]


class Butterfly(Graph):
    """The (ordinary, non-wrapped) butterfly with ``(n+1)·2^n`` vertices.

    >>> bf = Butterfly(2)
    >>> sorted(bf.neighbors((0, 0)))
    [(1, 0), (1, 1)]
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"butterfly order must be >= 1, got {n}")
        self.n = n
        self._rows = 1 << n
        self.name = f"butterfly(n={n})"

    def neighbors(self, v: Vertex) -> list[tuple[int, int]]:
        self._require_vertex(v)
        level, row = v
        out = []
        if level > 0:
            out.append((level - 1, row))
            out.append((level - 1, row ^ (1 << (level - 1))))
        if level < self.n:
            out.append((level + 1, row))
            out.append((level + 1, row ^ (1 << level)))
        return out

    def has_vertex(self, v) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == 2
            and isinstance(v[0], int)
            and isinstance(v[1], int)
            and 0 <= v[0] <= self.n
            and 0 <= v[1] < self._rows
        )

    def num_vertices(self) -> int:
        return (self.n + 1) * self._rows

    def vertices(self) -> Iterator[tuple[int, int]]:
        for level in range(self.n + 1):
            for row in range(self._rows):
                yield (level, row)

    def num_edges(self) -> int:
        return 2 * self.n * self._rows

    def canonical_pair(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """Return level-0 row 0 and level-n row ``11…1`` (max row)."""
        return (0, 0), (self.n, self._rows - 1)
