"""Explicit (adjacency-backed) graphs.

Small hand-built graphs used by tests, examples and the Lemma 5
machinery (arbitrary cut structures).  Also the escape hatch for users
who want to run the routing framework on their own topology.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.graphs.base import Graph, Vertex

__all__ = ["ExplicitGraph", "cycle_graph", "path_graph"]


class ExplicitGraph(Graph):
    """A graph defined by an explicit edge list.

    Vertices are inferred from the edges unless given; isolated vertices
    must be passed explicitly.  Neighbour order is insertion order, which
    keeps routing deterministic.

    >>> g = ExplicitGraph([(0, 1), (1, 2)])
    >>> g.neighbors(1)
    [0, 2]
    """

    def __init__(
        self,
        edges: Iterable[tuple[Vertex, Vertex]],
        vertices: Iterable[Vertex] = (),
        name: str = "explicit",
    ) -> None:
        self.name = name
        self._adj: dict[Vertex, list[Vertex]] = {}
        for v in vertices:
            self._adj.setdefault(v, [])
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at {u!r} is not allowed")
            self._adj.setdefault(u, [])
            self._adj.setdefault(v, [])
            if v not in self._adj[u]:
                self._adj[u].append(v)
                self._adj[v].append(u)

    def neighbors(self, v: Vertex) -> list[Vertex]:
        self._require_vertex(v)
        return list(self._adj[v])

    def has_vertex(self, v) -> bool:
        return v in self._adj

    def num_vertices(self) -> int:
        return len(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)


def path_graph(length: int) -> ExplicitGraph:
    """Return the path ``0 - 1 - … - length`` (``length`` edges)."""
    if length < 1:
        raise ValueError("path length must be >= 1")
    g = ExplicitGraph([(i, i + 1) for i in range(length)], name=f"path({length})")
    return g


def cycle_graph(n: int) -> ExplicitGraph:
    """Return the ``n``-cycle."""
    if n < 3:
        raise ValueError("cycle needs >= 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return ExplicitGraph(edges, name=f"cycle({n})")
