"""The ``d``-dimensional mesh ``M^d`` (and its torus variant).

Vertices are ``d``-tuples of ints in ``[0, side)``; adjacency is ±1 in a
single coordinate.  The mesh is the paper's example of a graph where
*efficient routing is possible whenever a giant component exists*
(Theorem 4): for every ``p > p_c(d)`` a local router connects vertices at
mesh distance ``n`` with expected ``O(n)`` probes.

The torus (periodic boundary) is included because supercritical cluster
statistics near the boundary of a mesh are slightly thinner; experiments
that probe chemical-distance constants use the torus to suppress boundary
effects, and an ablation verifies the mesh/torus difference is immaterial
for the routing law.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.graphs.base import Graph, Vertex

__all__ = ["Mesh", "Torus"]


class Mesh(Graph):
    """The ``side^d`` grid graph with open boundary.

    >>> m = Mesh(d=2, side=3)
    >>> sorted(m.neighbors((1, 1)))
    [(0, 1), (1, 0), (1, 2), (2, 1)]
    >>> m.distance((0, 0), (2, 2))
    4
    """

    def __init__(self, d: int, side: int) -> None:
        if d < 1:
            raise ValueError(f"mesh dimension must be >= 1, got {d}")
        if side < 2:
            raise ValueError(f"mesh side must be >= 2, got {side}")
        self.d = d
        self.side = side
        self.name = f"mesh(d={d},side={side})"

    def neighbors(self, v: Vertex) -> list[tuple[int, ...]]:
        self._require_vertex(v)
        out = []
        for i in range(self.d):
            if v[i] > 0:
                out.append(v[:i] + (v[i] - 1,) + v[i + 1 :])
            if v[i] < self.side - 1:
                out.append(v[:i] + (v[i] + 1,) + v[i + 1 :])
        return out

    def has_vertex(self, v) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == self.d
            and all(isinstance(x, int) and 0 <= x < self.side for x in v)
        )

    def num_vertices(self) -> int:
        return self.side**self.d

    def vertices(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(range(self.side), repeat=self.d)

    def num_edges(self) -> int:
        return self.d * (self.side - 1) * self.side ** (self.d - 1)

    def is_edge(self, u: Vertex, v: Vertex) -> bool:
        """O(d) adjacency: L1 distance exactly one."""
        return (
            self.has_vertex(u)
            and self.has_vertex(v)
            and self.distance(u, v) == 1
        )

    def distance(self, u: Vertex, v: Vertex) -> int:
        """L1 (Manhattan) distance — the mesh's graph metric."""
        self._require_vertex(u)
        self._require_vertex(v)
        return sum(abs(a - b) for a, b in zip(u, v))

    def shortest_path(self, u: Vertex, v: Vertex) -> list[tuple[int, ...]]:
        """Deterministic geodesic adjusting coordinates in index order.

        This is the waypoint sequence used by the Theorem 4 router.
        """
        self._require_vertex(u)
        self._require_vertex(v)
        path = [u]
        current = list(u)
        for i in range(self.d):
            step = 1 if v[i] > current[i] else -1
            while current[i] != v[i]:
                current[i] += step
                path.append(tuple(current))
        return path

    def diameter(self) -> int:
        """Return the diameter ``d*(side-1)``."""
        return self.d * (self.side - 1)

    def canonical_pair(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return opposite corners of the cube."""
        return (0,) * self.d, (self.side - 1,) * self.d

    def centered_pair_at_distance(
        self, n: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return a pair at mesh distance exactly ``n``, centred in the cube.

        Theorem 4 routes between vertices at distance ``n`` inside a cube
        of side possibly much larger than ``n``; centring the pair keeps
        both endpoints away from the boundary, where the supercritical
        cluster is thinner.
        """
        if n < 0 or n > self.d * (self.side - 1):
            raise ValueError(
                f"no pair at distance {n} in a {self.side}^{self.d} mesh"
            )
        # Spread the distance as evenly as possible over coordinates.
        base, extra = divmod(n, self.d)
        spans = [base + (1 if i < extra else 0) for i in range(self.d)]
        u = []
        v = []
        for span in spans:
            lo = (self.side - 1 - span) // 2
            u.append(lo)
            v.append(lo + span)
        return tuple(u), tuple(v)


class Torus(Mesh):
    """The mesh with periodic boundary conditions.

    >>> t = Torus(d=1, side=4)
    >>> sorted(t.neighbors((0,)))
    [(1,), (3,)]
    """

    def __init__(self, d: int, side: int) -> None:
        if side < 3:
            # side 2 would create doubled edges between the same pair.
            raise ValueError(f"torus side must be >= 3, got {side}")
        super().__init__(d, side)
        self.name = f"torus(d={d},side={side})"

    def neighbors(self, v: Vertex) -> list[tuple[int, ...]]:
        self._require_vertex(v)
        out = []
        for i in range(self.d):
            out.append(v[:i] + ((v[i] - 1) % self.side,) + v[i + 1 :])
            out.append(v[:i] + ((v[i] + 1) % self.side,) + v[i + 1 :])
        return out

    def num_edges(self) -> int:
        return self.d * self.side**self.d

    def distance(self, u: Vertex, v: Vertex) -> int:
        """L1 distance with wraparound per coordinate."""
        self._require_vertex(u)
        self._require_vertex(v)
        total = 0
        for a, b in zip(u, v):
            delta = abs(a - b)
            total += min(delta, self.side - delta)
        return total

    def shortest_path(self, u: Vertex, v: Vertex) -> list[tuple[int, ...]]:
        """Geodesic taking the shorter way around each coordinate."""
        self._require_vertex(u)
        self._require_vertex(v)
        path = [u]
        current = list(u)
        for i in range(self.d):
            forward = (v[i] - current[i]) % self.side
            backward = (current[i] - v[i]) % self.side
            step = 1 if forward <= backward else -1
            while current[i] != v[i]:
                current[i] = (current[i] + step) % self.side
                path.append(tuple(current))
        return path

    def diameter(self) -> int:
        return self.d * (self.side // 2)
