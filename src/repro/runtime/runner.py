"""Trial runners: serial reference implementation and a process pool.

Both runners satisfy the same contract: ``run(specs)`` returns one
:class:`TrialResult` per spec, in submission order, raising
:class:`TrialExecutionError` if any trial fails.  The process pool
schedules *chunks* of consecutive specs onto workers to amortise IPC,
then reassembles results by chunk offset — so completion order never
leaks into the output (see the package docstring for the full
determinism contract).

The pool is **persistent**: it spins up on the first batch that needs
parallelism and is reused by every later ``run``/``run_grouped`` call
on the same runner, so consecutive batches stop paying process
start-up.  Shared payloads (:mod:`repro.runtime.workload`) ship to each
worker at most once — via the pool initializer for workloads known when
the pool spawns, and via a first-touch miss/resubmit round-trip for
workloads that appear later.  Call :meth:`ProcessPoolRunner.close` (or
use the runner as a context manager) to reap the workers; an unclosed
pool is torn down when the runner is garbage-collected or the
interpreter exits.

Experiments whose sweeps consist of many independent measurements use
:meth:`TrialRunner.run_grouped` to flatten all their per-trial specs
into **one** batch: a single sweep point's trials then interleave with
every other point's across the pool, instead of parallelism stopping at
the point boundary.

Runner *construction* lives in :mod:`repro.runtime.backends` (the
backend registry behind ``make_runner``); this module provides the
in-process runners plus the chunking/payload helpers every batch
scheduler shares — :func:`pick_chunksize`, :func:`split_chunks`,
:func:`batch_payloads` and :func:`resolve_miss_payload` are also what
the socket executor in :mod:`repro.runtime.cluster` builds on.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.runtime.chunkexec import execute_specs
from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec
from repro.runtime.workload import (
    Workload,
    WorkloadMissError,
    WorkloadRef,
    install_workloads,
    resolve_workload,
)

__all__ = [
    "ProcessPoolRunner",
    "SerialRunner",
    "TrialRunner",
    "batch_payloads",
    "pick_chunksize",
    "resolve_chunksize",
    "resolve_miss_payload",
    "resolve_workers",
    "split_chunks",
]

#: Environment variable consulted when no worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable consulted when no chunk size is given.
CHUNKSIZE_ENV = "REPRO_CHUNKSIZE"

#: Target number of chunks handed to each worker (load-balance factor).
_CHUNKS_PER_WORKER = 4


def _resolve_positive(value, env_var: str, what: str, default):
    """Shared argument/environment resolution with uniform validation.

    Every knob that means "a positive count" resolves the same way:
    explicit argument beats the environment variable beats ``default``
    — and **both** the argument and the environment value are rejected
    when they are not integers >= 1.  Centralising this closes the
    paths where an env-supplied ``0`` used to slip through unvalidated
    (e.g. a directly-constructed runner that never consulted the env).
    """
    if value is None:
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"${env_var} must be an integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"${env_var} must be >= 1, got {raw!r}"
            )
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"{what} must be >= 1, got {value}")
    return value


def resolve_workers(workers: int | None = None, *, default: int = 1) -> int:
    """Resolve a worker count: argument, else ``$REPRO_WORKERS``, else
    ``default`` (1).

    Arguments and environment values validate identically: anything
    that is not an integer >= 1 raises :class:`ValueError` on every
    construction path.

    >>> resolve_workers(3)
    3
    """
    return _resolve_positive(workers, WORKERS_ENV, "worker count", default)


def resolve_chunksize(
    chunksize: int | None = None, *, default: int | None = None
) -> int | None:
    """Resolve a chunk size: argument, else ``$REPRO_CHUNKSIZE``, else
    ``default`` (None).

    ``None`` means "let the runner balance the batch itself" (about
    four chunks per worker).  Mirrors :func:`resolve_workers`, including
    validation of the environment value.

    >>> resolve_chunksize(16)
    16
    """
    return _resolve_positive(chunksize, CHUNKSIZE_ENV, "chunksize", default)


def pick_chunksize(
    total: int, workers: int, chunksize: int | None = None
) -> int:
    """The specs-per-chunk for a batch: explicit size, else balance the
    batch into about four chunks per worker.
    """
    if chunksize is not None:
        return chunksize
    return max(1, -(-total // (workers * _CHUNKS_PER_WORKER)))


def split_chunks(
    specs: Sequence, size: int
) -> list[tuple[int, list]]:
    """Split a batch into ``(start_offset, chunk)`` pairs of ``size``.

    The offsets are what let any scheduler reassemble results in
    submission order however chunks complete.

    >>> split_chunks(["a", "b", "c"], 2)
    [(0, ['a', 'b']), (2, ['c'])]
    """
    if size < 1:
        raise ValueError(f"chunksize must be >= 1, got {size}")
    return [
        (start, list(specs[start : start + size]))
        for start in range(0, len(specs), size)
    ]


def batch_payloads(specs: Sequence[TrialSpec]) -> dict[str, Workload]:
    """The workload table of a batch: every payload, by content id."""
    return {
        spec.workload.workload_id: spec.workload
        for spec in specs
        if isinstance(spec.workload, Workload)
    }


def resolve_miss_payload(
    workload_id: str,
    batch: Mapping[str, Workload],
    scheduler: str = "<pool>",
) -> Workload:
    """Find the payload for a worker-reported miss, scheduler-side.

    The batch table covers every directly-referenced workload; the
    constructed-workload registry covers specs nested inside other
    specs.  Failing both means the emitter dropped the workload
    while its specs were still running — an ownership-contract bug,
    reported as such (keyed by ``scheduler`` so the error names the
    runner that actually hit it).
    """
    workload = batch.get(workload_id)
    if workload is not None:
        return workload
    try:
        return resolve_workload(workload_id)
    except WorkloadMissError:
        raise TrialExecutionError(
            (scheduler,),
            f"worker requested workload {workload_id} but no live "
            "Workload with that id exists in the parent; the "
            "emitting code must keep workloads alive while their "
            "specs run (see repro.runtime.workload)",
        ) from None


class TrialRunner(ABC):
    """Executes :class:`TrialSpec` batches; results in submission order."""

    #: Number of worker processes this runner schedules onto.
    workers: int = 1

    @abstractmethod
    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        """Execute every spec; return results in submission order."""

    def close(self) -> None:
        """Release any resources held by the runner (default: none)."""

    def __enter__(self) -> "TrialRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_values(self, specs: Iterable[TrialSpec]) -> list[Any]:
        """Like :meth:`run` but unwraps each result's ``value``."""
        return [result.value for result in self.run(specs)]

    def run_grouped(
        self, groups: Iterable[tuple[Any, Iterable[TrialSpec]]]
    ) -> dict[Any, list[Any]]:
        """Execute labelled spec groups as one flat batch; re-group values.

        ``groups`` is an iterable of ``(label, specs)`` pairs — e.g. one
        group of per-trial specs per sweep point.  All specs run in a
        single :meth:`run` batch (so chunking spreads *within* a group
        across workers, not just across groups), and the values come
        back as ``{label: [value, ...]}`` with each group's values in
        its own submission order.  Labels must be hashable and unique.
        """
        labels: list[Any] = []
        bounds: list[tuple[int, int]] = []
        flat: list[TrialSpec] = []
        for label, specs in groups:
            batch = list(specs)
            labels.append(label)
            bounds.append((len(flat), len(flat) + len(batch)))
            flat.extend(batch)
        if len(set(labels)) != len(labels):
            raise ValueError("group labels must be unique")
        values = self.run_values(flat)
        return {
            label: values[start:stop]
            for label, (start, stop) in zip(labels, bounds)
        }


class SerialRunner(TrialRunner):
    """Run trials in the calling process (chunk kernels apply).

    "Serial" means one process and submission order — not one trial at
    a time: consecutive specs sharing a kernel-capable workload execute
    through :func:`repro.runtime.chunkexec.execute_specs` as vectorized
    chunks, exactly as they would on a pool worker.  Results are
    bit-identical either way.
    """

    workers = 1

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        return execute_specs(specs)

    def __repr__(self) -> str:
        return "SerialRunner()"


def _execute_chunk(
    chunk: Sequence[TrialSpec],
    payloads: Mapping[str, Workload] | None = None,
) -> list[TrialResult]:
    """Worker entry point: execute one chunk of consecutive specs.

    ``payloads`` carries workloads this worker reported missing (the
    first-touch resubmission); they are cached for the rest of the
    worker's life.  A chunk whose workload ids are still unresolved
    raises :class:`WorkloadMissError` *before* executing anything, so a
    resubmitted chunk always recomputes from scratch — trials are pure,
    making the retry invisible in the results.

    This is the one executable shape of a chunk everywhere: the
    process pool submits it directly, and a cluster node's execution
    pool (:mod:`repro.runtime.cluster`) submits the same function to
    its own workers, answering their misses out of the node-wide
    payload cache before falling back to the coordinator.

    Execution itself goes through the batch-kernel seam
    (:func:`repro.runtime.chunkexec.execute_specs`): runs of
    consecutive specs sharing a kernel-capable workload execute as one
    vectorized chunk, everything else per trial — so every backend
    (serial, process pool, cluster nodes) gets the kernels from this
    single wiring point.
    """
    if payloads:
        install_workloads(payloads)
    missing = set()
    for spec in chunk:
        if isinstance(spec.workload, WorkloadRef):
            try:
                resolve_workload(spec.workload.workload_id)
            except WorkloadMissError:
                missing.add(spec.workload.workload_id)
    if missing:
        raise WorkloadMissError(tuple(sorted(missing)))
    return execute_specs(chunk)


class ProcessPoolRunner(TrialRunner):
    """Run trials on a persistent pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``$REPRO_WORKERS`` if set, else
        ``os.cpu_count()``.
    chunksize:
        Specs per work unit; defaults to ``$REPRO_CHUNKSIZE`` if set,
        else splits the batch into about 4 chunks per worker, a
        standard balance between scheduling slack (small chunks) and
        IPC overhead (large chunks).
    mp_context:
        A :mod:`multiprocessing` context, e.g. for forcing ``spawn``
        in tests; platform default when ``None``.

    Both knobs resolve through the shared argument/env validators, so
    an invalid environment value (``REPRO_CHUNKSIZE=0``, say) is
    rejected here exactly as it is in ``make_runner`` — never silently
    ignored.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunksize: int | None = None,
        mp_context=None,
    ) -> None:
        self.workers = resolve_workers(
            workers, default=os.cpu_count() or 1
        )
        self.chunksize = resolve_chunksize(chunksize)
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        # The worker initializer's payload table.  The dict *instance*
        # is fixed for the pool's lifetime (it is what initargs
        # references); run() fills it for the duration of a batch and
        # empties it afterwards, so a worker spawning mid-batch starts
        # with the batch's workloads cached, while the runner retains
        # no payload between batches (the emitter owns payload
        # lifetime, not the pool).
        self._init_payloads: dict[str, Workload] = {}

    # -- pool lifecycle ---------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Return the live pool, creating it on first parallel batch.

        Workers read ``_init_payloads`` as they spawn (fork snapshots
        it; spawn pickles it per worker), so the batch in hand pays no
        first-touch round-trips.  Workloads of *later* batches reach
        the already-running workers via first-touch instead.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self.mp_context,
                initializer=install_workloads,
                initargs=(self._init_payloads,),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Tear the pool down without waiting (error/interrupt path)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut the pool down and reap its worker processes."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- scheduling -------------------------------------------------------

    def _pick_chunksize(self, total: int) -> int:
        return pick_chunksize(total, self.workers, self.chunksize)

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        specs = list(specs)
        if not specs:
            return []
        size = self._pick_chunksize(len(specs))
        chunks = split_chunks(specs, size)
        if self.workers == 1 or len(chunks) == 1:
            # A single worker, or a batch that folds into one chunk
            # (e.g. fewer trials than an explicit chunksize): there is
            # no parallelism to extract, so skip the pool entirely
            # rather than shipping the lone chunk to a worker.
            return execute_specs(specs)
        payloads = batch_payloads(specs)
        results: list[TrialResult | None] = [None] * len(specs)
        # Per chunk offset: ids already shipped with a resubmission.
        # Retries are cumulative — a retry carries every id its chunk
        # has ever reported missing — so the worker that executes it
        # (whichever one) installs them all, and a repeat report of a
        # shipped id is impossible.  Each miss therefore names at
        # least one *new* id (nested specs can reveal them in stages),
        # which bounds retries by the chunk's distinct workloads.
        shipped: dict[int, set[str]] = {}
        pending: dict = {}
        try:
            self._init_payloads.update(payloads)
            pool = self._ensure_pool()
            for start, chunk in chunks:
                pending[pool.submit(_execute_chunk, chunk)] = (start, chunk)
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    start, chunk = pending.pop(future)
                    try:
                        chunk_results = future.result()
                    except WorkloadMissError as miss:
                        already = shipped.setdefault(start, set())
                        if already and not (
                            set(miss.workload_ids) - already
                        ):
                            raise TrialExecutionError(
                                ("<pool>",),
                                "workload shipping did not converge "
                                f"for chunk at offset {start} (ids "
                                f"{miss.workload_ids} were already "
                                "shipped); this is a runtime bug",
                            ) from miss
                        already.update(miss.workload_ids)
                        # Ship only what this chunk is known to need —
                        # never the whole batch table, which would
                        # re-pickle every payload once per missing
                        # chunk on a warm pool.
                        needed = {
                            workload_id: resolve_miss_payload(
                                workload_id, payloads
                            )
                            for workload_id in sorted(already)
                        }
                        pending[
                            pool.submit(_execute_chunk, chunk, needed)
                        ] = (start, chunk)
                    else:
                        for offset, result in enumerate(chunk_results):
                            results[start + offset] = result
        except BrokenProcessPool as exc:
            self._discard_pool()
            raise TrialExecutionError(
                ("<pool>",),
                "a worker process died before finishing its chunk "
                "(crash or kill); re-run serially to isolate the trial",
            ) from exc
        except BaseException:
            # Fail fast — including on Ctrl-C: drop queued chunks (and
            # the pool, whose queue state is now suspect) instead of
            # finishing a long sweep before surfacing the error.
            self._discard_pool()
            raise
        finally:
            self._init_payloads.clear()
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "cold"
        return (
            f"ProcessPoolRunner(workers={self.workers}, "
            f"chunksize={self.chunksize}, pool={state})"
        )
