"""Trial runners: serial reference implementation and a process pool.

Both runners satisfy the same contract: ``run(specs)`` returns one
:class:`TrialResult` per spec, in submission order, raising
:class:`TrialExecutionError` if any trial fails.  The process pool
schedules *chunks* of consecutive specs onto workers to amortise IPC,
then reassembles results by chunk offset — so completion order never
leaks into the output (see the package docstring for the full
determinism contract).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec

__all__ = [
    "ProcessPoolRunner",
    "SerialRunner",
    "TrialRunner",
    "make_runner",
    "resolve_workers",
]

#: Environment variable consulted when no worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Target number of chunks handed to each worker (load-balance factor).
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument, else ``$REPRO_WORKERS``, else 1.

    >>> resolve_workers(3)
    3
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"${WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def make_runner(workers: int | None = None) -> TrialRunner:
    """Build the runner for a worker count (see :func:`resolve_workers`).

    One worker gives the zero-overhead :class:`SerialRunner`; more give
    a :class:`ProcessPoolRunner`.
    """
    count = resolve_workers(workers)
    if count == 1:
        return SerialRunner()
    return ProcessPoolRunner(workers=count)


class TrialRunner(ABC):
    """Executes :class:`TrialSpec` batches; results in submission order."""

    #: Number of worker processes this runner schedules onto.
    workers: int = 1

    @abstractmethod
    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        """Execute every spec; return results in submission order."""

    def run_values(self, specs: Iterable[TrialSpec]) -> list[Any]:
        """Like :meth:`run` but unwraps each result's ``value``."""
        return [result.value for result in self.run(specs)]


class SerialRunner(TrialRunner):
    """Run trials one after another in the calling process."""

    workers = 1

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        return [spec.execute() for spec in specs]

    def __repr__(self) -> str:
        return "SerialRunner()"


def _execute_chunk(chunk: Sequence[TrialSpec]) -> list[TrialResult]:
    """Worker entry point: execute one chunk of consecutive specs."""
    return [spec.execute() for spec in chunk]


class ProcessPoolRunner(TrialRunner):
    """Run trials on a pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Specs per work unit.  Default: splits the batch into about
        4 chunks per worker, a standard balance between scheduling
        slack (small chunks) and IPC overhead (large chunks).
    mp_context:
        A :mod:`multiprocessing` context, e.g. for forcing ``spawn``
        in tests; platform default when ``None``.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunksize: int | None = None,
        mp_context=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = resolve_workers(workers)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        self.mp_context = mp_context

    def _pick_chunksize(self, total: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-total // (self.workers * _CHUNKS_PER_WORKER)))

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or len(specs) == 1:
            # No parallelism to extract; skip pool start-up entirely.
            return [spec.execute() for spec in specs]

        size = self._pick_chunksize(len(specs))
        chunks = [
            (start, specs[start : start + size])
            for start in range(0, len(specs), size)
        ]
        results: list[TrialResult | None] = [None] * len(specs)
        pool_workers = min(self.workers, len(chunks))
        try:
            with ProcessPoolExecutor(
                max_workers=pool_workers, mp_context=self.mp_context
            ) as pool:
                futures = {
                    pool.submit(_execute_chunk, chunk): start
                    for start, chunk in chunks
                }
                try:
                    for future in as_completed(futures):
                        start = futures[future]
                        for offset, result in enumerate(future.result()):
                            results[start + offset] = result
                except BaseException:
                    # Fail fast — including on Ctrl-C: drop queued
                    # chunks instead of finishing a long sweep before
                    # surfacing the error.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        except BrokenProcessPool as exc:
            raise TrialExecutionError(
                ("<pool>",),
                "a worker process died before finishing its chunk "
                "(crash or kill); re-run serially to isolate the trial",
            ) from exc
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"ProcessPoolRunner(workers={self.workers})"
