"""Trial runners: serial reference implementation and a process pool.

Both runners satisfy the same contract: ``run(specs)`` returns one
:class:`TrialResult` per spec, in submission order, raising
:class:`TrialExecutionError` if any trial fails.  The process pool
schedules *chunks* of consecutive specs onto workers to amortise IPC,
then reassembles results by chunk offset — so completion order never
leaks into the output (see the package docstring for the full
determinism contract).

Experiments whose sweeps consist of many independent measurements use
:meth:`TrialRunner.run_grouped` to flatten all their per-trial specs
into **one** batch: a single sweep point's trials then interleave with
every other point's across the pool, instead of parallelism stopping at
the point boundary.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec

__all__ = [
    "ProcessPoolRunner",
    "SerialRunner",
    "TrialRunner",
    "make_runner",
    "resolve_workers",
]

#: Environment variable consulted when no worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Target number of chunks handed to each worker (load-balance factor).
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument, else ``$REPRO_WORKERS``, else 1.

    >>> resolve_workers(3)
    3
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"${WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def make_runner(workers: int | None = None) -> TrialRunner:
    """Build the runner for a worker count (see :func:`resolve_workers`).

    One worker gives the zero-overhead :class:`SerialRunner`; more give
    a :class:`ProcessPoolRunner`.
    """
    count = resolve_workers(workers)
    if count == 1:
        return SerialRunner()
    return ProcessPoolRunner(workers=count)


class TrialRunner(ABC):
    """Executes :class:`TrialSpec` batches; results in submission order."""

    #: Number of worker processes this runner schedules onto.
    workers: int = 1

    @abstractmethod
    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        """Execute every spec; return results in submission order."""

    def run_values(self, specs: Iterable[TrialSpec]) -> list[Any]:
        """Like :meth:`run` but unwraps each result's ``value``."""
        return [result.value for result in self.run(specs)]

    def run_grouped(
        self, groups: Iterable[tuple[Any, Iterable[TrialSpec]]]
    ) -> dict[Any, list[Any]]:
        """Execute labelled spec groups as one flat batch; re-group values.

        ``groups`` is an iterable of ``(label, specs)`` pairs — e.g. one
        group of per-trial specs per sweep point.  All specs run in a
        single :meth:`run` batch (so chunking spreads *within* a group
        across workers, not just across groups), and the values come
        back as ``{label: [value, ...]}`` with each group's values in
        its own submission order.  Labels must be hashable and unique.
        """
        labels: list[Any] = []
        bounds: list[tuple[int, int]] = []
        flat: list[TrialSpec] = []
        for label, specs in groups:
            batch = list(specs)
            labels.append(label)
            bounds.append((len(flat), len(flat) + len(batch)))
            flat.extend(batch)
        if len(set(labels)) != len(labels):
            raise ValueError("group labels must be unique")
        values = self.run_values(flat)
        return {
            label: values[start:stop]
            for label, (start, stop) in zip(labels, bounds)
        }


class SerialRunner(TrialRunner):
    """Run trials one after another in the calling process."""

    workers = 1

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        return [spec.execute() for spec in specs]

    def __repr__(self) -> str:
        return "SerialRunner()"


def _execute_chunk(chunk: Sequence[TrialSpec]) -> list[TrialResult]:
    """Worker entry point: execute one chunk of consecutive specs."""
    return [spec.execute() for spec in chunk]


class ProcessPoolRunner(TrialRunner):
    """Run trials on a pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Specs per work unit.  Default: splits the batch into about
        4 chunks per worker, a standard balance between scheduling
        slack (small chunks) and IPC overhead (large chunks).
    mp_context:
        A :mod:`multiprocessing` context, e.g. for forcing ``spawn``
        in tests; platform default when ``None``.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunksize: int | None = None,
        mp_context=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = resolve_workers(workers)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        self.mp_context = mp_context

    def _pick_chunksize(self, total: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-total // (self.workers * _CHUNKS_PER_WORKER)))

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        specs = list(specs)
        if not specs:
            return []
        size = self._pick_chunksize(len(specs))
        chunks = [
            (start, specs[start : start + size])
            for start in range(0, len(specs), size)
        ]
        if self.workers == 1 or len(chunks) == 1:
            # A single worker, or a batch that folds into one chunk
            # (e.g. fewer trials than an explicit chunksize): there is
            # no parallelism to extract, so skip pool start-up entirely
            # rather than shipping the lone chunk to a worker.
            return [spec.execute() for spec in specs]
        results: list[TrialResult | None] = [None] * len(specs)
        pool_workers = min(self.workers, len(chunks))
        try:
            with ProcessPoolExecutor(
                max_workers=pool_workers, mp_context=self.mp_context
            ) as pool:
                futures = {
                    pool.submit(_execute_chunk, chunk): start
                    for start, chunk in chunks
                }
                try:
                    for future in as_completed(futures):
                        start = futures[future]
                        for offset, result in enumerate(future.result()):
                            results[start + offset] = result
                except BaseException:
                    # Fail fast — including on Ctrl-C: drop queued
                    # chunks instead of finishing a long sweep before
                    # surfacing the error.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        except BrokenProcessPool as exc:
            raise TrialExecutionError(
                ("<pool>",),
                "a worker process died before finishing its chunk "
                "(crash or kill); re-run serially to isolate the trial",
            ) from exc
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"ProcessPoolRunner(workers={self.workers})"
