"""Socket cluster executor: trials on TCP worker nodes.

The third runner backend.  A :class:`ClusterRunner` (coordinator)
connects to ``repro worker serve`` node processes — on this machine or
any other — and speaks the shared-payload workload protocol of
:mod:`repro.runtime.workload` end-to-end over TCP:

* slim ``(trial, seed)`` specs stream to nodes in **chunks** (a spec's
  pickled wire form collapses its workload to a 16-byte content id);
  the coordinator keeps up to ``pipeline_depth`` chunks in flight per
  connection, so a node starts its next chunk without waiting a
  round-trip after finishing one;
* each content-addressed :class:`~repro.runtime.workload.Workload`
  ships to a node **once** — the coordinator tracks per-node shipped
  ids and attaches unseen payloads to the first chunk that needs them;
  a node that still meets an unknown id (nested specs reveal them in
  stages, or its LRU cache evicted the payload) reports a first-touch
  miss and the chunk is resubmitted with the payload attached;
* trial results stream back per chunk and are reassembled by offset
  (:class:`ChunkBoard`), so completion order never leaks into the
  output and the determinism contract holds: byte-identical
  ``ResultTable``\\ s versus ``SerialRunner`` for the same master seed;
* a trial that raises on a node comes back as a
  :class:`~repro.runtime.trial.TrialExecutionError` with the node-side
  traceback preserved in ``detail``.

Node-side execution pool
------------------------

A node executes chunks on a **process pool** of ``--node-workers``
local workers (default ``os.cpu_count()``), so one many-core remote
machine runs many trials concurrently and pipelined chunks overlap
instead of queueing.  The connection thread only dispatches and
replies — it never executes trials — so heartbeats are answered
promptly however busy the pool is.  A pool worker that dies mid-chunk
(crash, OOM kill) does not kill the node: the pool is rebuilt and the
affected chunks are answered with ``lost``, which the coordinator
requeues through the ordinary retry path.  Each pool worker carries a
watchdog that exits when its owning node process dies, so a killed or
wedged node never leaks orphan workers.

Shipped payloads land in a node-wide **LRU cache**
(:class:`WorkloadCache`, ``--cache-cap`` entries, default
``256``; ``0`` = unbounded) shared by every connection for the node's
lifetime.  Eviction is invisible: a chunk that needs an evicted
payload reports a miss and the coordinator re-ships it — content
addressing makes the re-ship redundant, never wrong.

Fault tolerance and heartbeats
------------------------------

Fault tolerance is at the **batch** level: a node that disconnects
mid-batch (crash, kill, network) has its outstanding chunks requeued
to the surviving nodes.  Trials are pure functions of their spec, so a
re-executed chunk reproduces its results exactly and the retry is
invisible in the output.  Each chunk carries a retry budget
(``retries`` requeues); exhausting it — or losing every node — raises
a clean ``TrialExecutionError`` naming the lost chunks.

A node that **wedges with its socket open** (paused VM, deadlocked
runtime, partition with no RST) is caught by heartbeat supervision:
the coordinator sends ``ping`` frames and expects traffic (``pong`` or
chunk replies) within the ``heartbeat`` deadline (argument, else
``$REPRO_HEARTBEAT`` seconds, else 10; ``0`` disables).  A silent node
is declared lost, its connection is dropped and its in-flight chunks
requeue exactly as if it had crashed.  Every post-handshake socket
read carries a timeout that feeds this supervision path — no
coordinator thread ever blocks forever on a wedged node.

Node discovery
--------------

``ClusterRunner(nodes=...)`` takes ``"host:port"`` strings; with no
argument it reads ``$REPRO_CLUSTER_NODES`` (comma-separated; duplicate
addresses are rejected — one node is one entry, use ``--node-workers``
for more concurrency per node).  With neither, the runner is
**self-managed**: it spawns ``workers`` (default 2) localhost ``repro
worker serve`` subprocesses on first use and reaps them on
``close()``.  External nodes are shared infrastructure — many runners
may connect to them in turn (a node's workload cache persists for its
lifetime, so a payload still ships once per *node*, not once per
runner) — and ``close()`` never shuts them down.

Wire format
-----------

Frames are ``b"RPRO" + big-endian uint32 length + pickle payload``;
:func:`encode_frame` / :class:`FrameReader` implement framing
independently of sockets (and are property-tested over torn and
partial reads).  :class:`MessageStream` serialises concurrent senders
with a lock, so replies raced by pool callbacks and pongs never
interleave mid-frame.  Messages are ``(kind, body)`` tuples; the
handshake is ``("hello", {"version"})`` → ``("welcome", {"version",
"pid"})``, then ``("chunk", {"chunk", "specs", "payloads"})`` answered
by one of ``("done", {"chunk", "packed"})`` (record arrays — chunks of
``run_trial`` records flatten column-wise on the node and reassemble
to identical ``TrialResult`` lists coordinator-side; see
:mod:`repro.runtime.recordwire`) or ``("done", {"chunk", "results"})``
(the pickled list — the fallback for chunks the packer declines, and
everything under ``$REPRO_RECORD_WIRE=pickle``), ``("miss", {"chunk",
"workload_ids"})``, ``("failed", {"chunk", "key", "detail"})`` or
``("lost", {"chunk", "reason"})`` (the node abandoned the chunk —
requeue it elsewhere; a graceful drain refusal carries ``"draining":
True``, which requeues the chunk without charging a retry and retires
the connection).  ``("ping", {...})`` → ``("pong", {...})`` may
interleave at any point; ``("shutdown", {})`` → ``("bye", {})`` asks
the node to stop: it refuses new chunks (answering ``lost``), finishes
the chunks in hand, then exits.

**Security note:** frames carry pickles, which execute arbitrary code
on unpickling.  A worker node must only listen where its coordinator
is trusted — the default bind is loopback; anything wider belongs on a
private network you control.
"""

from __future__ import annotations

import math
import os
import pickle
import queue
import select
import signal
import struct
import socket
import subprocess
import sys
import threading
import time
import weakref
from collections import OrderedDict, deque
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

from repro.runtime.runner import (
    TrialRunner,
    _execute_chunk,
    _resolve_positive,
    batch_payloads,
    pick_chunksize,
    resolve_chunksize,
    resolve_miss_payload,
    resolve_workers,
    split_chunks,
)
from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec
from repro.runtime.workload import Workload, WorkloadMissError

__all__ = [
    "ChunkBoard",
    "ClusterRunner",
    "FrameReader",
    "HEARTBEAT_ENV",
    "LocalNode",
    "MessageStream",
    "NODES_ENV",
    "NODE_CACHE_ENV",
    "NODE_WORKERS_ENV",
    "PIPELINE_ENV",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RECORD_WIRE_ENV",
    "WorkloadCache",
    "encode_frame",
    "node_process_pid",
    "parse_nodes",
    "resolve_cache_cap",
    "resolve_heartbeat",
    "resolve_node_workers",
    "resolve_pipeline_depth",
    "resolve_record_wire",
    "serve",
    "spawn_local_nodes",
]

#: Environment variable naming the worker nodes ("host:port,host:port").
NODES_ENV = "REPRO_CLUSTER_NODES"

#: Environment variable for the node-side execution pool size.
NODE_WORKERS_ENV = "REPRO_NODE_WORKERS"

#: Environment variable for chunks in flight per node connection.
PIPELINE_ENV = "REPRO_PIPELINE_DEPTH"

#: Environment variable for the heartbeat deadline (seconds; 0 = off).
HEARTBEAT_ENV = "REPRO_HEARTBEAT"

#: Environment variable for the node workload-cache cap (entries; 0 =
#: unbounded).
NODE_CACHE_ENV = "REPRO_NODE_CACHE"

#: Nodes a self-managed runner spawns when nothing names a count.
DEFAULT_LOCAL_NODES = 2

#: Chunks kept in flight per node connection when nothing names a depth.
DEFAULT_PIPELINE_DEPTH = 2

#: Seconds of silence before a node is presumed wedged (0 disables).
DEFAULT_HEARTBEAT = 10.0

#: Workload payloads a node caches before evicting least-recently-used.
DEFAULT_NODE_CACHE = 256

#: Seconds a spawned node gets to announce its READY line.
DEFAULT_SPAWN_TIMEOUT = 30.0

#: Seconds a shutting-down node waits for in-flight chunks to finish.
DEFAULT_DRAIN_TIMEOUT = 30.0

#: Seconds ``ClusterRunner.close()`` waits for a self-managed node's
#: ``bye`` after sending ``shutdown``; pipelined replies and buffered
#: pongs may precede it, so the wait is a wall-clock bound rather than
#: a frame count.
BYE_WAIT_TIMEOUT = 10.0

#: Bound on a node-side reply send.  Replies go out on the execution
#: pool's callback thread, which is shared by every connection: with
#: no bound, one coordinator that stops reading (wedged, partitioned)
#: would block that thread in ``sendall`` forever and stall chunk
#: completions for *every* coordinator on a shared node.  A timed-out
#: send drops only the wedged coordinator's reply; its own retry
#: machinery re-runs the chunk elsewhere.
NODE_SEND_TIMEOUT = 60.0

#: Miss/resubmit rounds one chunk may take on one node before the run
#: is declared non-convergent (legitimate rounds come from nested
#: workloads revealed in stages and from cache eviction; a chunk that
#: loops past this is hitting a runtime bug, not a slow reveal).
MISS_ROUND_CAP = 32

#: Bumped on any incompatible wire change; checked in the handshake.
#: v2: ping/pong heartbeats, the "lost" chunk reply, node-side pools.
#: v3: packed record arrays in the "done" reply (the "packed" body).
PROTOCOL_VERSION = 3

#: Record wire selector: "packed" (default) or "pickle".
RECORD_WIRE_ENV = "REPRO_RECORD_WIRE"


def resolve_record_wire() -> str:
    """How a node ships chunk records — ``$REPRO_RECORD_WIRE``.

    ``packed`` (the default) flattens eligible chunks into record
    arrays (:mod:`repro.runtime.recordwire`); ``pickle`` forces the
    legacy pickled ``TrialResult`` list.  Anything else raises
    :class:`ValueError` — same garbage-rejection contract as the other
    ``$REPRO_*`` switches.
    """
    raw = os.environ.get(RECORD_WIRE_ENV, "").strip().lower()
    if raw in ("", "packed"):
        return "packed"
    if raw == "pickle":
        return "pickle"
    raise ValueError(
        f"${RECORD_WIRE_ENV} must be packed or pickle, got {raw!r}"
    )

#: Stdout line a worker prints once its socket is bound (the spawner
#: parses it to learn an ephemeral port).
READY_PREFIX = "REPRO-WORKER LISTENING "

_MAGIC = b"RPRO"
_HEADER = struct.Struct(">4sI")

#: Upper bound on a single frame; a length beyond this means a corrupt
#: or hostile stream, not a real batch.
MAX_FRAME_BYTES = 1 << 31


class ProtocolError(RuntimeError):
    """The byte stream violated the cluster wire protocol."""


class _NodeLost(ConnectionError):
    """Heartbeat supervision declared a node dead (socket still open)."""


def resolve_node_workers(node_workers: int | None = None) -> int:
    """Node-side pool size: argument, else ``$REPRO_NODE_WORKERS``,
    else ``os.cpu_count()``."""
    return _resolve_positive(
        node_workers,
        NODE_WORKERS_ENV,
        "node worker count",
        os.cpu_count() or 1,
    )


def resolve_pipeline_depth(depth: int | None = None) -> int:
    """Chunks in flight per node connection: argument, else
    ``$REPRO_PIPELINE_DEPTH``, else 2."""
    return _resolve_positive(
        depth, PIPELINE_ENV, "pipeline depth", DEFAULT_PIPELINE_DEPTH
    )


def resolve_heartbeat(heartbeat: float | None = None) -> float:
    """Heartbeat deadline in seconds: argument, else
    ``$REPRO_HEARTBEAT``, else 10.0.  ``0`` disables supervision."""
    if heartbeat is None:
        raw = os.environ.get(HEARTBEAT_ENV, "").strip()
        if not raw:
            return DEFAULT_HEARTBEAT
        try:
            heartbeat = float(raw)
        except ValueError:
            raise ValueError(
                f"${HEARTBEAT_ENV} must be a number of seconds, got {raw!r}"
            ) from None
    if isinstance(heartbeat, bool) or not isinstance(
        heartbeat, (int, float)
    ):
        raise ValueError(
            f"heartbeat deadline must be a number of seconds, "
            f"got {heartbeat!r}"
        )
    heartbeat = float(heartbeat)
    if not math.isfinite(heartbeat) or heartbeat < 0:
        raise ValueError(
            f"heartbeat deadline must be >= 0 seconds (0 disables), "
            f"got {heartbeat}"
        )
    return heartbeat


def resolve_cache_cap(cache_cap: int | None = None) -> int:
    """Node workload-cache cap in entries: argument, else
    ``$REPRO_NODE_CACHE``, else 256.  ``0`` means unbounded."""
    if cache_cap is None:
        raw = os.environ.get(NODE_CACHE_ENV, "").strip()
        if not raw:
            return DEFAULT_NODE_CACHE
        try:
            cache_cap = int(raw)
        except ValueError:
            raise ValueError(
                f"${NODE_CACHE_ENV} must be an integer, got {raw!r}"
            ) from None
    if isinstance(cache_cap, bool) or not isinstance(cache_cap, int):
        raise ValueError(
            f"cache cap must be an integer >= 0, got {cache_cap!r}"
        )
    if cache_cap < 0:
        raise ValueError(
            f"cache cap must be >= 0 (0 = unbounded), got {cache_cap}"
        )
    return cache_cap


# --------------------------------------------------------------------------
# Framing (socket-independent; property-tested)
# --------------------------------------------------------------------------


def encode_frame(message) -> bytes:
    """Serialise one message into a self-delimiting frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, len(payload)) + payload


class FrameReader:
    """Incremental frame decoder tolerant of arbitrary read boundaries.

    ``feed`` accepts whatever bytes arrived — half a header, three
    frames and a torn fourth — buffers the remainder, and returns every
    message completed so far, in order.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def mid_frame(self) -> bool:
        """True when buffered bytes form an incomplete frame."""
        return bool(self._buffer)

    def feed(self, data: bytes) -> list:
        self._buffer.extend(data)
        messages = []
        while len(self._buffer) >= _HEADER.size:
            magic, length = _HEADER.unpack_from(self._buffer)
            if magic != _MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(magic)!r}; peer is not "
                    "speaking the repro cluster protocol"
                )
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte cap"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            messages.append(pickle.loads(payload))
        return messages


def _wait_readable(readable, timeout: float | None) -> bool:
    """Block until ``readable`` (a socket or raw fd) is readable
    (True) or ``timeout`` seconds elapse (False; ``None`` waits
    forever).

    Uses ``poll`` where the platform has it: unlike ``select`` it has
    no ``FD_SETSIZE`` cap, so the cluster backend keeps working inside
    host processes that already hold >1024 descriptors.  Raises
    ``OSError``/``ValueError`` if the descriptor is closed under us.
    """
    if hasattr(select, "poll"):
        fd = readable if isinstance(readable, int) else readable.fileno()
        poller = select.poll()
        poller.register(fd, select.POLLIN)
        ms = None if timeout is None else max(0, math.ceil(timeout * 1000))
        return bool(poller.poll(ms))
    return bool(select.select([readable], [], [], timeout)[0])


class MessageStream:
    """A connected socket carrying framed messages, both directions.

    ``send`` is safe under concurrency: a lock serialises senders, so a
    pool callback replying ``done`` and the connection thread replying
    ``pong`` can never interleave bytes mid-frame.  ``send_timeout``
    bounds how long a send may block on a peer that stopped reading
    (None = forever); a timed-out send leaves the stream torn and
    raises ``TimeoutError`` (an ``OSError``), which the coordinator
    treats as a lost node.  The bound is applied per ``send`` and the
    socket's previous timeout restored afterwards — reads never
    inherit it, so a connection that is simply idle between batches
    is not torn down after ``send_timeout`` seconds of quiet.
    """

    def __init__(
        self,
        sock: socket.socket,
        send_timeout: float | None = None,
    ) -> None:
        self._sock = sock
        self._reader = FrameReader()
        self._pending: deque = deque()
        self._send_lock = threading.Lock()
        self._send_timeout = send_timeout
        #: Total bytes ever read off the socket.  Heartbeat supervision
        #: compares it across polls: a frame larger than deadline ×
        #: bandwidth completes no message for a while, but advancing
        #: bytes are proof of life all the same.
        self.bytes_received = 0

    def send(self, message) -> None:
        frame = encode_frame(message)  # pickle before any byte ships
        with self._send_lock:
            if self._send_timeout is None:
                self._sock.sendall(frame)
                return
            previous = self._sock.gettimeout()
            self._sock.settimeout(self._send_timeout)
            try:
                self._sock.sendall(frame)
            finally:
                # Restore even after a timeout (the stream is torn
                # then, but the caller owns the close): the send bound
                # must never outlive the send, or the next blocking
                # ``recv`` would inherit it and tear down a perfectly
                # healthy connection that merely sat idle.
                try:
                    self._sock.settimeout(previous)
                except OSError:
                    pass  # racing close; the stream is finished anyway

    def recv(self, timeout: float | None = None):
        """Return the next message, or ``None`` on ``timeout`` seconds
        of quiet socket (``timeout=None`` blocks until a frame or EOF).

        Readiness is polled (:func:`_wait_readable`) rather than
        taken from the socket timeout, so a concurrent ``send`` (which
        briefly applies ``send_timeout`` to the socket) can never leak
        its bound into a blocking read — an idle connection stays up
        indefinitely.

        Raises :class:`ConnectionError` on orderly EOF between frames
        and :class:`ProtocolError` on EOF that tears a frame in half.
        """
        while not self._pending:
            try:
                if not _wait_readable(self._sock, timeout):
                    return None
            except (OSError, ValueError):
                # fd closed under us (peer teardown in another thread).
                raise ConnectionError("connection closed") from None
            try:
                data = self._sock.recv(1 << 16)
            except TimeoutError:
                # A racing send's bound expired between the readiness
                # poll and this read; the bytes are still there — poll
                # again rather than misreport a dead connection.
                continue
            if not data:
                if self._reader.mid_frame:
                    raise ProtocolError("connection closed mid-frame")
                raise ConnectionError("connection closed by peer")
            self.bytes_received += len(data)
            self._pending.extend(self._reader.feed(data))
        return self._pending.popleft()

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def parse_nodes(nodes) -> tuple[tuple[str, int], ...]:
    """Normalise node addresses to ``((host, port), ...)``.

    Accepts a comma-separated string (the ``$REPRO_CLUSTER_NODES``
    form), an iterable of ``"host:port"`` strings, or an iterable of
    ``(host, port)`` pairs — rejecting empty hosts, out-of-range ports
    and duplicate addresses uniformly.  A duplicated address would
    create two independent coordinator-side ledgers (shipped payload
    ids, once-per-node accounting) for one physical node; one node is
    one entry — ``--node-workers`` adds concurrency *within* it.

    >>> parse_nodes("127.0.0.1:7101, 127.0.0.1:7102")
    (('127.0.0.1', 7101), ('127.0.0.1', 7102))
    """
    if isinstance(nodes, str):
        # Empty segments (trailing comma, doubled separator — easy
        # shell/templating artifacts) are skipped, not errors.
        nodes = [part for part in nodes.split(",") if part.strip()]
    out = []
    for node in nodes:
        if isinstance(node, str):
            text = node.strip()
            host, sep, port_text = text.rpartition(":")
            if not sep:
                raise ValueError(
                    f"node address {text!r} is not 'host:port'"
                )
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(
                    f"node address {text!r} has a non-integer port"
                ) from None
        else:
            host, port = node
        host = str(host).strip()
        if not host:
            raise ValueError(f"node address {node!r} has an empty host")
        if not 1 <= int(port) <= 65535:
            raise ValueError(
                f"node address {node!r} has out-of-range port {port}"
            )
        out.append((host, int(port)))
    if not out:
        raise ValueError("no cluster node addresses given")
    duplicates = sorted(
        {address for address in out if out.count(address) > 1}
    )
    if duplicates:
        named = ", ".join(f"{h}:{p}" for h, p in duplicates)
        raise ValueError(
            f"duplicate cluster node address(es): {named}; list each "
            "node once (use --node-workers for more concurrency per "
            "node)"
        )
    return tuple(out)


# --------------------------------------------------------------------------
# Worker node (the `repro worker serve` side)
# --------------------------------------------------------------------------

#: Pid of the owning `repro worker serve` process, set in each pool
#: worker by the pool initializer (None outside a node pool).
_NODE_PID: int | None = None


def _orphan_watch(parent_pid: int) -> None:  # pragma: no cover - daemon
    # Reaps this pool worker if its node dies without pool shutdown
    # (SIGKILL, wedge-then-kill): re-parenting flips os.getppid().
    while True:
        if os.getppid() != parent_pid:
            os._exit(2)
        time.sleep(1.0)


def _node_pool_init(parent_pid: int) -> None:
    global _NODE_PID
    _NODE_PID = parent_pid
    threading.Thread(
        target=_orphan_watch,
        args=(parent_pid,),
        daemon=True,
        name="repro-node-orphan-watch",
    ).start()


def node_process_pid() -> int | None:
    """Pid of the ``repro worker serve`` process that owns this pool
    worker (None when not running inside a node's execution pool)."""
    return _NODE_PID


class WorkloadCache:
    """Thread-safe LRU cache of shipped workload payloads, node-wide.

    ``cap=0`` means unbounded (the pre-eviction behaviour).  Eviction
    is harmless by construction: payloads are content-addressed and the
    coordinator re-ships an evicted id through the ordinary first-touch
    miss path, so a bounded cache trades a re-ship round-trip for
    bounded memory on a months-long shared node.
    """

    def __init__(self, cap: int = DEFAULT_NODE_CACHE) -> None:
        if cap < 0:
            raise ValueError(f"cache cap must be >= 0, got {cap}")
        self.cap = cap
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Workload] = OrderedDict()

    def install(self, payloads: Mapping[str, Workload]) -> None:
        """Cache freshly-shipped payloads (most-recently-used)."""
        with self._lock:
            for workload_id, workload in payloads.items():
                self._entries[workload_id] = workload
                self._entries.move_to_end(workload_id)
            if self.cap:
                while len(self._entries) > self.cap:
                    self._entries.popitem(last=False)

    def lookup(
        self, workload_ids: Iterable[str]
    ) -> tuple[dict[str, Workload], tuple[str, ...]]:
        """Split ids into ``(found payloads, missing ids)``; touching
        found entries keeps hot payloads resident."""
        found: dict[str, Workload] = {}
        missing: list[str] = []
        with self._lock:
            for workload_id in workload_ids:
                workload = self._entries.get(workload_id)
                if workload is None:
                    missing.append(workload_id)
                else:
                    self._entries.move_to_end(workload_id)
                    found[workload_id] = workload
        return found, tuple(sorted(missing))

    def ids(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _NodeServer:
    """Per-process state behind :func:`serve`: the execution pool, the
    workload cache and the drain bookkeeping, shared by every
    connection for the node's lifetime."""

    def __init__(self, workers: int, cache_cap: int) -> None:
        self.workers = workers
        self.cache = WorkloadCache(cache_cap)
        self.stop = threading.Event()
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._active = 0
        self._idle = threading.Condition(self._lock)

    def pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_node_pool_init,
                    initargs=(os.getpid(),),
                )
            return self._pool

    def discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop ``pool`` if it is still current (post-breakage); the
        identity check keeps racing callbacks from killing a healthy
        replacement."""
        with self._lock:
            mine = self._pool is pool
            if mine:
                self._pool = None
        if mine:
            pool.shutdown(wait=False, cancel_futures=True)

    def chunk_started(self) -> None:
        with self._lock:
            self._active += 1

    def chunk_finished(self) -> None:
        with self._idle:
            self._active -= 1
            self._idle.notify_all()

    def drain(self, timeout: float) -> bool:
        """Wait until no chunk is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


class _ChunkJob:
    """One chunk executing on the node pool, with its reply route."""

    __slots__ = ("server", "stream", "chunk_id", "specs", "shipped", "pool")

    def __init__(self, server, stream, chunk_id, specs, shipped) -> None:
        self.server = server
        self.stream = stream
        self.chunk_id = chunk_id
        self.specs = specs
        self.shipped = shipped  # payloads attached across resubmits
        self.pool = None  # executor the live future belongs to


def _reply(stream: MessageStream, message, chunk_id) -> None:
    """Send a chunk reply, surviving a gone coordinator and a reply
    that will not pickle (reported as the trial failure it is)."""
    try:
        stream.send(message)
    except (ConnectionError, OSError):
        # Coordinator hung up, or stopped reading long enough to time
        # the send out; either way its supervision owns the loss.  A
        # timed-out sendall may have torn a frame, so the stream is
        # dead: close it (which also unblocks the connection thread)
        # rather than follow with garbage.
        stream.close()
    except Exception as exc:
        import traceback

        try:
            stream.send(
                (
                    "failed",
                    {
                        "chunk": chunk_id,
                        "key": ("<node>",),
                        "detail": (
                            "chunk reply could not be serialised: "
                            f"{type(exc).__name__}: {exc}\n"
                            f"{traceback.format_exc()}"
                        ),
                    },
                )
            )
        except (ConnectionError, OSError):
            pass


def _submit_job(job: _ChunkJob) -> None:
    try:
        pool = job.server.pool()
        job.pool = pool
        future = pool.submit(
            _execute_chunk, job.specs, dict(job.shipped) or None
        )
    except Exception as exc:
        _finish_job(
            job,
            (
                "lost",
                {
                    "chunk": job.chunk_id,
                    "reason": f"node pool unavailable: {exc}",
                },
            ),
        )
        return
    future.add_done_callback(lambda f, job=job: _job_done(job, f))


def _job_done(job: _ChunkJob, future) -> None:
    """Pool completion callback: reply, resubmit on a local miss, or
    abandon the chunk (``lost``) when the pool broke under it."""
    chunk_id = job.chunk_id
    try:
        results = future.result()
    except WorkloadMissError as miss:
        found, missing = job.server.cache.lookup(miss.workload_ids)
        if missing:
            # The node itself does not hold these (never shipped, or
            # evicted): first-touch back to the coordinator.
            _finish_job(
                job,
                ("miss", {"chunk": chunk_id, "workload_ids": missing}),
            )
            return
        if not any(wid not in job.shipped for wid in found):
            import traceback

            _finish_job(
                job,
                (
                    "failed",
                    {
                        "chunk": chunk_id,
                        "key": ("<node>",),
                        "detail": (
                            "workload shipping did not converge on the "
                            f"node pool (ids {sorted(found)} were "
                            "already attached); this is a runtime "
                            f"bug\n{traceback.format_exc()}"
                        ),
                    },
                ),
            )
            return
        job.shipped.update(found)
        _submit_job(job)
        return
    except (BrokenProcessPool, CancelledError) as exc:
        if job.pool is not None:
            job.server.discard_pool(job.pool)
        _finish_job(
            job,
            (
                "lost",
                {
                    "chunk": chunk_id,
                    "reason": (
                        "a node pool worker died mid-chunk "
                        f"({type(exc).__name__}); pool rebuilt"
                    ),
                },
            ),
        )
        return
    except TrialExecutionError as err:
        _finish_job(
            job,
            (
                "failed",
                {"chunk": chunk_id, "key": err.key, "detail": err.detail},
            ),
        )
        return
    except BaseException as exc:  # defensive: never die silently
        import traceback

        _finish_job(
            job,
            (
                "failed",
                {
                    "chunk": chunk_id,
                    "key": ("<node>",),
                    "detail": (
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc()}"
                    ),
                },
            ),
        )
        return
    try:
        message = _done_message(job, results)
    except ValueError as exc:
        # Garbage $REPRO_RECORD_WIRE on the node: a config error, not
        # a wire violation — report it as the failure it is.
        _finish_job(
            job,
            (
                "failed",
                {
                    "chunk": chunk_id,
                    "key": ("<node>",),
                    "detail": str(exc),
                },
            ),
        )
        return
    _finish_job(job, message)


def _done_message(job: _ChunkJob, results) -> tuple:
    """Build the ``done`` reply — packed record arrays when possible.

    Chunks of ``run_trial`` records flatten to a handful of flat
    arrays (:func:`repro.runtime.recordwire.pack_records`); anything
    the packer declines — foreign workloads, records it cannot
    represent, ``$REPRO_RECORD_WIRE=pickle`` — ships as the legacy
    pickled list.  Both bodies reassemble to identical results.
    """
    body = {"chunk": job.chunk_id}
    if resolve_record_wire() == "packed":
        from repro.runtime.recordwire import pack_records

        def _resolve(workload_id):
            found, _missing = job.server.cache.lookup([workload_id])
            return found.get(workload_id)

        packed = pack_records(job.specs, results, resolve=_resolve)
        if packed is not None:
            body["packed"] = packed
            return ("done", body)
    body["results"] = results
    return ("done", body)


def _finish_job(job: _ChunkJob, message) -> None:
    try:
        _reply(job.stream, message, job.chunk_id)
    finally:
        job.server.chunk_finished()


def _start_chunk(server: _NodeServer, stream: MessageStream, body) -> None:
    chunk_id = body["chunk"]
    payloads = dict(body.get("payloads") or {})
    if payloads:
        server.cache.install(payloads)
    if server.stop.is_set():
        # Draining for shutdown: the chunks in hand finish, new ones
        # are refused so the coordinator requeues them elsewhere.
        _reply(
            stream,
            (
                "lost",
                {
                    "chunk": chunk_id,
                    "reason": "node draining for shutdown",
                    # Tells the coordinator this is a graceful refusal,
                    # not a chunk failure: requeue for free and stop
                    # feeding this connection.
                    "draining": True,
                },
            ),
            chunk_id,
        )
        return
    server.chunk_started()
    _submit_job(_ChunkJob(server, stream, chunk_id, body["specs"], payloads))


def _handle_connection(conn: socket.socket, server: _NodeServer) -> None:
    """Serve one coordinator connection until it hangs up.

    This thread only dispatches: chunks run on the node's process pool
    and reply from its callbacks, so pings are answered promptly
    however long the pool's chunks take.
    """
    stream = MessageStream(conn, send_timeout=NODE_SEND_TIMEOUT)
    try:
        while True:
            try:
                message = stream.recv()
            except (ConnectionError, ProtocolError, OSError):
                return
            kind, body = message
            try:
                if kind == "hello":
                    if body.get("version") != PROTOCOL_VERSION:
                        stream.send(
                            (
                                "error",
                                {
                                    "detail": (
                                        "protocol version mismatch: "
                                        "node speaks "
                                        f"{PROTOCOL_VERSION}, "
                                        f"coordinator sent "
                                        f"{body.get('version')!r}"
                                    )
                                },
                            )
                        )
                        return
                    stream.send(
                        (
                            "welcome",
                            {
                                "version": PROTOCOL_VERSION,
                                "pid": os.getpid(),
                            },
                        )
                    )
                elif kind == "chunk":
                    _start_chunk(server, stream, body)
                elif kind == "ping":
                    stream.send(("pong", dict(body or {})))
                elif kind == "shutdown":
                    stream.send(("bye", {}))
                    server.stop.set()
                    return
                else:
                    stream.send(
                        (
                            "error",
                            {"detail": f"unknown message kind {kind!r}"},
                        )
                    )
                    return
            except (ConnectionError, OSError):
                # The coordinator vanished mid-exchange; nothing left
                # to answer.  In-flight chunks reply through their own
                # guarded path.
                return
    finally:
        stream.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    node_workers: int | None = None,
    cache_cap: int | None = None,
    ready_stream=None,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
) -> None:
    """Run a worker node: execute trial chunks for cluster coordinators.

    Binds ``host:port`` (``port=0`` picks an ephemeral port), announces
    ``REPRO-WORKER LISTENING host:port`` on ``ready_stream`` (default
    stdout), then serves coordinator connections — each on its own
    thread — until a coordinator sends ``shutdown`` or the process is
    signalled.  Chunks execute on a process pool of ``node_workers``
    (argument, else ``$REPRO_NODE_WORKERS``, else ``os.cpu_count()``)
    local workers; shipped payloads live in a node-wide LRU cache of
    ``cache_cap`` entries (argument, else ``$REPRO_NODE_CACHE``, else
    256; 0 = unbounded) shared across connections, so a payload ships
    to the node once per *node lifetime* however many runners use it —
    or once per eviction, recovered transparently via the miss path.

    On ``shutdown`` — the protocol message, or ``SIGTERM`` when
    serving from the main thread — the node drains: it stops accepting
    connections, refuses new chunks (``lost`` replies let coordinators
    requeue them) and waits up to ``drain_timeout`` seconds for the
    chunks in hand to finish before exiting, so racing coordinators on
    a shared node never lose completed work.
    """
    if not 0 <= port <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port}")
    state = _NodeServer(
        resolve_node_workers(node_workers), resolve_cache_cap(cache_cap)
    )
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    interrupted = False
    previous_term = None
    term_installed = False
    if threading.current_thread() is threading.main_thread():
        # SIGTERM (LocalNode.terminate, init systems, `kill`) takes
        # the same drain path as a ``shutdown`` message: the accept
        # loop notices the flag within its poll interval, new chunks
        # are refused, and the finally block below waits for the
        # chunks in hand.  Only installable from the main thread;
        # in-process nodes driven from other threads rely on the
        # ``shutdown`` message instead.
        def _on_term(signum, frame):
            state.stop.set()

        try:
            previous_term = signal.signal(signal.SIGTERM, _on_term)
            term_installed = True
        except (ValueError, OSError):
            pass
    try:
        server.bind((host, port))
        server.listen()
        bound_host, bound_port = server.getsockname()[:2]
        out = ready_stream if ready_stream is not None else sys.stdout
        print(f"{READY_PREFIX}{bound_host}:{bound_port}", file=out, flush=True)
        server.settimeout(0.2)  # poll so the shutdown flag is noticed
        while not state.stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=_handle_connection,
                args=(conn, state),
                daemon=True,
                name="repro-worker-conn",
            ).start()
    except KeyboardInterrupt:
        interrupted = True
    finally:
        server.close()
        if not interrupted:
            state.drain(drain_timeout)
        state.shutdown_pool()
        # Restored only after the drain, so a repeated TERM during the
        # drain window re-enters the (idempotent) handler instead of
        # killing the node mid-drain; escalation stays available via
        # SIGKILL.
        if term_installed:
            try:
                signal.signal(signal.SIGTERM, previous_term)
            except (ValueError, TypeError, OSError):
                # TypeError: the previous handler was installed by
                # non-Python code, so signal() had returned None —
                # nothing restorable.
                pass


# --------------------------------------------------------------------------
# Local node processes (self-managed clusters, tests, benchmarks)
# --------------------------------------------------------------------------


class LocalNode:
    """A ``repro worker serve`` subprocess on this machine."""

    def __init__(
        self, proc: subprocess.Popen, host: str, port: int
    ) -> None:
        self.proc = proc
        self.host = host
        self.port = port
        #: Most recent output lines, for post-mortem diagnostics; the
        #: drain thread keeps the pipe from ever filling (a full 64KB
        #: pipe would block a chatty node mid-write and hang its run).
        self.output_tail: deque[str] = deque(maxlen=50)
        self._drainer = threading.Thread(
            target=self._drain, daemon=True, name=f"repro-node-drain-{port}"
        )
        self._drainer.start()

    def _drain(self) -> None:
        try:
            for line in self.proc.stdout:
                self.output_tail.append(line)
        except ValueError:
            pass  # stdout closed by terminate()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def terminate(self, force: bool = False) -> None:
        """Stop the node process (idempotent).

        ``force=True`` skips the graceful SIGTERM — which, since the
        node drains its in-flight chunks on TERM, can take seconds —
        and SIGKILLs immediately.  The runner's fail-fast teardown
        paths use it: on Ctrl-C or a failed batch the connections are
        already gone, so nobody could receive what a drain delivers.
        The graceful default still escalates to SIGKILL after 5s, so
        it bounds — not honours — a node's ``drain_timeout``; a full
        drain is only guaranteed via the ``shutdown`` message or a
        TERM sent by a supervisor that grants the node its own grace
        period (systemd, Kubernetes).

        A wedged (SIGSTOPped) node cannot act on SIGTERM, so it is
        also sent SIGCONT — a no-op for a running process — before the
        escalation to SIGKILL.
        """
        if self.proc.poll() is None:
            if force:
                self.proc.kill()
            else:
                self.proc.terminate()
            if hasattr(signal, "SIGCONT"):
                try:
                    self.proc.send_signal(signal.SIGCONT)
                except OSError:
                    pass
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    def __repr__(self) -> str:
        state = "live" if self.proc.poll() is None else "dead"
        return f"LocalNode({self.address}, {state})"


def _terminate_nodes(
    nodes: Sequence[LocalNode], force: bool = False
) -> None:
    for node in nodes:
        node.terminate(force=force)


def _worker_env(extra_paths: Iterable[str] = ()) -> dict:
    """Subprocess env whose PYTHONPATH can import repro + extras."""
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    paths = [str(src_root), *[str(p) for p in extra_paths]]
    existing = env.get("PYTHONPATH")
    if existing:
        paths.append(existing)
    env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


def _read_ready_line(
    proc: subprocess.Popen, timeout: float = DEFAULT_SPAWN_TIMEOUT
) -> tuple[str, int]:
    """Parse the READY line off a node's stdout, under a deadline.

    A node that prints output but never the READY line (import hang,
    wedged interpreter, wrong entry point) used to block the spawner
    in ``readline()`` forever; now it is reaped at ``timeout`` and the
    error carries the captured output tail.  Reads the raw fd
    non-blocking (restored before handing off to the LocalNode drain
    thread) so a partial line cannot stall the deadline.
    """
    fd = proc.stdout.fileno()
    os.set_blocking(fd, False)
    deadline = time.monotonic() + timeout
    buffer = b""
    lines: list[str] = []
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                proc.kill()
                proc.wait()
                tail = "".join(lines[-50:])
                raise RuntimeError(
                    "worker node produced no "
                    f"{READY_PREFIX.strip()!r} line within {timeout}s; "
                    "killed it; output so far:\n" + tail
                )
            if not _wait_readable(fd, min(remaining, 0.5)):
                if proc.poll() is not None and not buffer:
                    raise RuntimeError(
                        "worker node exited before announcing its "
                        f"address (exit code {proc.returncode}); "
                        "output:\n" + "".join(lines)
                    )
                continue
            try:
                data = os.read(fd, 1 << 16)
            except BlockingIOError:
                continue
            if not data:
                # stdout EOF: usually the node exited — but a child
                # that closed its stdout while staying alive must not
                # hang the spawner in an unbounded wait; reap it under
                # the same deadline instead.
                try:
                    proc.wait(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
                    raise RuntimeError(
                        "worker node closed stdout without announcing "
                        "its address and stayed alive past the "
                        f"{timeout}s spawn deadline; killed it; "
                        "output so far:\n" + "".join(lines)
                    ) from None
                raise RuntimeError(
                    "worker node exited before announcing its address "
                    f"(exit code {proc.returncode}); output:\n"
                    + "".join(lines)
                )
            buffer += data
            while b"\n" in buffer:
                raw, buffer = buffer.split(b"\n", 1)
                line = raw.decode(errors="replace") + "\n"
                if line.startswith(READY_PREFIX):
                    host, _, port_text = (
                        line[len(READY_PREFIX) :].strip().rpartition(":")
                    )
                    return host, int(port_text)
                lines.append(line)
    finally:
        os.set_blocking(fd, True)


def spawn_local_nodes(
    count: int,
    *,
    extra_paths: Iterable[str] = (),
    node_workers: int | None = None,
    cache_cap: int | None = None,
    spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
) -> list[LocalNode]:
    """Spawn ``count`` localhost worker nodes on ephemeral ports.

    ``extra_paths`` adds directories to each node's import path
    (``repro worker serve --path``), for work units whose kernels live
    outside the installed package.  ``node_workers``/``cache_cap``
    set each node's execution-pool size and workload-cache cap (None
    leaves the node's own env/default resolution in charge).  A node
    that fails to announce its address within ``spawn_timeout``
    seconds is reaped and reported with its captured output.  On any
    spawn failure every already-started node is reaped before the
    error propagates.
    """
    if count < 1:
        raise ValueError(f"node count must be >= 1, got {count}")
    command = [sys.executable, "-u", "-m", "repro", "worker", "serve",
               "--host", "127.0.0.1", "--port", "0"]
    if node_workers is not None:
        command += ["--node-workers", str(node_workers)]
    if cache_cap is not None:
        command += ["--cache-cap", str(cache_cap)]
    for path in extra_paths:
        command += ["--path", str(path)]
    env = _worker_env(extra_paths)
    nodes: list[LocalNode] = []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                env=env,
                text=True,
            )
            host, port = _read_ready_line(proc, spawn_timeout)
            nodes.append(LocalNode(proc, host, port))
    except BaseException:
        _terminate_nodes(nodes)
        raise
    return nodes


# --------------------------------------------------------------------------
# Coordinator
# --------------------------------------------------------------------------


class ChunkBoard:
    """Reassembles chunk results into submission order, thread-safely.

    Chunks complete in whatever order nodes finish (and a requeued
    chunk may even complete twice — trials are pure, so duplicates are
    identical and placement is idempotent); the board keys everything
    by batch offset so the final list is always in submission order.
    """

    def __init__(self, total: int) -> None:
        self._results: list = [None] * total
        self._placed = [False] * total
        self._filled = 0
        self._lock = threading.Lock()

    def place(self, start: int, results: Sequence) -> None:
        if start < 0 or start + len(results) > len(self._results):
            raise ProtocolError(
                f"chunk at offset {start} with {len(results)} results "
                f"overflows a {len(self._results)}-trial batch"
            )
        with self._lock:
            for offset, result in enumerate(results):
                index = start + offset
                if not self._placed[index]:
                    self._placed[index] = True
                    self._filled += 1
                self._results[index] = result

    @property
    def complete(self) -> bool:
        return self._filled == len(self._results)

    def results(self) -> list:
        if not self.complete:
            missing = sum(1 for placed in self._placed if not placed)
            raise RuntimeError(f"batch incomplete: {missing} trials unplaced")
        return list(self._results)


class _Task:
    """One chunk in flight, with its retry and shipping history."""

    __slots__ = ("start", "chunk", "attempts", "shipped", "miss_rounds")

    def __init__(self, start: int, chunk: list) -> None:
        self.start = start
        self.chunk = chunk
        self.attempts = 0  # requeues consumed so far
        self.shipped: set[str] = set()  # ids this chunk reported missing
        self.miss_rounds = 0  # miss/resubmit rounds consumed so far

    def describe(self) -> str:
        first, last = self.chunk[0].key, self.chunk[-1].key
        span = f"{first!r}" if len(self.chunk) == 1 else f"{first!r}..{last!r}"
        return f"offset {self.start} (keys {span})"


class _RunState:
    """Completion/failure bookkeeping shared by the node threads."""

    def __init__(self, total_chunks: int, live_nodes: int, retries: int):
        self.total = total_chunks
        self.retries = retries
        self.completed = 0
        self.live = live_nodes
        self.failure: BaseException | None = None
        self._cond = threading.Condition()

    @property
    def finished(self) -> bool:
        return self.failure is not None or self.completed == self.total

    def chunk_done(self) -> None:
        with self._cond:
            self.completed += 1
            self._cond.notify_all()

    def fail(self, exc: BaseException) -> None:
        with self._cond:
            if self.failure is None:
                self.failure = exc
            self._cond.notify_all()

    def node_exit(self) -> None:
        with self._cond:
            self.live -= 1
            self._cond.notify_all()

    def wait(self) -> None:
        """Block until done, failed, or every node thread has exited."""
        with self._cond:
            while not self.finished and self.live > 0:
                self._cond.wait(timeout=0.5)


class _Node:
    """Coordinator-side handle on one worker node connection."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self.stream: MessageStream | None = None
        self.known_ids: set[str] = set()  # payloads this node has cached
        self.alive = False
        self.local: LocalNode | None = None  # backing self-managed proc
        # Healing backoff: a node that keeps refusing to come back is
        # not re-dialed (at full connect_timeout) before every batch.
        self.heal_backoff = 0.0
        self.heal_at = 0.0  # monotonic deadline for the next attempt

    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def connect(self, timeout: float) -> None:
        sock = socket.create_connection(self.address, timeout=timeout)
        # Sends stay bounded for the stream's whole life: a peer that
        # stops reading (wedged node, full buffer) times the send out,
        # which the coordinator treats as a lost node.  Every read —
        # the handshake here, recv polling afterwards — carries its
        # own explicit timeout, so no coordinator thread can block
        # forever on a wedged node.
        self.stream = MessageStream(sock, send_timeout=timeout)
        try:
            self.stream.send(("hello", {"version": PROTOCOL_VERSION}))
            reply = self.stream.recv(timeout=timeout)
        except socket.timeout:  # the hello send timed out
            reply = None
        except (OSError, ProtocolError):
            # Peer accepted then hung up (port squatter, restarting
            # node): close explicitly rather than leave the fd to GC.
            self.stream.close()
            raise
        if reply is None:
            self.stream.close()
            raise ProtocolError(
                f"handshake with {self.label()} "
                f"timed out after {timeout}s"
            ) from None
        kind, body = reply
        if kind != "welcome" or body.get("version") != PROTOCOL_VERSION:
            detail = body.get("detail", f"unexpected {kind!r} reply")
            self.stream.close()
            raise ProtocolError(
                f"handshake with {self.label()} failed: {detail}"
            )
        self.alive = True

    def close(self) -> None:
        self.alive = False
        if self.stream is not None:
            self.stream.close()
            self.stream = None


class ClusterRunner(TrialRunner):
    """Run trials on TCP worker nodes (``repro worker serve``).

    Parameters
    ----------
    nodes:
        Worker addresses — a ``"host:port,host:port"`` string or an
        iterable of ``"host:port"`` / ``(host, port)``.  Default: the
        ``$REPRO_CLUSTER_NODES`` environment variable; with neither,
        the runner self-manages ``workers`` localhost node processes.
    workers:
        Node count for the self-managed case (argument, else
        ``$REPRO_WORKERS``, else 2); ignored when ``nodes`` names the
        cluster, whose size wins.
    chunksize:
        Specs per chunk (argument, else ``$REPRO_CHUNKSIZE``, else
        about four chunks per node).
    retries:
        Requeues a chunk survives when nodes disconnect mid-batch (or
        abandon it with a ``lost`` reply) before the run fails naming
        it.
    connect_timeout:
        Seconds allowed for each node connection + handshake (also the
        per-send bound afterwards).
    pipeline_depth:
        Chunks kept in flight per node connection (argument, else
        ``$REPRO_PIPELINE_DEPTH``, else 2), so nodes never idle a
        round-trip between chunk boundaries.
    heartbeat:
        Seconds of node silence tolerated before the node is declared
        lost and its in-flight chunks requeue (argument, else
        ``$REPRO_HEARTBEAT``, else 10; ``0`` disables supervision).
        Pings go out every third of the deadline; a busy node answers
        them from its connection thread, so long chunks never trip it.
    node_workers:
        Execution-pool size for *self-managed* node processes (None
        lets each node resolve ``$REPRO_NODE_WORKERS``, else its CPU
        count).  External nodes choose their own pool size at
        ``repro worker serve`` time.

    Connections (and self-managed node processes) are lazy and
    persistent, mirroring :class:`ProcessPoolRunner`'s pool: the first
    parallel batch pays them, later batches reuse them, ``close()`` (or
    a ``with`` block) releases them.  A node lost mid-batch is healed
    before the *next* batch — reconnected at its address (external) or
    respawned (self-managed) — so a transient loss does not shrink the
    cluster for the runner's lifetime.  Errors tear connections down;
    external nodes themselves are never shut down by a coordinator.
    """

    def __init__(
        self,
        nodes=None,
        workers: int | None = None,
        chunksize: int | None = None,
        retries: int = 2,
        connect_timeout: float = 10.0,
        pipeline_depth: int | None = None,
        heartbeat: float | None = None,
        node_workers: int | None = None,
    ) -> None:
        if nodes is None:
            raw = os.environ.get(NODES_ENV, "").strip()
            nodes = raw or None
        self._addresses = parse_nodes(nodes) if nodes is not None else None
        if self._addresses is not None:
            # The named cluster's size wins, but the workers knob is
            # still *validated* — REPRO_WORKERS=0 must raise here as it
            # does on every other construction path.
            resolve_workers(workers)
            self.workers = len(self._addresses)
            self._spawn_count = 0
        else:
            self._spawn_count = resolve_workers(
                workers, default=DEFAULT_LOCAL_NODES
            )
            self.workers = self._spawn_count
        self.chunksize = resolve_chunksize(chunksize)
        if not isinstance(retries, int) or retries < 0:
            raise ValueError(f"retries must be an integer >= 0, got {retries}")
        self.retries = retries
        self.connect_timeout = float(connect_timeout)
        self.pipeline_depth = resolve_pipeline_depth(pipeline_depth)
        self.heartbeat = resolve_heartbeat(heartbeat)
        if node_workers is not None:
            _resolve_positive(
                node_workers, NODE_WORKERS_ENV, "node worker count", None
            )
        self.node_workers = node_workers
        self._nodes: list[_Node] | None = None
        # Self-managed node processes.  The list object is shared with
        # the GC finalizer and mutated in place, so whatever is spawned
        # at collection time is what gets reaped.
        self._local: list[LocalNode] = []
        self._finalizer = weakref.finalize(
            self, _terminate_nodes, self._local, True  # force: GC path
        )

    # -- node lifecycle ---------------------------------------------------

    def _spawn_one(self) -> LocalNode:
        local = spawn_local_nodes(1, node_workers=self.node_workers)[0]
        self._local.append(local)
        return local

    def _drop_local(self, local: LocalNode) -> None:
        # The node being dropped is dead or unhealthy; no drain to wait
        # for, and healing should not stall the batch.
        local.terminate(force=True)
        try:
            self._local.remove(local)
        except ValueError:
            pass

    def _connect_all(self) -> list[_Node]:
        nodes: list[_Node] = []
        try:
            if self._addresses is not None:
                for address in self._addresses:
                    node = _Node(address)
                    node.connect(self.connect_timeout)
                    nodes.append(node)
            else:
                for _ in range(self._spawn_count):
                    local = self._spawn_one()
                    node = _Node((local.host, local.port))
                    node.local = local
                    node.connect(self.connect_timeout)
                    nodes.append(node)
        except BaseException:
            for node in nodes:
                node.close()
            self._reap_local()
            raise
        self._nodes = nodes
        return nodes

    def _heal_nodes(self) -> None:
        """Best-effort recovery of nodes lost in an earlier batch.

        External nodes are reconnected at their address (an operator
        may have restarted them; the fresh connection assumes an empty
        payload cache, which at worst re-ships — content addressing
        makes that redundant, never wrong).  Self-managed processes are
        respawned.  A node that stays down just stays out of the pool;
        survivors carry the batch, and repeated failures back off
        exponentially so a permanently-dead address is not re-dialed
        (at full ``connect_timeout``) before every batch of a long
        sweep.
        """
        for index, node in enumerate(self._nodes):
            if node.alive:
                continue
            if time.monotonic() < node.heal_at:
                continue  # still backing off this address
            if node.local is not None:
                self._drop_local(node.local)
                try:
                    local = self._spawn_one()
                except (RuntimeError, OSError):
                    self._note_heal_failure(node)
                    continue
                fresh = _Node((local.host, local.port))
                fresh.local = local
            else:
                fresh = _Node(node.address)
            try:
                fresh.connect(self.connect_timeout)
            except (OSError, ProtocolError):
                if fresh.local is not None:
                    self._drop_local(fresh.local)
                self._note_heal_failure(node)
                continue
            self._nodes[index] = fresh

    @staticmethod
    def _note_heal_failure(node: _Node) -> None:
        node.heal_backoff = min(max(1.0, node.heal_backoff * 2), 60.0)
        node.heal_at = time.monotonic() + node.heal_backoff

    def _ensure_nodes(self) -> list[_Node]:
        """Connected live nodes: connect/spawn on first use, heal after
        losses, full restart only when nothing survived."""
        if self._nodes is None:
            return self._connect_all()
        if any(not node.alive for node in self._nodes):
            self._heal_nodes()
        live = [node for node in self._nodes if node.alive]
        if live:
            return live
        self._discard_nodes()
        return self._connect_all()

    def _reap_local(self, force: bool = True) -> None:
        # Force by default: the fail-fast callers (Ctrl-C, failed
        # batch) have already closed the connections, so a graceful
        # TERM would drain chunks whose results nobody can receive —
        # and stall the teardown doing it.  ``close()`` passes
        # ``force=False``: it just *asked* the node to drain via the
        # ``shutdown`` message, and killing that drain would break the
        # racing-coordinators-never-lose-completed-work promise.
        _terminate_nodes(self._local, force=force)
        del self._local[:]

    def _discard_nodes(self, force: bool = True) -> None:
        """Drop connections (and self-managed processes) immediately."""
        if self._nodes is not None:
            for node in self._nodes:
                node.close()
            self._nodes = None
        self._reap_local(force)

    def close(self) -> None:
        """Release connections; stop self-managed node processes.

        External nodes just see the connection close and keep serving
        (they are shared infrastructure); self-managed nodes get a
        graceful ``shutdown`` and then the subprocess is reaped.
        """
        if self._nodes is not None and self._local:
            for node in self._nodes:
                if node.alive and node.stream is not None:
                    try:
                        node.stream.send(("shutdown", {}))
                        # Stale frames (pongs, results of pipelined or
                        # requeued chunks) may precede the goodbye —
                        # and with ``pipeline_depth`` chunks in flight
                        # per connection there can be arbitrarily many,
                        # so drain by wall clock, not frame count.
                        drain_until = time.monotonic() + BYE_WAIT_TIMEOUT
                        while time.monotonic() < drain_until:
                            message = node.stream.recv(timeout=2.0)
                            if message is None or message[0] == "bye":
                                break
                    except (ConnectionError, ProtocolError, OSError):
                        pass
        # Graceful: the shutdown just sent asks the node to drain; a
        # force kill here would cut that drain short.
        self._discard_nodes(force=False)

    # -- scheduling -------------------------------------------------------

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        specs = list(specs)
        if not specs:
            return []
        size = pick_chunksize(len(specs), self.workers, self.chunksize)
        chunks = split_chunks(specs, size)
        if self._addresses is None and (
            self.workers == 1 or len(chunks) == 1
        ):
            # No parallelism to extract and the nodes would be this
            # machine anyway: run inline, exactly as the process pool
            # does for a single chunk.  Explicitly-named nodes are
            # different — the user asked for the work to run *there*
            # (imports, memory, data locality may only exist on the
            # node) — so every non-empty batch ships, however small.
            return [spec.execute() for spec in specs]
        nodes = self._ensure_nodes()
        payload_table = batch_payloads(specs)
        board = ChunkBoard(len(specs))
        tasks: queue.Queue = queue.Queue()
        for start, chunk in chunks:
            tasks.put(_Task(start, chunk))
        state = _RunState(
            total_chunks=len(chunks),
            live_nodes=len(nodes),
            retries=self.retries,
        )
        threads = [
            threading.Thread(
                target=self._node_loop,
                args=(node, tasks, board, state, payload_table),
                daemon=True,
                name=f"repro-cluster-{node.label()}",
            )
            for node in nodes
        ]
        for thread in threads:
            thread.start()
        try:
            state.wait()
        except BaseException:
            # Fail fast on Ctrl-C: drop connections (which unblocks any
            # thread mid-recv) instead of finishing the sweep first.
            self._discard_nodes()
            raise
        failure = state.failure
        if failure is None and not board.complete:
            lost = []
            while True:
                try:
                    lost.append(tasks.get_nowait())
                except queue.Empty:
                    break
            described = "; ".join(task.describe() for task in lost)
            failure = TrialExecutionError(
                ("<cluster>",),
                f"all cluster nodes lost with {len(lost)} chunk(s) "
                f"unfinished: {described or 'chunks still in flight'}",
            )
        if failure is not None:
            self._discard_nodes()  # unblocks threads stuck in recv
            for thread in threads:
                thread.join(timeout=5)
            raise failure
        for thread in threads:
            thread.join(timeout=5)
        return board.results()

    def _requeue(self, tasks, task: _Task, state: _RunState, cause) -> bool:
        """Give a lost chunk another node (False = retry cap blown)."""
        if task.attempts >= state.retries:
            state.fail(
                TrialExecutionError(
                    ("<cluster>",),
                    f"chunk at {task.describe()} lost after "
                    f"{task.attempts + 1} node failure(s) "
                    f"(retry cap {state.retries}): {cause}",
                )
            )
            return False
        task.attempts += 1
        tasks.put(task)
        return True

    def _node_loop(self, node, tasks, board, state, payload_table) -> None:
        """One thread per node: pipeline chunks, collect, supervise."""
        inflight: dict[int, _Task] = {}
        try:
            try:
                self._pump_node(
                    node, tasks, board, state, payload_table, inflight
                )
            except TrialExecutionError as exc:
                # Parent-side resolution failure (ownership bug), a
                # poison chunk, or a protocol non-convergence: the run
                # is wrong, not the node.  The connection may hold a
                # half-written frame, so drop it too.
                node.close()
                state.fail(exc)
            except (ConnectionError, ProtocolError, OSError) as exc:
                # Transport fault or heartbeat expiry: the node is
                # gone; its in-flight chunks requeue to survivors.
                node.close()
                if not state.finished:
                    for task in inflight.values():
                        if not self._requeue(tasks, task, state, exc):
                            break
        finally:
            state.node_exit()

    def _pump_node(
        self, node, tasks, board, state, payload_table, inflight
    ) -> None:
        """Drive one node until the batch finishes or the node fails.

        Keeps up to ``pipeline_depth`` chunks in flight, polls the
        socket with short timeouts (never a blocking read), pings on
        the heartbeat interval and raises :class:`_NodeLost` when the
        node goes silent past the deadline.
        """
        depth = self.pipeline_depth
        deadline = self.heartbeat
        interval = deadline / 3.0 if deadline else 0.0
        now = time.monotonic()
        # Start of the silence window the node is held accountable
        # for: reset on every frame received AND after every
        # potentially-long blocking send (shipping a chunk or re-shipped
        # payload), during which this thread was not listening —
        # silence while *we* were busy must not condemn the node.
        # Deliberately NOT reset on ping sends: a tiny ping to a wedged
        # node still lands in kernel buffers, so resetting there would
        # let a wedged node evade the deadline forever.
        quiet_since = now
        last_ping = now
        seen_bytes = node.stream.bytes_received
        draining = False
        while True:
            if draining and not inflight:
                # Nothing left in hand on a node that refuses new
                # work: retire the connection — closed, so the next
                # batch on a persistent runner routes the address
                # through the heal/backoff path instead of shipping
                # chunks to a corpse.  Checked ahead of the finished
                # early-return: a draining node whose in-hand chunk
                # completed the batch must still be retired, not left
                # looking alive.
                node.close()
                return
            if state.finished:
                return
            while not draining and len(inflight) < depth:
                try:
                    task = tasks.get_nowait()
                except queue.Empty:
                    break
                if state.finished:
                    tasks.put(task)
                    return
                try:
                    self._ship_task(node, task, payload_table)
                except (ConnectionError, ProtocolError, OSError):
                    # Transport: count the chunk with this node's
                    # losses so the outer handler requeues it.
                    inflight[task.start] = task
                    raise
                except TrialExecutionError:
                    raise
                except Exception as exc:
                    # Not a transport fault: the chunk itself is the
                    # problem (e.g. a spec that does not pickle).  A
                    # requeue would poison every node in turn, so fail
                    # fast naming the chunk.
                    raise TrialExecutionError(
                        ("<cluster>",),
                        f"chunk at {task.describe()} could not be "
                        f"shipped or collected: "
                        f"{type(exc).__name__}: {exc}",
                    ) from exc
                inflight[task.start] = task
                # The ship may have blocked past the deadline; the
                # node owes nothing for that stretch.
                quiet_since = time.monotonic()
            now = time.monotonic()
            if deadline and now - last_ping >= interval:
                node.stream.send(("ping", {"at": now}))
                last_ping = now
            message = node.stream.recv(timeout=0.05)
            received = node.stream.bytes_received
            if received != seen_bytes:
                # Bytes arrived even if no message completed yet: a
                # reply frame larger than deadline × bandwidth is mid
                # transfer, which is proof of life, not a wedge.
                seen_bytes = received
                quiet_since = time.monotonic()
            if message is None:
                now = time.monotonic()
                if deadline and now - quiet_since > deadline:
                    raise _NodeLost(
                        f"node {node.label()} sent nothing for "
                        f"{now - quiet_since:.1f}s (heartbeat deadline "
                        f"{deadline}s); presumed wedged"
                    )
                continue
            quiet_since = time.monotonic()
            kind, body = message
            if kind == "pong":
                continue
            if kind == "failed":
                state.fail(
                    TrialExecutionError(
                        tuple(body["key"]), body["detail"]
                    )
                )
                return
            task = inflight.get(body.get("chunk")) if body else None
            if task is None:
                raise ProtocolError(
                    f"unexpected reply kind {kind!r} from "
                    f"{node.label()} (no such chunk in flight)"
                )
            if kind == "done":
                packed = body.get("packed")
                if packed is not None:
                    from repro.runtime.recordwire import unpack_records

                    try:
                        results = unpack_records(packed, task.chunk)
                    except Exception as exc:
                        # An undecodable packed body is a protocol
                        # violation like a short reply: drop the node,
                        # requeue the chunk elsewhere.
                        raise ProtocolError(
                            f"node {node.label()} sent an undecodable "
                            f"packed record chunk: {exc}"
                        )
                else:
                    results = body["results"]
                if len(results) != len(task.chunk):
                    # A short reply would leave trials unplaced (and be
                    # misreported later); a long one could overwrite a
                    # neighbouring chunk.  Either way the node is not
                    # speaking the protocol: drop it, requeue the chunk.
                    raise ProtocolError(
                        f"node {node.label()} returned {len(results)} "
                        f"results for a {len(task.chunk)}-spec chunk"
                    )
                del inflight[task.start]
                board.place(task.start, results)
                state.chunk_done()
            elif kind == "miss":
                self._answer_miss(node, task, body, payload_table)
                # The payload re-ship is a blocking send too.
                quiet_since = time.monotonic()
            elif kind == "lost":
                del inflight[task.start]
                if body.get("draining"):
                    # A graceful drain refusal is not a chunk failure:
                    # hand the chunk back without charging a retry and
                    # stop feeding this connection — otherwise a node
                    # mid-shutdown would bounce the chunk back in
                    # milliseconds, burn the whole retry budget and
                    # fail a batch its healthy peers could finish.
                    # Chunks already in hand still complete and reply.
                    draining = True
                    tasks.put(task)
                    continue
                reason = body.get("reason", "node abandoned the chunk")
                if not self._requeue(tasks, task, state, reason):
                    return
            else:
                raise ProtocolError(
                    f"unexpected reply kind {kind!r} from {node.label()}"
                )

    def _answer_miss(self, node, task, body, payload_table) -> None:
        """Re-ship the payloads a node reported missing.

        Ids the ledger says were already shipped mean the node's LRU
        cache evicted them — amend the ledger and ship again (content
        addressing makes the re-ship redundant, never wrong).  A chunk
        that keeps missing past :data:`MISS_ROUND_CAP` is looping on a
        runtime bug, not a staged reveal, and fails the run.
        """
        missing = tuple(body["workload_ids"])
        task.miss_rounds += 1
        if task.miss_rounds > MISS_ROUND_CAP:
            raise TrialExecutionError(
                ("<cluster>",),
                f"workload shipping did not converge for chunk at "
                f"{task.describe()}: {task.miss_rounds} miss rounds "
                f"(last ids {missing}) against node {node.label()}; "
                "this is a runtime bug",
            )
        node.known_ids.difference_update(missing)  # evicted or stale
        task.shipped.update(missing)
        extra = {
            workload_id: resolve_miss_payload(
                workload_id, payload_table, scheduler="<cluster>"
            )
            for workload_id in sorted(missing)
        }
        self._ship_chunk(node, task, extra)

    @staticmethod
    def _ship_chunk(node: _Node, task: _Task, payloads: dict) -> None:
        """Send one chunk message; record what the node now caches."""
        node.stream.send(
            (
                "chunk",
                {
                    "chunk": task.start,
                    "specs": task.chunk,
                    "payloads": payloads,
                },
            )
        )
        node.known_ids.update(payloads)

    def _ship_task(self, node, task, payload_table) -> None:
        """First shipment of a chunk to a node: attach every payload
        the node is not known to hold."""
        payloads = {}
        for spec in task.chunk:
            workload = spec.workload
            if (
                isinstance(workload, Workload)
                and workload.workload_id not in node.known_ids
            ):
                payloads[workload.workload_id] = workload
        for workload_id in sorted(task.shipped):
            # Ids an earlier node reported missing: pre-ship them to a
            # node that has not seen them rather than waiting for the
            # same miss again.
            if (
                workload_id not in node.known_ids
                and workload_id not in payloads
            ):
                payloads[workload_id] = resolve_miss_payload(
                    workload_id, payload_table, scheduler="<cluster>"
                )
        self._ship_chunk(node, task, payloads)

    def __repr__(self) -> str:
        if self._addresses is not None:
            where = ",".join(f"{h}:{p}" for h, p in self._addresses)
        else:
            where = f"self-managed x{self._spawn_count}"
        state = "live" if self._nodes else "cold"
        return (
            f"ClusterRunner(nodes={where}, chunksize={self.chunksize}, "
            f"retries={self.retries}, depth={self.pipeline_depth}, "
            f"heartbeat={self.heartbeat}, {state})"
        )
