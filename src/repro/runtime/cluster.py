"""Socket cluster executor: trials on TCP worker nodes.

The third runner backend.  A :class:`ClusterRunner` (coordinator)
connects to ``repro worker serve`` node processes — on this machine or
any other — and speaks the shared-payload workload protocol of
:mod:`repro.runtime.workload` end-to-end over TCP:

* slim ``(trial, seed)`` specs stream to nodes in **chunks** (a spec's
  pickled wire form collapses its workload to a 16-byte content id);
* each content-addressed :class:`~repro.runtime.workload.Workload`
  ships to a node **once** — the coordinator tracks per-node shipped
  ids and attaches unseen payloads to the first chunk that needs them;
  a worker that still meets an unknown id (nested specs reveal them in
  stages) reports a first-touch miss and the chunk is resubmitted with
  the payload attached, exactly as the process pool does;
* trial results stream back per chunk and are reassembled by offset
  (:class:`ChunkBoard`), so completion order never leaks into the
  output and the determinism contract holds: byte-identical
  ``ResultTable``\\ s versus ``SerialRunner`` for the same master seed;
* a trial that raises on a node comes back as a
  :class:`~repro.runtime.trial.TrialExecutionError` with the node-side
  traceback preserved in ``detail``.

Fault tolerance is at the **batch** level: a node that disconnects
mid-batch (crash, kill, network) has its outstanding chunk requeued to
the surviving nodes.  Trials are pure functions of their spec, so a
re-executed chunk reproduces its results exactly and the retry is
invisible in the output.  Each chunk carries a retry budget
(``retries`` requeues); exhausting it — or losing every node — raises
a clean ``TrialExecutionError`` naming the lost chunks.  The trigger
is a *broken connection*: a node that wedges while its socket stays
open (deadlocked trial, paused VM, partition with no RST) blocks its
chunk indefinitely, exactly as a hung trial blocks the process pool —
heartbeat-based detection is a ROADMAP follow-on.

Node discovery
--------------

``ClusterRunner(nodes=...)`` takes ``"host:port"`` strings; with no
argument it reads ``$REPRO_CLUSTER_NODES`` (comma-separated).  With
neither, the runner is **self-managed**: it spawns ``workers`` (default
2) localhost ``repro worker serve`` subprocesses on first use and reaps
them on ``close()``.  External nodes are shared infrastructure — many
runners may connect to them in turn (a node's workload cache persists
for its lifetime, so a payload still ships once per *node*, not once
per runner) — and ``close()`` never shuts them down.

Wire format
-----------

Frames are ``b"RPRO" + big-endian uint32 length + pickle payload``;
:func:`encode_frame` / :class:`FrameReader` implement framing
independently of sockets (and are property-tested over torn and
partial reads).  Messages are ``(kind, body)`` tuples; the handshake is
``("hello", {"version"})`` → ``("welcome", {"version", "pid"})``, then
``("chunk", {"chunk", "specs", "payloads"})`` answered by one of
``("done", {"chunk", "results"})``, ``("miss", {"chunk",
"workload_ids"})`` or ``("failed", {"chunk", "key", "detail"})``.

**Security note:** frames carry pickles, which execute arbitrary code
on unpickling.  A worker node must only listen where its coordinator
is trusted — the default bind is loopback; anything wider belongs on a
private network you control.
"""

from __future__ import annotations

import os
import pickle
import queue
import struct
import socket
import subprocess
import sys
import threading
import time
import weakref
from collections import deque
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.runtime.runner import (
    TrialRunner,
    _execute_chunk,
    batch_payloads,
    pick_chunksize,
    resolve_chunksize,
    resolve_miss_payload,
    resolve_workers,
    split_chunks,
)
from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec
from repro.runtime.workload import Workload, WorkloadMissError

__all__ = [
    "ChunkBoard",
    "ClusterRunner",
    "FrameReader",
    "LocalNode",
    "MessageStream",
    "NODES_ENV",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_frame",
    "parse_nodes",
    "serve",
    "spawn_local_nodes",
]

#: Environment variable naming the worker nodes ("host:port,host:port").
NODES_ENV = "REPRO_CLUSTER_NODES"

#: Nodes a self-managed runner spawns when nothing names a count.
DEFAULT_LOCAL_NODES = 2

#: Bumped on any incompatible wire change; checked in the handshake.
PROTOCOL_VERSION = 1

#: Stdout line a worker prints once its socket is bound (the spawner
#: parses it to learn an ephemeral port).
READY_PREFIX = "REPRO-WORKER LISTENING "

_MAGIC = b"RPRO"
_HEADER = struct.Struct(">4sI")

#: Upper bound on a single frame; a length beyond this means a corrupt
#: or hostile stream, not a real batch.
MAX_FRAME_BYTES = 1 << 31


class ProtocolError(RuntimeError):
    """The byte stream violated the cluster wire protocol."""


# --------------------------------------------------------------------------
# Framing (socket-independent; property-tested)
# --------------------------------------------------------------------------


def encode_frame(message) -> bytes:
    """Serialise one message into a self-delimiting frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, len(payload)) + payload


class FrameReader:
    """Incremental frame decoder tolerant of arbitrary read boundaries.

    ``feed`` accepts whatever bytes arrived — half a header, three
    frames and a torn fourth — buffers the remainder, and returns every
    message completed so far, in order.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def mid_frame(self) -> bool:
        """True when buffered bytes form an incomplete frame."""
        return bool(self._buffer)

    def feed(self, data: bytes) -> list:
        self._buffer.extend(data)
        messages = []
        while len(self._buffer) >= _HEADER.size:
            magic, length = _HEADER.unpack_from(self._buffer)
            if magic != _MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(magic)!r}; peer is not "
                    "speaking the repro cluster protocol"
                )
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte cap"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            messages.append(pickle.loads(payload))
        return messages


class MessageStream:
    """A connected socket carrying framed messages, both directions."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = FrameReader()
        self._pending: deque = deque()

    def send(self, message) -> None:
        self._sock.sendall(encode_frame(message))

    def settimeout(self, timeout: float | None) -> None:
        """Bound blocking sends/recvs (None restores blocking mode)."""
        self._sock.settimeout(timeout)

    def recv(self):
        """Block for the next message.

        Raises :class:`ConnectionError` on orderly EOF between frames
        and :class:`ProtocolError` on EOF that tears a frame in half.
        """
        while not self._pending:
            data = self._sock.recv(1 << 16)
            if not data:
                if self._reader.mid_frame:
                    raise ProtocolError("connection closed mid-frame")
                raise ConnectionError("connection closed by peer")
            self._pending.extend(self._reader.feed(data))
        return self._pending.popleft()

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def parse_nodes(nodes) -> tuple[tuple[str, int], ...]:
    """Normalise node addresses to ``((host, port), ...)``.

    Accepts a comma-separated string (the ``$REPRO_CLUSTER_NODES``
    form), an iterable of ``"host:port"`` strings, or an iterable of
    ``(host, port)`` pairs — rejecting empty hosts and out-of-range
    ports uniformly.

    >>> parse_nodes("127.0.0.1:7101, 127.0.0.1:7102")
    (('127.0.0.1', 7101), ('127.0.0.1', 7102))
    """
    if isinstance(nodes, str):
        # Empty segments (trailing comma, doubled separator — easy
        # shell/templating artifacts) are skipped, not errors.
        nodes = [part for part in nodes.split(",") if part.strip()]
    out = []
    for node in nodes:
        if isinstance(node, str):
            text = node.strip()
            host, sep, port_text = text.rpartition(":")
            if not sep:
                raise ValueError(
                    f"node address {text!r} is not 'host:port'"
                )
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(
                    f"node address {text!r} has a non-integer port"
                ) from None
        else:
            host, port = node
        host = str(host).strip()
        if not host:
            raise ValueError(f"node address {node!r} has an empty host")
        if not 1 <= int(port) <= 65535:
            raise ValueError(
                f"node address {node!r} has out-of-range port {port}"
            )
        out.append((host, int(port)))
    if not out:
        raise ValueError("no cluster node addresses given")
    return tuple(out)


# --------------------------------------------------------------------------
# Worker node (the `repro worker serve` side)
# --------------------------------------------------------------------------


def _handle_connection(conn: socket.socket, stop: threading.Event) -> None:
    """Serve one coordinator connection until it hangs up."""
    stream = MessageStream(conn)
    try:
        while True:
            try:
                message = stream.recv()
            except (ConnectionError, ProtocolError, OSError):
                return
            kind, body = message
            if kind == "hello":
                if body.get("version") != PROTOCOL_VERSION:
                    stream.send(
                        (
                            "error",
                            {
                                "detail": (
                                    "protocol version mismatch: node "
                                    f"speaks {PROTOCOL_VERSION}, "
                                    f"coordinator sent "
                                    f"{body.get('version')!r}"
                                )
                            },
                        )
                    )
                    return
                stream.send(
                    (
                        "welcome",
                        {"version": PROTOCOL_VERSION, "pid": os.getpid()},
                    )
                )
            elif kind == "chunk":
                reply = _run_chunk_message(body)
                try:
                    stream.send(reply)
                except (ConnectionError, OSError):
                    raise
                except Exception as exc:
                    # The reply itself would not serialise — e.g. a
                    # trial returned an unpicklable value.  Framing
                    # pickles before any byte hits the socket, so the
                    # connection is still clean: report the real cause
                    # instead of dying and looking like a lost node.
                    import traceback

                    stream.send(
                        (
                            "failed",
                            {
                                "chunk": body["chunk"],
                                "key": ("<node>",),
                                "detail": (
                                    "chunk reply could not be "
                                    f"serialised: {type(exc).__name__}: "
                                    f"{exc}\n{traceback.format_exc()}"
                                ),
                            },
                        )
                    )
            elif kind == "shutdown":
                stream.send(("bye", {}))
                stop.set()
                return
            else:
                stream.send(
                    ("error", {"detail": f"unknown message kind {kind!r}"})
                )
                return
    finally:
        stream.close()


def _run_chunk_message(body: dict):
    """Execute one chunk message; build the reply frame."""
    chunk_id = body["chunk"]
    try:
        results = _execute_chunk(body["specs"], body.get("payloads") or None)
    except WorkloadMissError as miss:
        return (
            "miss",
            {"chunk": chunk_id, "workload_ids": miss.workload_ids},
        )
    except TrialExecutionError as err:
        return (
            "failed",
            {"chunk": chunk_id, "key": err.key, "detail": err.detail},
        )
    except Exception as exc:  # defensive: never kill the node silently
        import traceback

        return (
            "failed",
            {
                "chunk": chunk_id,
                "key": ("<node>",),
                "detail": (
                    f"{type(exc).__name__}: {exc}\n"
                    f"{traceback.format_exc()}"
                ),
            },
        )
    return ("done", {"chunk": chunk_id, "results": results})


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready_stream=None,
) -> None:
    """Run a worker node: execute trial chunks for cluster coordinators.

    Binds ``host:port`` (``port=0`` picks an ephemeral port), announces
    ``REPRO-WORKER LISTENING host:port`` on ``ready_stream`` (default
    stdout), then serves coordinator connections — each on its own
    thread — until a coordinator sends ``shutdown`` or the process is
    signalled.  The node's workload cache
    (:func:`repro.runtime.workload.install_workloads`) persists across
    connections, so a payload ships to the node once per *node
    lifetime* however many runners use it.
    """
    if not 0 <= port <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port}")
    stop = threading.Event()
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen()
        bound_host, bound_port = server.getsockname()[:2]
        out = ready_stream if ready_stream is not None else sys.stdout
        print(f"{READY_PREFIX}{bound_host}:{bound_port}", file=out, flush=True)
        server.settimeout(0.2)  # poll so the shutdown flag is noticed
        while not stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=_handle_connection,
                args=(conn, stop),
                daemon=True,
                name="repro-worker-conn",
            ).start()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


# --------------------------------------------------------------------------
# Local node processes (self-managed clusters, tests, benchmarks)
# --------------------------------------------------------------------------


class LocalNode:
    """A ``repro worker serve`` subprocess on this machine."""

    def __init__(
        self, proc: subprocess.Popen, host: str, port: int
    ) -> None:
        self.proc = proc
        self.host = host
        self.port = port
        #: Most recent output lines, for post-mortem diagnostics; the
        #: drain thread keeps the pipe from ever filling (a full 64KB
        #: pipe would block a chatty node mid-write and hang its run).
        self.output_tail: deque[str] = deque(maxlen=50)
        self._drainer = threading.Thread(
            target=self._drain, daemon=True, name=f"repro-node-drain-{port}"
        )
        self._drainer.start()

    def _drain(self) -> None:
        try:
            for line in self.proc.stdout:
                self.output_tail.append(line)
        except ValueError:
            pass  # stdout closed by terminate()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def terminate(self) -> None:
        """Stop the node process (idempotent)."""
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    def __repr__(self) -> str:
        state = "live" if self.proc.poll() is None else "dead"
        return f"LocalNode({self.address}, {state})"


def _terminate_nodes(nodes: Sequence[LocalNode]) -> None:
    for node in nodes:
        node.terminate()


def _worker_env(extra_paths: Iterable[str] = ()) -> dict:
    """Subprocess env whose PYTHONPATH can import repro + extras."""
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    paths = [str(src_root), *[str(p) for p in extra_paths]]
    existing = env.get("PYTHONPATH")
    if existing:
        paths.append(existing)
    env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


def _read_ready_line(proc: subprocess.Popen) -> tuple[str, int]:
    lines = []
    while True:
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise RuntimeError(
                "worker node exited before announcing its address "
                f"(exit code {proc.returncode}); output:\n"
                + "".join(lines)
            )
        if line.startswith(READY_PREFIX):
            host, _, port_text = (
                line[len(READY_PREFIX) :].strip().rpartition(":")
            )
            return host, int(port_text)
        lines.append(line)


def spawn_local_nodes(
    count: int, *, extra_paths: Iterable[str] = ()
) -> list[LocalNode]:
    """Spawn ``count`` localhost worker nodes on ephemeral ports.

    ``extra_paths`` adds directories to each node's import path
    (``repro worker serve --path``), for work units whose kernels live
    outside the installed package.  On any spawn failure every
    already-started node is reaped before the error propagates.
    """
    if count < 1:
        raise ValueError(f"node count must be >= 1, got {count}")
    command = [sys.executable, "-u", "-m", "repro", "worker", "serve",
               "--host", "127.0.0.1", "--port", "0"]
    for path in extra_paths:
        command += ["--path", str(path)]
    env = _worker_env(extra_paths)
    nodes: list[LocalNode] = []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                env=env,
                text=True,
            )
            host, port = _read_ready_line(proc)
            nodes.append(LocalNode(proc, host, port))
    except BaseException:
        _terminate_nodes(nodes)
        raise
    return nodes


# --------------------------------------------------------------------------
# Coordinator
# --------------------------------------------------------------------------


class ChunkBoard:
    """Reassembles chunk results into submission order, thread-safely.

    Chunks complete in whatever order nodes finish (and a requeued
    chunk may even complete twice — trials are pure, so duplicates are
    identical and placement is idempotent); the board keys everything
    by batch offset so the final list is always in submission order.
    """

    def __init__(self, total: int) -> None:
        self._results: list = [None] * total
        self._placed = [False] * total
        self._filled = 0
        self._lock = threading.Lock()

    def place(self, start: int, results: Sequence) -> None:
        if start < 0 or start + len(results) > len(self._results):
            raise ProtocolError(
                f"chunk at offset {start} with {len(results)} results "
                f"overflows a {len(self._results)}-trial batch"
            )
        with self._lock:
            for offset, result in enumerate(results):
                index = start + offset
                if not self._placed[index]:
                    self._placed[index] = True
                    self._filled += 1
                self._results[index] = result

    @property
    def complete(self) -> bool:
        return self._filled == len(self._results)

    def results(self) -> list:
        if not self.complete:
            missing = sum(1 for placed in self._placed if not placed)
            raise RuntimeError(f"batch incomplete: {missing} trials unplaced")
        return list(self._results)


class _Task:
    """One chunk in flight, with its retry and shipping history."""

    __slots__ = ("start", "chunk", "attempts", "shipped")

    def __init__(self, start: int, chunk: list) -> None:
        self.start = start
        self.chunk = chunk
        self.attempts = 0  # requeues consumed so far
        self.shipped: set[str] = set()  # ids this chunk reported missing

    def describe(self) -> str:
        first, last = self.chunk[0].key, self.chunk[-1].key
        span = f"{first!r}" if len(self.chunk) == 1 else f"{first!r}..{last!r}"
        return f"offset {self.start} (keys {span})"


class _RunState:
    """Completion/failure bookkeeping shared by the node threads."""

    def __init__(self, total_chunks: int, live_nodes: int, retries: int):
        self.total = total_chunks
        self.retries = retries
        self.completed = 0
        self.live = live_nodes
        self.failure: BaseException | None = None
        self._cond = threading.Condition()

    @property
    def finished(self) -> bool:
        return self.failure is not None or self.completed == self.total

    def chunk_done(self) -> None:
        with self._cond:
            self.completed += 1
            self._cond.notify_all()

    def fail(self, exc: BaseException) -> None:
        with self._cond:
            if self.failure is None:
                self.failure = exc
            self._cond.notify_all()

    def node_exit(self) -> None:
        with self._cond:
            self.live -= 1
            self._cond.notify_all()

    def wait(self) -> None:
        """Block until done, failed, or every node thread has exited."""
        with self._cond:
            while not self.finished and self.live > 0:
                self._cond.wait(timeout=0.5)


class _Node:
    """Coordinator-side handle on one worker node connection."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self.stream: MessageStream | None = None
        self.known_ids: set[str] = set()  # payloads this node has cached
        self.alive = False
        self.local: LocalNode | None = None  # backing self-managed proc
        # Healing backoff: a node that keeps refusing to come back is
        # not re-dialed (at full connect_timeout) before every batch.
        self.heal_backoff = 0.0
        self.heal_at = 0.0  # monotonic deadline for the next attempt

    def connect(self, timeout: float) -> None:
        sock = socket.create_connection(self.address, timeout=timeout)
        self.stream = MessageStream(sock)  # handshake under the timeout
        try:
            self.stream.send(("hello", {"version": PROTOCOL_VERSION}))
            kind, body = self.stream.recv()
        except socket.timeout:
            self.stream.close()
            raise ProtocolError(
                f"handshake with {self.address[0]}:{self.address[1]} "
                f"timed out after {timeout}s"
            ) from None
        if kind != "welcome" or body.get("version") != PROTOCOL_VERSION:
            detail = body.get("detail", f"unexpected {kind!r} reply")
            self.stream.close()
            raise ProtocolError(
                f"handshake with {self.address[0]}:{self.address[1]} "
                f"failed: {detail}"
            )
        self.stream.settimeout(None)
        self.alive = True

    def close(self) -> None:
        self.alive = False
        if self.stream is not None:
            self.stream.close()
            self.stream = None


class ClusterRunner(TrialRunner):
    """Run trials on TCP worker nodes (``repro worker serve``).

    Parameters
    ----------
    nodes:
        Worker addresses — a ``"host:port,host:port"`` string or an
        iterable of ``"host:port"`` / ``(host, port)``.  Default: the
        ``$REPRO_CLUSTER_NODES`` environment variable; with neither,
        the runner self-manages ``workers`` localhost node processes.
    workers:
        Node count for the self-managed case (argument, else
        ``$REPRO_WORKERS``, else 2); ignored when ``nodes`` names the
        cluster, whose size wins.
    chunksize:
        Specs per chunk (argument, else ``$REPRO_CHUNKSIZE``, else
        about four chunks per node).
    retries:
        Requeues a chunk survives when nodes disconnect mid-batch
        before the run fails naming it.
    connect_timeout:
        Seconds allowed for each node connection + handshake.

    Connections (and self-managed node processes) are lazy and
    persistent, mirroring :class:`ProcessPoolRunner`'s pool: the first
    parallel batch pays them, later batches reuse them, ``close()`` (or
    a ``with`` block) releases them.  A node lost mid-batch is healed
    before the *next* batch — reconnected at its address (external) or
    respawned (self-managed) — so a transient loss does not shrink the
    cluster for the runner's lifetime.  Errors tear connections down;
    external nodes themselves are never shut down by a coordinator.
    """

    def __init__(
        self,
        nodes=None,
        workers: int | None = None,
        chunksize: int | None = None,
        retries: int = 2,
        connect_timeout: float = 10.0,
    ) -> None:
        if nodes is None:
            raw = os.environ.get(NODES_ENV, "").strip()
            nodes = raw or None
        self._addresses = parse_nodes(nodes) if nodes is not None else None
        if self._addresses is not None:
            # The named cluster's size wins, but the workers knob is
            # still *validated* — REPRO_WORKERS=0 must raise here as it
            # does on every other construction path.
            resolve_workers(workers)
            self.workers = len(self._addresses)
            self._spawn_count = 0
        else:
            self._spawn_count = resolve_workers(
                workers, default=DEFAULT_LOCAL_NODES
            )
            self.workers = self._spawn_count
        self.chunksize = resolve_chunksize(chunksize)
        if not isinstance(retries, int) or retries < 0:
            raise ValueError(f"retries must be an integer >= 0, got {retries}")
        self.retries = retries
        self.connect_timeout = float(connect_timeout)
        self._nodes: list[_Node] | None = None
        # Self-managed node processes.  The list object is shared with
        # the GC finalizer and mutated in place, so whatever is spawned
        # at collection time is what gets reaped.
        self._local: list[LocalNode] = []
        self._finalizer = weakref.finalize(
            self, _terminate_nodes, self._local
        )

    # -- node lifecycle ---------------------------------------------------

    def _spawn_one(self) -> LocalNode:
        local = spawn_local_nodes(1)[0]
        self._local.append(local)
        return local

    def _drop_local(self, local: LocalNode) -> None:
        local.terminate()
        try:
            self._local.remove(local)
        except ValueError:
            pass

    def _connect_all(self) -> list[_Node]:
        nodes: list[_Node] = []
        try:
            if self._addresses is not None:
                for address in self._addresses:
                    node = _Node(address)
                    node.connect(self.connect_timeout)
                    nodes.append(node)
            else:
                for _ in range(self._spawn_count):
                    local = self._spawn_one()
                    node = _Node((local.host, local.port))
                    node.local = local
                    node.connect(self.connect_timeout)
                    nodes.append(node)
        except BaseException:
            for node in nodes:
                node.close()
            self._reap_local()
            raise
        self._nodes = nodes
        return nodes

    def _heal_nodes(self) -> None:
        """Best-effort recovery of nodes lost in an earlier batch.

        External nodes are reconnected at their address (an operator
        may have restarted them; the fresh connection assumes an empty
        payload cache, which at worst re-ships — content addressing
        makes that redundant, never wrong).  Self-managed processes are
        respawned.  A node that stays down just stays out of the pool;
        survivors carry the batch, and repeated failures back off
        exponentially so a permanently-dead address is not re-dialed
        (at full ``connect_timeout``) before every batch of a long
        sweep.
        """
        for index, node in enumerate(self._nodes):
            if node.alive:
                continue
            if time.monotonic() < node.heal_at:
                continue  # still backing off this address
            if node.local is not None:
                self._drop_local(node.local)
                try:
                    local = self._spawn_one()
                except (RuntimeError, OSError):
                    self._note_heal_failure(node)
                    continue
                fresh = _Node((local.host, local.port))
                fresh.local = local
            else:
                fresh = _Node(node.address)
            try:
                fresh.connect(self.connect_timeout)
            except (OSError, ProtocolError):
                if fresh.local is not None:
                    self._drop_local(fresh.local)
                self._note_heal_failure(node)
                continue
            self._nodes[index] = fresh

    @staticmethod
    def _note_heal_failure(node: _Node) -> None:
        node.heal_backoff = min(max(1.0, node.heal_backoff * 2), 60.0)
        node.heal_at = time.monotonic() + node.heal_backoff

    def _ensure_nodes(self) -> list[_Node]:
        """Connected live nodes: connect/spawn on first use, heal after
        losses, full restart only when nothing survived."""
        if self._nodes is None:
            return self._connect_all()
        if any(not node.alive for node in self._nodes):
            self._heal_nodes()
        live = [node for node in self._nodes if node.alive]
        if live:
            return live
        self._discard_nodes()
        return self._connect_all()

    def _reap_local(self) -> None:
        _terminate_nodes(self._local)
        del self._local[:]

    def _discard_nodes(self) -> None:
        """Drop connections (and self-managed processes) immediately."""
        if self._nodes is not None:
            for node in self._nodes:
                node.close()
            self._nodes = None
        self._reap_local()

    def close(self) -> None:
        """Release connections; stop self-managed node processes.

        External nodes just see the connection close and keep serving
        (they are shared infrastructure); self-managed nodes get a
        graceful ``shutdown`` and then the subprocess is reaped.
        """
        if self._nodes is not None and self._local:
            for node in self._nodes:
                if node.alive and node.stream is not None:
                    try:
                        node.stream.settimeout(2.0)
                        node.stream.send(("shutdown", {}))
                        node.stream.recv()  # ("bye", {})
                    except (ConnectionError, ProtocolError, OSError):
                        pass
        self._discard_nodes()

    # -- scheduling -------------------------------------------------------

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        specs = list(specs)
        if not specs:
            return []
        size = pick_chunksize(len(specs), self.workers, self.chunksize)
        chunks = split_chunks(specs, size)
        if self._addresses is None and (
            self.workers == 1 or len(chunks) == 1
        ):
            # No parallelism to extract and the nodes would be this
            # machine anyway: run inline, exactly as the process pool
            # does for a single chunk.  Explicitly-named nodes are
            # different — the user asked for the work to run *there*
            # (imports, memory, data locality may only exist on the
            # node) — so every non-empty batch ships, however small.
            return [spec.execute() for spec in specs]
        nodes = self._ensure_nodes()
        payload_table = batch_payloads(specs)
        board = ChunkBoard(len(specs))
        tasks: queue.Queue = queue.Queue()
        for start, chunk in chunks:
            tasks.put(_Task(start, chunk))
        state = _RunState(
            total_chunks=len(chunks),
            live_nodes=len(nodes),
            retries=self.retries,
        )
        threads = [
            threading.Thread(
                target=self._node_loop,
                args=(node, tasks, board, state, payload_table),
                daemon=True,
                name=f"repro-cluster-{node.address[0]}:{node.address[1]}",
            )
            for node in nodes
        ]
        for thread in threads:
            thread.start()
        try:
            state.wait()
        except BaseException:
            # Fail fast on Ctrl-C: drop connections (which unblocks any
            # thread mid-recv) instead of finishing the sweep first.
            self._discard_nodes()
            raise
        failure = state.failure
        if failure is None and not board.complete:
            lost = []
            while True:
                try:
                    lost.append(tasks.get_nowait())
                except queue.Empty:
                    break
            described = "; ".join(task.describe() for task in lost)
            failure = TrialExecutionError(
                ("<cluster>",),
                f"all cluster nodes lost with {len(lost)} chunk(s) "
                f"unfinished: {described or 'chunks still in flight'}",
            )
        if failure is not None:
            self._discard_nodes()  # unblocks threads stuck in recv
            for thread in threads:
                thread.join(timeout=5)
            raise failure
        for thread in threads:
            thread.join(timeout=5)
        return board.results()

    def _node_loop(self, node, tasks, board, state, payload_table) -> None:
        """One thread per node: pull chunks, ship, collect, requeue."""
        try:
            while True:
                if state.finished:
                    return
                try:
                    task = tasks.get(timeout=0.05)
                except queue.Empty:
                    continue
                if state.finished:
                    return
                try:
                    self._run_chunk_on_node(
                        node, task, board, state, payload_table
                    )
                except TrialExecutionError as exc:
                    # Parent-side resolution failure (ownership bug).
                    state.fail(exc)
                    return
                except (ConnectionError, ProtocolError, OSError) as exc:
                    node.close()
                    if state.finished:
                        return
                    if task.attempts >= state.retries:
                        state.fail(
                            TrialExecutionError(
                                ("<cluster>",),
                                f"chunk at {task.describe()} lost after "
                                f"{task.attempts + 1} node failure(s) "
                                f"(retry cap {state.retries}): {exc}",
                            )
                        )
                    else:
                        task.attempts += 1
                        tasks.put(task)
                    return  # this node is gone; the thread retires
                except Exception as exc:
                    # Not a transport fault: the chunk itself is the
                    # problem (e.g. a spec that does not pickle).  A
                    # requeue would poison every node in turn and a
                    # silent thread death would hang the run, so fail
                    # fast naming the chunk.  The connection may hold
                    # a half-written frame, so drop it too.
                    node.close()
                    state.fail(
                        TrialExecutionError(
                            ("<cluster>",),
                            f"chunk at {task.describe()} could not be "
                            f"shipped or collected: "
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    return
        finally:
            state.node_exit()

    @staticmethod
    def _ship_chunk(node: _Node, task: _Task, payloads: dict) -> None:
        """Send one chunk message; record what the node now caches."""
        node.stream.send(
            (
                "chunk",
                {
                    "chunk": task.start,
                    "specs": task.chunk,
                    "payloads": payloads,
                },
            )
        )
        node.known_ids.update(payloads)

    def _run_chunk_on_node(
        self, node, task, board, state, payload_table
    ) -> None:
        """Ship one chunk to one node and see it through to a result."""
        payloads = {}
        for spec in task.chunk:
            workload = spec.workload
            if (
                isinstance(workload, Workload)
                and workload.workload_id not in node.known_ids
            ):
                payloads[workload.workload_id] = workload
        for workload_id in sorted(task.shipped):
            # Ids an earlier node reported missing: pre-ship them to a
            # node that has not seen them rather than waiting for the
            # same miss again.
            if (
                workload_id not in node.known_ids
                and workload_id not in payloads
            ):
                payloads[workload_id] = resolve_miss_payload(
                    workload_id, payload_table, scheduler="<cluster>"
                )
        self._ship_chunk(node, task, payloads)
        while True:
            kind, body = node.stream.recv()
            if kind == "done":
                results = body["results"]
                if len(results) != len(task.chunk):
                    # A short reply would leave trials unplaced (and be
                    # misreported later); a long one could overwrite a
                    # neighbouring chunk.  Either way the node is not
                    # speaking the protocol: drop it, requeue the chunk.
                    raise ProtocolError(
                        f"node {node.address[0]}:{node.address[1]} "
                        f"returned {len(results)} results for a "
                        f"{len(task.chunk)}-spec chunk"
                    )
                board.place(task.start, results)
                state.chunk_done()
                return
            if kind == "miss":
                missing = tuple(body["workload_ids"])
                new_ids = set(missing) - node.known_ids
                if not new_ids:
                    state.fail(
                        TrialExecutionError(
                            ("<cluster>",),
                            "workload shipping did not converge for "
                            f"chunk at {task.describe()} (ids {missing} "
                            "were already shipped to "
                            f"{node.address[0]}:{node.address[1]}); "
                            "this is a runtime bug",
                        )
                    )
                    return
                task.shipped.update(missing)
                extra = {
                    workload_id: resolve_miss_payload(
                        workload_id, payload_table, scheduler="<cluster>"
                    )
                    for workload_id in sorted(new_ids)
                }
                self._ship_chunk(node, task, extra)
                continue
            if kind == "failed":
                state.fail(
                    TrialExecutionError(tuple(body["key"]), body["detail"])
                )
                return
            raise ProtocolError(
                f"unexpected reply kind {kind!r} from "
                f"{node.address[0]}:{node.address[1]}"
            )

    def __repr__(self) -> str:
        if self._addresses is not None:
            where = ",".join(f"{h}:{p}" for h, p in self._addresses)
        else:
            where = f"self-managed x{self._spawn_count}"
        state = "live" if self._nodes else "cold"
        return (
            f"ClusterRunner(nodes={where}, chunksize={self.chunksize}, "
            f"retries={self.retries}, {state})"
        )
