"""Pluggable runner backends: how a :class:`TrialRunner` is built.

``make_runner`` used to hard-code the serial/process split; this module
turns that decision into a **registry**.  A backend is a named factory

    factory(workers=None, chunksize=None) -> TrialRunner

registered via :func:`register_backend` and selected by name — an
explicit ``backend=`` argument, else the ``REPRO_BACKEND`` environment
variable, else ``"auto"``.  Four backends ship in-tree:

``auto``
    The historical behaviour: resolve the worker count (argument, else
    ``$REPRO_WORKERS``, else 1) and return a zero-overhead
    :class:`~repro.runtime.runner.SerialRunner` for one worker or a
    :class:`~repro.runtime.runner.ProcessPoolRunner` otherwise.
``serial``
    Always the in-process reference runner, whatever the worker count
    says (knobs are still validated, then ignored).
``process``
    Always a process pool, even for ``workers=1`` — useful for pinning
    the pool path in tests and CI.
``cluster``
    The TCP socket executor (:mod:`repro.runtime.cluster`): trials run
    on ``repro worker serve`` node processes, local or remote, each
    executing chunks on its own process pool (``--node-workers``).
    The coordinator-only knobs — chunks in flight per connection and
    the heartbeat deadline — resolve from ``$REPRO_PIPELINE_DEPTH``
    and ``$REPRO_HEARTBEAT`` at construction, exactly as the worker
    and chunk-size knobs resolve from theirs.

Backend contract
----------------

A factory must return a :class:`TrialRunner` honouring the runtime's
determinism contract — results in submission order, byte-identical to
``SerialRunner`` for the same specs — plus the workload-shipping and
error-propagation behaviour of the built-ins.  The contract is
*enforced*, not just documented:
``tests/runtime/test_backend_conformance.py`` parametrises one suite
over every registered backend (it reads this registry), and any new
backend must pass it before it lands.  Factories must also validate
their knobs through :func:`~repro.runtime.runner.resolve_workers` /
:func:`~repro.runtime.runner.resolve_chunksize` so argument and
environment values are rejected uniformly.
"""

from __future__ import annotations

import os
import re
from collections.abc import Callable

from repro.runtime.runner import (
    ProcessPoolRunner,
    SerialRunner,
    TrialRunner,
    resolve_chunksize,
    resolve_workers,
)

__all__ = [
    "BACKEND_ENV",
    "available_backends",
    "make_runner",
    "register_backend",
    "resolve_backend",
]

#: Environment variable consulted when no backend name is given.
BACKEND_ENV = "REPRO_BACKEND"

#: The backend used when neither argument nor environment names one.
DEFAULT_BACKEND = "auto"

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")

_REGISTRY: dict[str, Callable[..., TrialRunner]] = {}


def register_backend(
    name: str,
    factory: Callable[..., TrialRunner],
    *,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name`` (lowercase token).

    Registering makes the backend constructible through
    :func:`make_runner` and automatically subjects it to the
    conformance suite.  Re-registering an existing name raises unless
    ``replace=True``.
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"backend name must be a lowercase token, got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    if not callable(factory):
        raise TypeError(f"backend factory must be callable, got {factory!r}")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (tests; built-ins can return)."""
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend name: argument, else ``$REPRO_BACKEND``, else
    ``"auto"`` — validated against the registry.
    """
    if backend is None:
        raw = os.environ.get(BACKEND_ENV, "").strip()
        backend = raw or DEFAULT_BACKEND
    if not isinstance(backend, str):
        raise ValueError(
            f"backend must be a name (str), got {backend!r}; registered "
            f"backends: {', '.join(available_backends())}"
        )
    name = backend.strip().lower()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown backend {backend!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return name


def make_runner(
    workers: int | None = None,
    chunksize: int | None = None,
    backend: str | None = None,
) -> TrialRunner:
    """Build a runner from the registry.

    ``workers`` and ``chunksize`` resolve as ever (argument, else
    ``$REPRO_WORKERS`` / ``$REPRO_CHUNKSIZE``, both validated);
    ``backend`` picks the factory (argument, else ``$REPRO_BACKEND``,
    else ``auto``).  The historical two-argument call is unchanged:
    ``make_runner(8)`` still means "an 8-worker process pool".
    """
    factory = _REGISTRY[resolve_backend(backend)]
    return factory(workers=workers, chunksize=chunksize)


def _auto_factory(
    workers: int | None = None, chunksize: int | None = None
) -> TrialRunner:
    count = resolve_workers(workers)
    size = resolve_chunksize(chunksize)
    if count == 1:
        return SerialRunner()
    return ProcessPoolRunner(workers=count, chunksize=size)


def _serial_factory(
    workers: int | None = None, chunksize: int | None = None
) -> TrialRunner:
    # The knobs are irrelevant serially but must still be *valid*:
    # backend choice never launders a bad REPRO_WORKERS/CHUNKSIZE.
    resolve_workers(workers)
    resolve_chunksize(chunksize)
    return SerialRunner()


def _process_factory(
    workers: int | None = None, chunksize: int | None = None
) -> TrialRunner:
    return ProcessPoolRunner(workers=workers, chunksize=chunksize)


def _cluster_factory(
    workers: int | None = None, chunksize: int | None = None
) -> TrialRunner:
    # Imported lazily so the common serial/process paths never pay for
    # the socket machinery.
    from repro.runtime.cluster import ClusterRunner

    return ClusterRunner(workers=workers, chunksize=chunksize)


register_backend("auto", _auto_factory)
register_backend("serial", _serial_factory)
register_backend("process", _process_factory)
register_backend("cluster", _cluster_factory)
