"""The batch-kernel seam: execute chunks through vectorized kernels.

Every runner ultimately executes a *chunk* — consecutive specs, often
all referencing one workload.  This module is where that chunk meets a
vectorized kernel: :func:`execute_specs` is the one executable shape of
a chunk (``SerialRunner``, the process pool's workers and the cluster
nodes' pools all call it), and it routes each maximal run of
kernel-eligible same-workload specs through one compiled chunk runner,
falling back to ``spec.execute()`` for everything else.  Behaviour is
the invariant: a chunk runner must produce records bit-identical to the
per-trial loop, so which path executed is unobservable in the results
— only in the wall clock.

Capability is per *workload*: kernels register a compiler per workload
``fn`` (:func:`register_chunk_kernel`), the compiler inspects one
workload's frozen context and returns a chunk runner or ``None``, and
the verdict is cached by content id (:func:`supports_run_chunk` exposes
it).  The built-in compilers live in :mod:`repro.kernels`, imported
lazily on the first chunk so the serial import path stays light.

``$REPRO_KERNEL=off`` disables the seam entirely (every spec executes
per trial) — the escape hatch if a kernel is ever suspected of
diverging; results must not change, only speed.
``$REPRO_KERNEL_CACHE`` bounds the compiled-runner cache (default 64
workloads, ``0`` = unbounded) for sweeps that touch more distinct
workloads than the default keeps warm.

A chunk runner may expose a ``stages()`` method describing which
pipeline stages (draw / conditioning / routing) execute vectorized and
which drop to the per-trial algorithm; :func:`stage_split` aggregates
that per spec for ``repro info``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence

from repro.runtime.trial import TrialResult, TrialSpec
from repro.runtime.workload import (
    Workload,
    WorkloadMissError,
    WorkloadRef,
    resolve_workload,
)

__all__ = [
    "execute_specs",
    "kernel_enabled",
    "kernel_split",
    "register_chunk_kernel",
    "resolve_cache_cap",
    "run_chunk",
    "stage_split",
    "supports_run_chunk",
]

#: Environment switch for the whole seam; default on.
KERNEL_ENV = "REPRO_KERNEL"

#: Compile-cache bound; default :data:`_COMPILED_CAP`, ``0`` unbounded.
CACHE_ENV = "REPRO_KERNEL_CACHE"

#: Workload ``fn`` -> compiler(workload) -> chunk runner | None.
_COMPILERS: dict[Callable, Callable] = {}

#: Compiled chunk runners (or None verdicts), by workload content id.
_COMPILED: OrderedDict[str, Callable | None] = OrderedDict()
_COMPILED_CAP = 64

_kernels_loaded = False


def kernel_enabled() -> bool:
    """Whether the seam is on — ``$REPRO_KERNEL``, default on."""
    raw = os.environ.get(KERNEL_ENV, "").strip().lower()
    if raw in ("", "1", "on", "auto", "true", "yes"):
        return True
    if raw in ("0", "off", "false", "no"):
        return False
    raise ValueError(
        f"${KERNEL_ENV} must be on/off (or 1/0, true/false), got {raw!r}"
    )


def resolve_cache_cap() -> int:
    """Compiled-runner cache bound — ``$REPRO_KERNEL_CACHE``.

    Unset falls back to the module default (:data:`_COMPILED_CAP`,
    64 workloads).  ``0`` means unbounded; anything that is not a
    non-negative integer raises :class:`ValueError` — same
    garbage-rejection contract as :func:`kernel_enabled`.
    """
    raw = os.environ.get(CACHE_ENV, "").strip()
    if raw == "":
        return _COMPILED_CAP
    try:
        cap = int(raw)
    except ValueError:
        cap = -1
    if cap < 0:
        raise ValueError(
            f"${CACHE_ENV} must be a non-negative integer "
            f"(0 = unbounded), got {raw!r}"
        )
    return cap


def register_chunk_kernel(fn: Callable, compiler: Callable) -> None:
    """Register a chunk compiler for workloads whose ``fn`` is ``fn``.

    ``compiler(workload)`` inspects the frozen context and returns
    either a chunk runner — ``runner(keys, tails) -> values``, one
    value per tail, bit-identical to ``workload.call(*tail)`` — or
    ``None`` to decline (the per-trial loop then runs).  Registration
    is per process and idempotent; modules defining kernels register at
    import time, so workers that learn of a workload by unpickling it
    re-register through the same import.
    """
    _COMPILERS[fn] = compiler


def _ensure_kernels() -> None:
    # The built-in compilers register on package import; deferred to
    # first use so `import repro.runtime` stays numpy-free.
    global _kernels_loaded
    if not _kernels_loaded:
        _kernels_loaded = True
        import repro.kernels  # noqa: F401  (imported for registration)


def chunk_runner(workload: Workload) -> Callable | None:
    """Return the compiled chunk runner for ``workload``, or ``None``.

    Compilation happens once per content id (LRU-cached): repeated
    batches over the same workload — the shape of every sweep — reuse
    the compiled topology index across chunks and runs.
    """
    if not kernel_enabled():
        return None
    _ensure_kernels()
    workload_id = workload.workload_id
    if workload_id in _COMPILED:
        _COMPILED.move_to_end(workload_id)
        return _COMPILED[workload_id]
    compiler = _COMPILERS.get(workload.fn)
    runner = None if compiler is None else compiler(workload)
    _COMPILED[workload_id] = runner
    cap = resolve_cache_cap()
    while cap and len(_COMPILED) > cap:
        _COMPILED.popitem(last=False)
    return runner


def supports_run_chunk(workload: Workload) -> bool:
    """Whether chunks of this workload execute through a kernel."""
    return chunk_runner(workload) is not None


def _eligible_tail(spec: TrialSpec) -> bool:
    # The kernel tail contract: a slim `(trial, seed)` pair and nothing
    # else, the shape `complexity_specs`-style emitters produce.
    return (
        spec.workload is not None
        and not spec.kwargs
        and len(spec.args) == 2
        and isinstance(spec.args[0], int)
        and isinstance(spec.args[1], int)
    )


def _live_workload(spec: TrialSpec) -> Workload | None:
    workload = spec.workload
    if isinstance(workload, Workload):
        return workload
    if isinstance(workload, WorkloadRef):
        try:
            return resolve_workload(workload.workload_id)
        except WorkloadMissError:
            # Let spec.execute() raise the miss through the normal
            # first-touch machinery.
            return None
    return None


def run_chunk(
    workload: Workload, specs: Sequence[TrialSpec]
) -> list[TrialResult]:
    """Execute a same-workload chunk through its kernel, explicitly.

    Raises :class:`ValueError` if the workload has no kernel; use
    :func:`supports_run_chunk` (or just :func:`execute_specs`, which
    falls back silently) when support is not known.
    """
    runner = chunk_runner(workload)
    if runner is None:
        raise ValueError(
            f"workload {workload.workload_id} does not support run_chunk"
        )
    keys = [spec.key for spec in specs]
    tails = [tuple(spec.args) for spec in specs]
    values = runner(keys, tails)
    return [
        TrialResult(key=key, value=value)
        for key, value in zip(keys, values)
    ]


def execute_specs(specs: Iterable[TrialSpec]) -> list[TrialResult]:
    """Execute a chunk, batching kernel-eligible runs; order preserved.

    Maximal runs of consecutive specs that share a kernel-supporting
    workload and carry ``(trial, seed)`` tails execute through one
    chunk-runner call; every other spec executes itself.  The result
    list matches ``[spec.execute() for spec in specs]`` exactly.
    """
    specs = list(specs)
    results: list[TrialResult | None] = [None] * len(specs)
    enabled = kernel_enabled()
    i = 0
    while i < len(specs):
        spec = specs[i]
        runner = None
        workload = None
        if enabled and _eligible_tail(spec):
            workload = _live_workload(spec)
            if workload is not None:
                runner = chunk_runner(workload)
        if runner is None:
            results[i] = spec.execute()
            i += 1
            continue
        j = i
        workload_id = workload.workload_id
        while (
            j < len(specs)
            and specs[j].workload_id == workload_id
            and _eligible_tail(specs[j])
        ):
            j += 1
        group = specs[i:j]
        keys = [s.key for s in group]
        tails = [tuple(s.args) for s in group]
        values = runner(keys, tails)
        for offset, (key, value) in enumerate(zip(keys, values)):
            results[i + offset] = TrialResult(key=key, value=value)
        i = j
    return results  # type: ignore[return-value]


def kernel_split(specs: Iterable[TrialSpec]) -> tuple[int, int]:
    """Count ``(kernel, fallback)`` specs under the current environment.

    The same eligibility decision :func:`execute_specs` makes, without
    executing anything — what ``repro info`` reports per experiment.
    """
    kernel = fallback = 0
    enabled = kernel_enabled()
    for spec in specs:
        runner = None
        if enabled and _eligible_tail(spec):
            workload = _live_workload(spec)
            if workload is not None:
                runner = chunk_runner(workload)
        if runner is None:
            fallback += 1
        else:
            kernel += 1
    return kernel, fallback


#: The pipeline stages a chunk runner may break down via ``stages()``.
STAGES = ("draw", "conditioning", "routing")


def stage_split(specs: Iterable[TrialSpec]) -> dict[str, dict[str, int]]:
    """Count kernel vs per-trial specs for each pipeline stage.

    Refines :func:`kernel_split`: a kernel-executed spec may still run
    some stages per trial (e.g. an unregistered router drops only the
    routing stage to the exact per-trial algorithm).  Runners report
    their breakdown through ``stages()``; runners without one count as
    all-kernel, fallback specs as per-trial in every stage.
    """
    split = {stage: {"kernel": 0, "per-trial": 0} for stage in STAGES}
    enabled = kernel_enabled()
    for spec in specs:
        runner = None
        if enabled and _eligible_tail(spec):
            workload = _live_workload(spec)
            if workload is not None:
                runner = chunk_runner(workload)
        if runner is None:
            for counts in split.values():
                counts["per-trial"] += 1
            continue
        breakdown = getattr(runner, "stages", None)
        per_stage = breakdown() if callable(breakdown) else {}
        for stage, counts in split.items():
            mode = per_stage.get(stage, "kernel")
            counts["kernel" if mode == "kernel" else "per-trial"] += 1
    return split
