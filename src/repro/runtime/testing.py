"""Backend-conformance kit: kernels and node helpers for runner tests.

The conformance suite (``tests/runtime/test_backend_conformance.py``)
runs one set of behavioural tests against **every** registered backend
— in-process, forked pool, spawned pool, TCP cluster node.  Its work
units must therefore be importable *by reference* in any process,
including a ``repro worker serve`` node that never saw the test file:
that is why the kernels live here, inside the installed package,
rather than in the test modules themselves.  A future backend's tests
should build their batches from this kit too.

Nothing here is imported by the runtime proper.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager

from repro.runtime.trial import TrialSpec
from repro.runtime.workload import Workload, installed_workload_ids
from repro.util.rng import uniform_for

__all__ = [
    "boom",
    "cached_workload_ids",
    "exit_hard",
    "exit_once_then",
    "kill_node",
    "kill_node_once",
    "local_nodes",
    "make_workload",
    "process_id",
    "seeded_specs",
    "seeded_uniform",
    "shared_uniform",
    "sleep_return",
    "square",
    "square_specs",
    "unpicklable_value",
    "wedge_node_once",
    "workload_specs",
]


# -- kernels (module-level so they pickle by reference) --------------------


def square(x):
    return x * x


def seeded_uniform(seed, label):
    """A value that only the seed contract can make deterministic."""
    return uniform_for(seed, label)


def shared_uniform(payload, label, trial, seed):
    """Workload kernel: shared ``(payload, label)`` + per-trial tail."""
    return (len(payload), label, trial, uniform_for(seed, (label, trial)))


def boom(x):
    raise ValueError(f"boom {x}")


def exit_hard(code=3):  # pragma: no cover - kills its own process
    """Die without raising: simulates a crashed/killed worker node."""
    os._exit(code)


def exit_once_then(value, latch_path):
    """Die the first time any process runs this; return ``value`` after.

    The latch file makes the fault one-shot across a whole cluster:
    the first node to execute the spec creates the latch and dies
    mid-batch, and the retried chunk — on whatever node — finds the
    latch and completes normally.  Trials stay pure *given the latch
    state*, which is exactly what the requeue test needs.
    """
    try:
        with open(latch_path, "x"):
            pass
    except FileExistsError:
        return value
    os._exit(3)  # pragma: no cover - kills its own process


def sleep_return(seconds, value):
    """Block for ``seconds`` then return ``value``.

    Models a blocking (I/O-bound) trial: a flat node serialises a
    batch of these, a node-side pool overlaps them — which is what the
    node-pool concurrency tests and benchmark measure, independent of
    how many cores the host has.
    """
    time.sleep(seconds)
    return value


def _owning_node_pid():
    """Pid of the `repro worker serve` process owning this pool worker."""
    from repro.runtime.cluster import node_process_pid

    pid = node_process_pid()
    return pid if pid is not None and pid > 1 else None


def kill_node():  # pragma: no cover - kills its own node
    """Kill the node process that owns this pool worker, then die.

    Simulates a crashed/OOM-killed *node* (as distinct from a crashed
    pool worker, which the node survives): the coordinator sees a dead
    socket mid-batch and must requeue the node's chunks.  Outside a
    node pool it just kills the executing process.
    """
    pid = _owning_node_pid()
    if pid is not None:
        os.kill(pid, signal.SIGKILL)
    os._exit(3)


def kill_node_once(value, latch_path):
    """Kill the owning node the first time any process runs this;
    return ``value`` after.  The latch file makes the fault one-shot
    across a whole cluster, exactly like :func:`exit_once_then`."""
    try:
        with open(latch_path, "x"):
            pass
    except FileExistsError:
        return value
    kill_node()  # pragma: no cover - kills its own node


def wedge_node_once(value, latch_path):
    """Wedge the owning node (socket left open) once; return ``value``
    after.

    SIGSTOPs the node process — the hung-node shape a dead-socket
    trigger can never catch: the TCP connection stays healthy while
    the node goes silent.  Only heartbeat supervision detects it.  The
    latch makes the wedge one-shot cluster-wide, so the retried chunk
    completes on a survivor and the run's output must still be
    byte-identical to ``SerialRunner``'s.
    """
    try:
        with open(latch_path, "x"):
            pass
    except FileExistsError:
        return value
    pid = _owning_node_pid()  # pragma: no cover - wedges its own node
    if pid is not None and hasattr(signal, "SIGSTOP"):
        os.kill(pid, signal.SIGSTOP)
    os._exit(0)  # pragma: no cover - the stopped node never reaps this


def cached_workload_ids(*_args):
    """Report which workload payloads this process has been shipped."""
    return sorted(installed_workload_ids())


def process_id(*_args):
    """Report the executing process — proves where a trial really ran."""
    return os.getpid()


def unpicklable_value(*_args):
    """Return a value no runner can ship back with plain pickle."""
    return lambda: None


# -- batch builders --------------------------------------------------------


def square_specs(count, tag="sq"):
    return [
        TrialSpec(key=(tag, i), fn=square, args=(i,)) for i in range(count)
    ]


def seeded_specs(count, label="x"):
    return [
        TrialSpec(key=("u", label, i), fn=seeded_uniform, args=(i, label))
        for i in range(count)
    ]


def make_workload(label, size=2048):
    """A content-addressed payload big enough that shipping matters."""
    return Workload(fn=shared_uniform, args=(list(range(size)), label))


def workload_specs(workload, count, tag="w"):
    return [
        TrialSpec(key=(tag, t), args=(t, t * 31), workload=workload)
        for t in range(count)
    ]


# -- cluster node helpers --------------------------------------------------


@contextmanager
def local_nodes(count=2, extra_paths=(), node_workers=None, cache_cap=None):
    """Spawn localhost ``repro worker serve`` nodes; yield addresses.

    Yields ``["host:port", ...]`` ready for ``ClusterRunner(nodes=...)``
    or ``$REPRO_CLUSTER_NODES``; the node processes are terminated on
    exit however the block ends.  ``node_workers``/``cache_cap`` pin
    each node's execution-pool size and workload-cache cap (None: the
    node's own env/default resolution decides).
    """
    from repro.runtime.cluster import spawn_local_nodes

    nodes = spawn_local_nodes(
        count,
        extra_paths=extra_paths,
        node_workers=node_workers,
        cache_cap=cache_cap,
    )
    try:
        yield [node.address for node in nodes]
    finally:
        for node in nodes:
            node.terminate()
