"""Trial-execution runtime: run Monte-Carlo sweeps serially or in parallel.

Every experiment estimates its curves by averaging many independent
trials.  This package factors the *execution* of those trials out of the
experiment definitions: a definition emits a list of
:class:`~repro.runtime.trial.TrialSpec` work units and hands them to a
:class:`~repro.runtime.runner.TrialRunner`, which returns one
:class:`~repro.runtime.trial.TrialResult` per spec **in submission
order**, however the work was actually scheduled.

Seed-derivation contract
------------------------

Parallel execution changes *when* and *where* a trial runs, never *what*
it computes.  That guarantee rests on three rules:

1. Every random decision inside a trial is a pure function of the seed
   carried by its :class:`TrialSpec` (derived up front from the master
   seed via :func:`repro.util.rng.derive_seed` and the trial's labels),
   never of global RNG state, scheduling order, or process identity.
2. A spec's ``fn`` must be an importable module-level callable and its
   arguments plain picklable values, so the same work unit can execute
   in any process.
3. Runners return results in submission order, so downstream assembly
   (``ResultTable`` rows, fitted notes) is independent of completion
   order.

Together these make ``SerialRunner`` and ``ProcessPoolRunner`` produce
**identical** ``ResultTable``\\ s for the same master seed — the
serial-vs-parallel determinism tests in ``tests/runtime/`` enforce it.

Choosing a runner
-----------------

:func:`make_runner` resolves the worker count from an explicit argument,
else the ``REPRO_WORKERS`` environment variable, else 1, and returns a
``SerialRunner`` for one worker or a ``ProcessPoolRunner`` otherwise.
The CLI exposes the same knob as ``repro run ... --workers N``.
"""

from repro.runtime.runner import (
    ProcessPoolRunner,
    SerialRunner,
    TrialRunner,
    make_runner,
    resolve_workers,
)
from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec

__all__ = [
    "ProcessPoolRunner",
    "SerialRunner",
    "TrialExecutionError",
    "TrialResult",
    "TrialRunner",
    "TrialSpec",
    "make_runner",
    "resolve_workers",
]
