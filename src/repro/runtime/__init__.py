"""Trial-execution runtime: run Monte-Carlo sweeps serially or in parallel.

Every experiment estimates its curves by averaging many independent
trials.  This package factors the *execution* of those trials out of the
experiment definitions: a definition emits
:class:`~repro.runtime.trial.TrialSpec` work units and hands them to a
:class:`~repro.runtime.runner.TrialRunner`, which returns one
:class:`~repro.runtime.trial.TrialResult` per spec **in submission
order**, however the work was actually scheduled.

Per-trial granularity
---------------------

The schedulable unit is a **single Monte-Carlo trial** — one
percolation draw plus (at most) one routing attempt
(:func:`repro.core.complexity.run_trial`), or one union–find /
structural sweep.  Every definition in the registry emits its trials
through :meth:`TrialRunner.run_grouped`: all per-trial specs of all
sweep points go into one flat batch, the pool chunks that batch across
workers, and the values come back re-grouped per sweep point, in trial
order, ready for :func:`repro.core.complexity.assemble_measurement`.
Two consequences:

* a *single* large sweep point — the large-``n`` regime the paper's
  Theorem 1/Lemma 5 bounds target, where one point dominates the wall
  clock — fans out across the whole pool instead of serialising;
* ``--workers N`` covers the entire suite; there is no legacy
  ``run(scale, seed)`` path left.

The workload protocol (shared payloads)
---------------------------------------

Per-trial parameters are a few scalars; the measurement *context* —
graph, router, percolation factory, conditioning config — is shared by
every trial of a sweep point and can be orders of magnitude larger
(explicit topologies store their structure).  The runtime therefore
splits the two:

* a :class:`~repro.runtime.workload.Workload` freezes the shared
  context once per group, content-addressed by a stable id (a digest of
  its pickled contents);
* each :class:`TrialSpec` references the workload and carries only its
  per-trial tail — ``key``, ``(trial, trial_seed)`` — so its wire form
  costs bytes proportional to the tail, never to the graph.

**Shipping:** payloads travel to each worker process at most once.  A
pool created while a batch is in hand ships the batch's payload table
through the worker initializer; workloads appearing in later batches
reach already-running workers by first-touch (the worker reports a
:class:`~repro.runtime.workload.WorkloadMissError`, the pool resubmits
the chunk with the payload attached, the worker caches it for life).
Content addressing stands in for invalidation: payloads are immutable,
so a different payload is a different id, and a cached entry can go
unused but never stale.

**Ownership:** the emitter (e.g.
:func:`repro.core.complexity.complexity_specs`) owns its workloads and
must keep them alive — via the specs referencing them — until their
trials finish; runners resolve ids against live objects and never
deep-copy payloads.

**Pool reuse:** :class:`ProcessPoolRunner` keeps its pool alive across
``run``/``run_grouped`` calls, so consecutive batches pay neither
process start-up nor payload re-pickling.  ``close()`` (or a ``with``
block) reaps the workers.

This split is also the seam for distributed runners — and the cluster
backend walks through it: :class:`~repro.runtime.cluster.ClusterRunner`
ships each ``Workload`` to a TCP worker node once (keyed by content
id, tracked per node; the node keeps payloads in a capped LRU cache
and evicted ids are re-shipped transparently), pipelines slim spec
chunks to each node (``$REPRO_PIPELINE_DEPTH`` in flight per
connection), and streams results back.  Nodes execute chunks on their
own process pools (``repro worker serve --node-workers``), and
heartbeat supervision (``$REPRO_HEARTBEAT``) requeues the chunks of a
node that disconnects *or* silently wedges to the survivors.

The batch-kernel seam (run_chunk)
---------------------------------

The schedulable unit is a trial; the *executable* unit on any worker is
a chunk of consecutive specs.  :mod:`repro.runtime.chunkexec` lets a
whole chunk execute through **one vectorized kernel call** when its
workload supports it: kernels register a compiler per workload ``fn``
(:func:`register_chunk_kernel`), the compiler turns one workload's
frozen context into a chunk runner (or declines), and
:func:`~repro.runtime.chunkexec.execute_specs` — called by
``SerialRunner``, the process pool's workers and the cluster nodes'
pools alike — batches each maximal run of kernel-eligible
same-workload specs through it, falling back to ``spec.execute()`` for
everything else.  :func:`supports_run_chunk` exposes the per-workload
capability verdict; ``repro info <EXP>`` reports it per experiment.

The contract is **bit-identical records**: a kernel changes the wall
clock, never a result — parallel parity, the golden trial-split
reference and the kernel parity suite (``tests/kernels/``) all enforce
it.  The shipped kernels live in :mod:`repro.kernels` (batched
percolation masks + chunk-wide BFS over implicit topologies) and load
lazily on the first chunk.  ``$REPRO_KERNEL=off`` switches the seam
off — same results, per-trial speed.

Runner backends
---------------

Construction is pluggable (:mod:`repro.runtime.backends`):
:func:`make_runner` looks the backend up in a registry — ``auto`` (the
serial/process split, the default), ``serial``, ``process`` and
``cluster`` ship in-tree — selected by argument, else the
``REPRO_BACKEND`` environment variable.  :func:`register_backend` adds
a backend; the contract every factory must honour (determinism versus
``SerialRunner``, ``run_grouped`` flattening, workload first-touch
shipping, crash/traceback propagation, chunking edge cases) is
enforced by the conformance suite in
``tests/runtime/test_backend_conformance.py``, which parametrises over
the registry — a new backend is gated on passing it.

The cluster backend's hand-shake, wire framing, fault tolerance and
ownership story (unchanged: emitters keep workloads alive while their
specs run) are documented in :mod:`repro.runtime.cluster`; worker
nodes start with ``repro worker serve`` and are named by
``$REPRO_CLUSTER_NODES``, or spawned on localhost automatically when
that is unset.

Seed-derivation contract
------------------------

Parallel execution changes *when* and *where* a trial runs, never *what*
it computes.  That guarantee rests on three rules:

1. Every random decision inside a trial is a pure function of the seed
   carried by its :class:`TrialSpec` — derived up front as
   ``derive_seed(master, experiment, *sweep_point_labels)`` then
   ``derive_seed(point_seed, "complexity", trial)`` (see
   :func:`repro.util.rng.derive_seed`) — never of global RNG state,
   scheduling order, or process identity.
2. A spec's kernel must be an importable module-level callable and its
   arguments (shared workload and per-trial tail alike) plain picklable
   values, so the same work unit can execute in any process.
3. Runners return results in submission order (``run_grouped``
   re-slices by group, preserving each group's trial order), so
   downstream assembly (``ComplexityMeasurement`` record streams,
   ``ResultTable`` rows, fitted notes) is independent of completion
   order.

Together these make ``SerialRunner`` and ``ProcessPoolRunner`` produce
**identical** ``ResultTable``\\ s for the same master seed — enforced
for every registered experiment by ``tests/experiments/test_parity.py``
(including under a ``spawn`` multiprocessing context, where nothing is
inherited and every payload must ship explicitly) and at the kernel
level by ``tests/core/test_trial_split.py``.

Choosing a runner
-----------------

:func:`make_runner` resolves the worker count from an explicit argument,
else the ``REPRO_WORKERS`` environment variable, else 1; the chunk size
resolves the same way (argument, else ``REPRO_CHUNKSIZE``, else the
automatic four-chunks-per-worker split), and the backend likewise
(argument, else ``REPRO_BACKEND``, else ``auto``).  All three knobs are
validated uniformly on every construction path — a zero or garbage
environment value raises instead of being silently accepted.  The CLI
exposes them as ``repro run ... --workers N --chunksize C
--backend B``.
"""

from repro.runtime.backends import (
    available_backends,
    make_runner,
    register_backend,
    resolve_backend,
)
from repro.runtime.chunkexec import (
    execute_specs,
    register_chunk_kernel,
    run_chunk,
    supports_run_chunk,
)
from repro.runtime.runner import (
    ProcessPoolRunner,
    SerialRunner,
    TrialRunner,
    resolve_chunksize,
    resolve_workers,
)
from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec
from repro.runtime.workload import Workload, WorkloadMissError, WorkloadRef

__all__ = [
    "ClusterRunner",
    "ProcessPoolRunner",
    "SerialRunner",
    "TrialExecutionError",
    "TrialResult",
    "TrialRunner",
    "TrialSpec",
    "Workload",
    "WorkloadMissError",
    "WorkloadRef",
    "available_backends",
    "execute_specs",
    "make_runner",
    "register_backend",
    "register_chunk_kernel",
    "resolve_backend",
    "resolve_chunksize",
    "resolve_workers",
    "run_chunk",
    "supports_run_chunk",
]


def __getattr__(name):
    # ClusterRunner is exported lazily (PEP 562) so the common
    # serial/process paths never pay the socket/subprocess machinery's
    # import cost; `from repro.runtime import ClusterRunner` still
    # works, it just loads repro.runtime.cluster on first use.
    if name == "ClusterRunner":
        from repro.runtime.cluster import ClusterRunner

        return ClusterRunner
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
