"""Trial-execution runtime: run Monte-Carlo sweeps serially or in parallel.

Every experiment estimates its curves by averaging many independent
trials.  This package factors the *execution* of those trials out of the
experiment definitions: a definition emits
:class:`~repro.runtime.trial.TrialSpec` work units and hands them to a
:class:`~repro.runtime.runner.TrialRunner`, which returns one
:class:`~repro.runtime.trial.TrialResult` per spec **in submission
order**, however the work was actually scheduled.

Per-trial granularity
---------------------

The schedulable unit is a **single Monte-Carlo trial** — one
percolation draw plus (at most) one routing attempt
(:func:`repro.core.complexity.run_trial`), or one union–find /
structural sweep.  Every definition in the registry emits its trials
through :meth:`TrialRunner.run_grouped`: all per-trial specs of all
sweep points go into one flat batch, the pool chunks that batch across
workers, and the values come back re-grouped per sweep point, in trial
order, ready for :func:`repro.core.complexity.assemble_measurement`.
Two consequences:

* a *single* large sweep point — the large-``n`` regime the paper's
  Theorem 1/Lemma 5 bounds target, where one point dominates the wall
  clock — fans out across the whole pool instead of serialising;
* ``--workers N`` covers the entire suite; there is no legacy
  ``run(scale, seed)`` path left.

Seed-derivation contract
------------------------

Parallel execution changes *when* and *where* a trial runs, never *what*
it computes.  That guarantee rests on three rules:

1. Every random decision inside a trial is a pure function of the seed
   carried by its :class:`TrialSpec` — derived up front as
   ``derive_seed(master, experiment, *sweep_point_labels)`` then
   ``derive_seed(point_seed, "complexity", trial)`` (see
   :func:`repro.util.rng.derive_seed`) — never of global RNG state,
   scheduling order, or process identity.
2. A spec's ``fn`` must be an importable module-level callable and its
   arguments plain picklable values, so the same work unit can execute
   in any process.
3. Runners return results in submission order (``run_grouped``
   re-slices by group, preserving each group's trial order), so
   downstream assembly (``ComplexityMeasurement`` record streams,
   ``ResultTable`` rows, fitted notes) is independent of completion
   order.

Together these make ``SerialRunner`` and ``ProcessPoolRunner`` produce
**identical** ``ResultTable``\\ s for the same master seed — enforced
for every registered experiment by ``tests/experiments/test_parity.py``
and at the kernel level by ``tests/core/test_trial_split.py``.

Choosing a runner
-----------------

:func:`make_runner` resolves the worker count from an explicit argument,
else the ``REPRO_WORKERS`` environment variable, else 1, and returns a
``SerialRunner`` for one worker or a ``ProcessPoolRunner`` otherwise.
The CLI exposes the same knob as ``repro run ... --workers N``.
"""

from repro.runtime.runner import (
    ProcessPoolRunner,
    SerialRunner,
    TrialRunner,
    make_runner,
    resolve_workers,
)
from repro.runtime.trial import TrialExecutionError, TrialResult, TrialSpec

__all__ = [
    "ProcessPoolRunner",
    "SerialRunner",
    "TrialExecutionError",
    "TrialResult",
    "TrialRunner",
    "TrialSpec",
    "make_runner",
    "resolve_workers",
]
