"""Packed record arrays for the cluster wire.

A cluster node's ``done`` reply used to pickle a list of
:class:`~repro.runtime.trial.TrialResult` objects — for complexity
workloads that is thousands of tiny :class:`~repro.core.complexity.
TrialRecord` / :class:`~repro.core.result.RoutingResult` dataclasses,
each pickled field by field.  :func:`pack_records` flattens such a
chunk into a handful of flat arrays (one column per record field,
paths as vertex codes against the workload graph's vertex order) and
:func:`unpack_records` rebuilds the exact ``TrialResult`` list on the
coordinator.  The contract is the seam invariant everywhere else in
the runtime: reassembled records are **identical** to what the legacy
pickle wire would have carried — packing is unobservable in results.

Both ends derive the codec from the *workload* (``specs[i]`` names it;
content-addressed ids guarantee the two sides hold the same graph, so
``graph.vertices()`` order is a shared vertex numbering that never
travels on the wire).  Chunks that do not fit the packed shape — a
workload that is neither ``run_trial`` nor ``run_traffic_trial``, a
record carrying ``extra`` data, a workload either side cannot resolve
— make :func:`pack_records` return ``None`` and the node falls back to
the pickle wire for that chunk; ``$REPRO_RECORD_WIRE=pickle`` forces
the fallback globally.

``records/2`` extends ``records/1`` with demand-matrix trials: a
traffic record packs its per-commodity query counts and delivery mask
into ragged flat columns (``t_comm`` holds each record's commodity
count, ``-1`` marking pair records) plus per-record congestion columns
— exactly the fields of :class:`~repro.core.traffic.TrafficResult`, so
the reassembled records stay identical to the pickle wire's.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence

from repro.runtime.trial import TrialResult, TrialSpec
from repro.runtime.workload import (
    Workload,
    WorkloadMissError,
    WorkloadRef,
    resolve_workload,
)

__all__ = ["PACKED_FORMAT", "pack_records", "unpack_records"]

#: Format tag carried in every packed body; bump on layout changes.
PACKED_FORMAT = "records/2"

#: ``FailureReason`` <-> wire code (0 is "no failure").
_FAILURE_CODES = {None: 0, "budget": 1, "exhausted": 2, "gave_up": 3}

#: workload_id -> (verts list, vertex -> code dict); small LRU.
_CODECS: OrderedDict[str, tuple[list, dict]] = OrderedDict()
_CODEC_CAP = 64


def _codec(workload: Workload) -> tuple[list, dict]:
    workload_id = workload.workload_id
    if workload_id in _CODECS:
        _CODECS.move_to_end(workload_id)
        return _CODECS[workload_id]
    verts = list(workload.args[0].vertices())
    codes = {v: c for c, v in enumerate(verts)}
    _CODECS[workload_id] = (verts, codes)
    while len(_CODECS) > _CODEC_CAP:
        _CODECS.popitem(last=False)
    return verts, codes


def _live_workload(spec: TrialSpec, resolve: Callable | None) -> Workload | None:
    workload = spec.workload
    if isinstance(workload, Workload):
        return workload
    if isinstance(workload, WorkloadRef):
        if resolve is not None:
            return resolve(workload.workload_id)
        try:
            return resolve_workload(workload.workload_id)
        except WorkloadMissError:
            return None
    return None


def _is_run_trial(workload: Workload) -> bool:
    fn = workload.fn
    return (
        getattr(fn, "__module__", None) == "repro.core.complexity"
        and getattr(fn, "__qualname__", None) == "run_trial"
    )


def _is_run_traffic(workload: Workload) -> bool:
    fn = workload.fn
    return (
        getattr(fn, "__module__", None) == "repro.core.traffic"
        and getattr(fn, "__qualname__", None) == "run_traffic_trial"
    )


def pack_records(
    specs: Sequence[TrialSpec],
    results: Sequence[TrialResult],
    resolve: Callable | None = None,
) -> dict | None:
    """Pack a chunk's results into flat arrays, or decline.

    Returns the packed body (plain dict of numpy arrays) when every
    result is a ``run_trial`` record whose routing outcome the codec
    can represent, else ``None`` — the caller then sends the legacy
    pickled list.  Declining is always safe; packing never raises.

    ``resolve`` maps a workload id to a live :class:`Workload` (a node
    passes its payload cache); without it, specs must carry live
    workloads or resolve through the process registry.
    """
    try:
        import numpy as np

        from repro.core.complexity import TrialRecord
        from repro.core.result import RoutingResult
        from repro.core.traffic import TrafficResult

        if len(specs) != len(results):
            return None
        n = len(results)
        trial = np.zeros(n, dtype=np.int64)
        seed = np.zeros(n, dtype=np.uint64)
        connected = np.zeros(n, dtype=bool)
        attempted = np.zeros(n, dtype=bool)
        success = np.zeros(n, dtype=bool)
        queries = np.zeros(n, dtype=np.int64)
        failure = np.zeros(n, dtype=np.int8)
        path_len = np.full(n, -1, dtype=np.int64)
        flat_path: list[int] = []
        t_comm = np.full(n, -1, dtype=np.int64)
        t_max_load = np.zeros(n, dtype=np.int64)
        t_mean_load = np.zeros(n, dtype=np.float64)
        t_queries: list[int] = []
        t_delivered: list[bool] = []
        for i, (spec, result) in enumerate(zip(specs, results)):
            record = result.value
            if type(record) is not TrialRecord or result.key != spec.key:
                return None
            workload = _live_workload(spec, resolve)
            if workload is None:
                return None
            trial[i] = record.trial
            seed[i] = record.seed
            connected[i] = record.connected
            if _is_run_traffic(workload):
                traffic = record.traffic
                if type(traffic) is not TrafficResult or record.result is not None:
                    return None
                t_comm[i] = traffic.commodities
                t_max_load[i] = traffic.max_link_load
                t_mean_load[i] = traffic.mean_link_load
                t_queries.extend(traffic.queries)
                t_delivered.extend(traffic.delivered_mask)
                continue
            if not _is_run_trial(workload) or record.traffic is not None:
                return None
            routing = record.result
            if routing is None:
                continue
            source, target = workload.args[3], workload.args[4]
            if (
                type(routing) is not RoutingResult
                or routing.extra
                or routing.source != source
                or routing.target != target
                or routing.router != workload.args[2].name
            ):
                return None
            attempted[i] = True
            success[i] = routing.success
            queries[i] = routing.queries
            reason = routing.failure.value if routing.failure else None
            if reason not in _FAILURE_CODES:
                return None
            failure[i] = _FAILURE_CODES[reason]
            if routing.path is not None:
                _, codes = _codec(workload)
                path_len[i] = len(routing.path)
                flat_path.extend(codes[v] for v in routing.path)
        return {
            "format": PACKED_FORMAT,
            "trial": trial,
            "seed": seed,
            "connected": connected,
            "attempted": attempted,
            "success": success,
            "queries": queries,
            "failure": failure,
            "path_len": path_len,
            "path": np.asarray(flat_path, dtype=np.int64),
            "t_comm": t_comm,
            "t_max_load": t_max_load,
            "t_mean_load": t_mean_load,
            "t_queries": np.asarray(t_queries, dtype=np.int64),
            "t_delivered": np.asarray(t_delivered, dtype=bool),
        }
    except Exception:
        return None


def unpack_records(
    packed: dict,
    specs: Sequence[TrialSpec],
    resolve: Callable | None = None,
) -> list[TrialResult]:
    """Rebuild the ``TrialResult`` list a packed body describes.

    Inverse of :func:`pack_records` against the coordinator's own
    specs (which carry the live workloads and the authoritative keys).
    Raises :class:`ValueError` on any malformed body — the cluster
    coordinator converts that into a protocol error, dropping the node
    and requeueing the chunk.
    """
    from repro.core.complexity import TrialRecord
    from repro.core.result import FailureReason, RoutingResult
    from repro.core.traffic import TrafficResult

    if packed.get("format") != PACKED_FORMAT:
        raise ValueError(f"unknown packed format {packed.get('format')!r}")
    try:
        columns = (
            packed["trial"],
            packed["seed"],
            packed["connected"],
            packed["attempted"],
            packed["success"],
            packed["queries"],
            packed["failure"],
            packed["path_len"],
            packed["t_comm"],
            packed["t_max_load"],
            packed["t_mean_load"],
        )
        flat_path = packed["path"]
        t_queries = packed["t_queries"]
        t_delivered = packed["t_delivered"]
    except KeyError as missing:
        raise ValueError(f"packed body is missing column {missing}")
    n = len(specs)
    if any(len(column) != n for column in columns):
        raise ValueError(
            f"packed columns do not cover the {n}-spec chunk"
        )
    if len(t_queries) != len(t_delivered):
        raise ValueError("traffic columns disagree on commodity count")
    reasons = {
        code: FailureReason(reason)
        for reason, code in _FAILURE_CODES.items()
        if reason is not None
    }
    (trial, seed, connected, attempted, success, queries, failure,
     path_len, t_comm, t_max_load, t_mean_load) = columns
    results = []
    cursor = 0
    t_cursor = 0
    for i, spec in enumerate(specs):
        workload = _live_workload(spec, resolve)
        if workload is None or not (
            _is_run_trial(workload) or _is_run_traffic(workload)
        ):
            raise ValueError(
                f"spec {spec.key!r} does not name a packable workload"
            )
        traffic = None
        if t_comm[i] >= 0:
            if not _is_run_traffic(workload) or attempted[i]:
                raise ValueError(
                    f"spec {spec.key!r} cannot carry a traffic record"
                )
            k = int(t_comm[i])
            stop = t_cursor + k
            if stop > len(t_queries):
                raise ValueError(
                    "traffic columns are shorter than declared"
                )
            mask = tuple(bool(d) for d in t_delivered[t_cursor:stop])
            traffic = TrafficResult(
                commodities=k,
                delivered=sum(mask),
                queries=tuple(int(q) for q in t_queries[t_cursor:stop]),
                delivered_mask=mask,
                max_link_load=int(t_max_load[i]),
                mean_link_load=float(t_mean_load[i]),
            )
            t_cursor = stop
        elif _is_run_traffic(workload):
            raise ValueError(
                f"spec {spec.key!r} names a traffic workload but the "
                "record carries none"
            )
        routing = None
        if attempted[i]:
            path = None
            if path_len[i] >= 0:
                verts, _ = _codec(workload)
                stop = cursor + int(path_len[i])
                if stop > len(flat_path):
                    raise ValueError("path column is shorter than declared")
                path = [verts[int(code)] for code in flat_path[cursor:stop]]
                cursor = stop
            code = int(failure[i])
            if code and code not in reasons:
                raise ValueError(f"unknown failure code {code}")
            routing = RoutingResult(
                source=workload.args[3],
                target=workload.args[4],
                success=bool(success[i]),
                queries=int(queries[i]),
                path=path,
                failure=reasons[code] if code else None,
                router=workload.args[2].name,
            )
        record = TrialRecord(
            trial=int(trial[i]),
            seed=int(seed[i]),
            connected=bool(connected[i]),
            result=routing,
            traffic=traffic,
        )
        results.append(TrialResult(key=spec.key, value=record))
    if cursor != len(flat_path):
        raise ValueError("path column is longer than declared")
    if t_cursor != len(t_queries):
        raise ValueError("traffic columns are longer than declared")
    return results
