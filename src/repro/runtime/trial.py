"""The work-unit protocol between experiment definitions and runners.

A :class:`TrialSpec` is one self-contained unit of Monte-Carlo work —
typically a *single trial* of a ``measure_complexity`` sweep point (one
percolation draw + routing attempt) or one structural sweep, carrying
its own derived seed.  Executing it yields a :class:`TrialResult`
pairing the spec's ``key`` with the computed value.

Specs cross process boundaries, so ``fn`` must be a module-level
callable and ``args``/``kwargs`` plain picklable data (ints, floats,
strings, tuples, classes — not closures or lambdas).  Values returned
by ``fn`` should likewise be plain data (dicts/lists of primitives) so
they pickle cheaply on the way back.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = ["TrialExecutionError", "TrialResult", "TrialSpec"]


class TrialExecutionError(RuntimeError):
    """A trial raised (or its worker died) inside a runner.

    ``key`` identifies the failing :class:`TrialSpec`; ``detail``
    carries the original error rendered as text (the original exception
    object may not survive the trip back from a worker process).
    """

    def __init__(self, key: tuple, detail: str) -> None:
        super().__init__(key, detail)
        self.key = key
        self.detail = detail

    def __str__(self) -> str:
        return f"trial {self.key!r} failed: {self.detail}"


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit of work: ``fn(*args, **kwargs)``.

    ``key`` is a stable label (e.g. ``("e1", n, alpha, router)``) used
    for error reports and for matching results back to sweep points.
    """

    key: tuple
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def execute(self) -> TrialResult:
        """Run the unit, wrapping any failure in TrialExecutionError."""
        try:
            value = self.fn(*self.args, **dict(self.kwargs))
        except TrialExecutionError:
            raise
        except Exception as exc:
            raise TrialExecutionError(
                self.key, f"{type(exc).__name__}: {exc}"
            ) from exc
        return TrialResult(key=self.key, value=value)


@dataclass(frozen=True)
class TrialResult:
    """The value computed by one :class:`TrialSpec`."""

    key: tuple
    value: Any
