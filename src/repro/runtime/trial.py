"""The work-unit protocol between experiment definitions and runners.

A :class:`TrialSpec` is one self-contained unit of Monte-Carlo work —
typically a *single trial* of a ``measure_complexity`` sweep point (one
percolation draw + routing attempt) or one structural sweep, carrying
its own derived seed.  Executing it yields a :class:`TrialResult`
pairing the spec's ``key`` with the computed value.

Specs come in two shapes:

* **self-contained** — ``fn(*args, **kwargs)`` with everything inline.
  Right for units whose arguments are a few scalars (a dimension, a
  retention level, a seed) and the heavy objects are built inside the
  unit.
* **workload-referenced** — the shared context (graph, router,
  percolation factory, conditioning config) lives in one frozen
  :class:`~repro.runtime.workload.Workload` common to the whole group,
  and the spec carries only its per-trial tail
  (``key``, ``args=(trial, trial_seed)``).  Crossing a process boundary
  the spec pickles the workload down to its content id — see
  :mod:`repro.runtime.workload` — so the payload ships to each worker
  once, not once per trial.

Either way ``fn`` must be a module-level callable and all arguments
plain picklable data (ints, floats, strings, tuples, instances of
module-level classes — not closures or lambdas).  Values returned by
the unit should likewise be plain data (dicts/lists of primitives) so
they pickle cheaply on the way back.
"""

from __future__ import annotations

import traceback
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.workload import (
    Workload,
    WorkloadMissError,
    WorkloadRef,
    resolve_workload,
)

__all__ = ["TrialExecutionError", "TrialResult", "TrialSpec"]


class TrialExecutionError(RuntimeError):
    """A trial raised (or its worker died) inside a runner.

    ``key`` identifies the failing :class:`TrialSpec`; ``detail``
    carries the original error rendered as text — message plus the
    worker-side traceback, since the original exception object (and its
    ``__traceback__``) may not survive the trip back from a worker
    process.
    """

    def __init__(self, key: tuple, detail: str) -> None:
        super().__init__(key, detail)
        self.key = key
        self.detail = detail

    def __str__(self) -> str:
        return f"trial {self.key!r} failed: {self.detail}"


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit of work.

    ``key`` is a stable label (e.g. ``("e1", n, alpha, router)``) used
    for error reports and for matching results back to sweep points.
    Exactly one of ``fn`` (self-contained) or ``workload`` (shared
    payload) must be set; with a workload the call is
    ``workload.fn(*workload.args, *args, **workload.kwargs, **kwargs)``.
    """

    key: tuple
    fn: Callable[..., Any] | None = None
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    workload: Workload | WorkloadRef | None = None

    def __post_init__(self) -> None:
        if (self.fn is None) == (self.workload is None):
            raise ValueError(
                "a TrialSpec needs exactly one of fn= or workload="
            )

    @property
    def workload_id(self) -> str | None:
        """The referenced workload's content id (None if self-contained)."""
        return None if self.workload is None else self.workload.workload_id

    def __getstate__(self) -> dict:
        # The wire form: a full Workload payload collapses to its
        # content-addressed ref, so a pickled spec costs bytes
        # proportional to its per-trial tail, never to the graph.
        state = dict(self.__dict__)
        if isinstance(state.get("workload"), Workload):
            state["workload"] = state["workload"].ref()
        return state

    def execute(self) -> TrialResult:
        """Run the unit, wrapping any failure in TrialExecutionError."""
        try:
            if self.workload is not None:
                workload = self.workload
                if isinstance(workload, WorkloadRef):
                    workload = resolve_workload(workload.workload_id)
                value = workload.call(*self.args, **dict(self.kwargs))
            else:
                value = self.fn(*self.args, **dict(self.kwargs))
        except (TrialExecutionError, WorkloadMissError):
            # A miss is the pool's business (resubmit with payload),
            # not a trial failure; an already-wrapped error keeps its
            # original key.
            raise
        except Exception as exc:
            raise TrialExecutionError(
                self.key,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            ) from exc
        return TrialResult(key=self.key, value=value)


@dataclass(frozen=True)
class TrialResult:
    """The value computed by one :class:`TrialSpec`."""

    key: tuple
    value: Any
