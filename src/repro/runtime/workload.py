"""Shared-payload workloads: ship the graph once per worker, not per trial.

A per-trial :class:`~repro.runtime.trial.TrialSpec` used to inline its
whole measurement context — graph, router, percolation factory,
conditioning config — into ``args``.  For explicit topologies (a
``RandomMatchingCycle`` stores its matching, a ``TablePercolation``-
backed mesh its open-edge table) that payload dwarfs the per-trial
parameters, so pickling it once per spec makes IPC, not routing, the
parallel bottleneck.

A :class:`Workload` factors that shared context out.  It is a frozen
bundle ``fn(*args, ..., **kwargs)`` of everything common to a group of
trials, **content-addressed** by a stable :attr:`~Workload.workload_id`
(a BLAKE2b digest of the pickled contents).  Specs reference the
workload; crossing a process boundary they pickle down to a
:class:`WorkloadRef` — the id plus nothing else — and the payload
itself travels to each worker process at most once:

* **initializer** — a pool created while a batch is in hand ships the
  batch's payload table to every worker as it spawns;
* **first-touch** — a worker that meets an id it has not cached raises
  :class:`WorkloadMissError`; the scheduler answers by resubmitting the
  chunk with the payload attached, and the worker caches it for the
  rest of its life.

Content addressing makes invalidation trivial: a workload is immutable,
so a changed payload *is* a different id, and worker caches can only
ever grow stale entries, never wrong ones.

Ownership contract
------------------

The emitting side (e.g. :func:`repro.core.complexity.complexity_specs`)
owns the workload object and must keep it — via the specs that
reference it — alive for as long as its specs may run.  Runners never
deep-copy payloads: the parent resolves ids against the live batch (and
a weak registry of every workload ever constructed, for specs nested
inside other specs); workers resolve against their local cache.  Two
workloads with equal ids must therefore be interchangeable — guaranteed
by construction, since the id is a digest of the pickled content.
"""

from __future__ import annotations

import hashlib
import pickle
import weakref
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Workload",
    "WorkloadMissError",
    "WorkloadRef",
]


class WorkloadMissError(LookupError):
    """A workload id could not be resolved in this process.

    Raised worker-side when a chunk references payloads the worker has
    not cached yet; the pool answers by resubmitting the chunk with the
    payloads attached (the first-touch half of the shipping protocol).
    Reaching user code means a spec escaped its emitting scope after
    the emitter dropped the workload — an ownership bug.
    """

    def __init__(self, workload_ids: tuple[str, ...]) -> None:
        super().__init__(tuple(workload_ids))
        self.workload_ids = tuple(workload_ids)

    def __str__(self) -> str:
        return f"unresolved workload id(s): {', '.join(self.workload_ids)}"


@dataclass(frozen=True)
class WorkloadRef:
    """The wire form of a workload: its content id, nothing else."""

    workload_id: str


#: Every workload constructed in this process, by id, weakly held — the
#: fallback the parent uses to resolve misses for specs nested inside
#: other specs (where the batch scan cannot see the payload).  Equal
#: content can be constructed more than once with different lifetimes,
#: so each id keeps a list of weakrefs rather than a single slot.
_constructed: dict[str, list[weakref.ref]] = {}


def _register_constructed(workload: "Workload") -> None:
    workload_id = workload.workload_id

    def _prune(ref: weakref.ref, workload_id: str = workload_id) -> None:
        # Dead entries are removed the moment their workload is
        # collected, so the registry never accumulates tombstones over
        # a long-lived parent's many sweeps.
        refs = _constructed.get(workload_id)
        if refs is None:
            return
        try:
            refs.remove(ref)
        except ValueError:
            pass
        if not refs:
            _constructed.pop(workload_id, None)

    refs = _constructed.setdefault(workload_id, [])
    refs.append(weakref.ref(workload, _prune))


def _lookup_constructed(workload_id: str) -> "Workload | None":
    for ref in _constructed.get(workload_id, ()):
        workload = ref()
        if workload is not None:
            return workload
    return None

#: Payloads shipped to *this* process by a pool (initializer or
#: first-touch retry).  Strongly held: a worker keeps every workload it
#: ever received for the rest of its life — content addressing means
#: entries can become unused, never wrong.
_installed: dict[str, "Workload"] = {}


@dataclass(frozen=True, eq=False)
class Workload:
    """A frozen shared payload for a group of per-trial specs.

    ``fn`` is the module-level kernel the group's specs execute;
    ``args``/``kwargs`` are the leading arguments shared by every trial
    (graph, router, percolation factory, conditioning config...).  A
    spec's own ``args``/``kwargs`` are appended per call:
    ``fn(*workload.args, *spec.args, **workload.kwargs, **spec.kwargs)``.

    Everything must be picklable; the content id is a digest of the
    pickled ``(fn, args, kwargs)``, so equal content hashes to an equal
    id in any process.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    workload_id: str = field(init=False)

    def __post_init__(self) -> None:
        payload = (
            getattr(self.fn, "__module__", None),
            getattr(self.fn, "__qualname__", None),
            self.args,
            tuple(sorted(self.kwargs.items())),
        )
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"workload for {self.fn!r} is not picklable and cannot be "
                f"shipped to workers: {exc}"
            ) from exc
        digest = hashlib.blake2b(blob, digest_size=16).hexdigest()
        object.__setattr__(self, "workload_id", digest)
        _register_constructed(self)

    def call(self, *trial_args: Any, **trial_kwargs: Any) -> Any:
        """Run the kernel for one trial's arguments."""
        return self.fn(
            *self.args, *trial_args, **{**self.kwargs, **trial_kwargs}
        )

    def ref(self) -> WorkloadRef:
        """Return the slim wire form of this workload."""
        return WorkloadRef(self.workload_id)

    def __repr__(self) -> str:
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Workload({name}, id={self.workload_id[:8]}...)"


def install_workloads(payloads: Mapping[str, Workload]) -> None:
    """Cache shipped payloads in this (worker) process, keyed by id."""
    _installed.update(payloads)


def installed_workload_ids() -> frozenset[str]:
    """Return the ids cached in this process (introspection/tests)."""
    return frozenset(_installed)


def resolve_workload(workload_id: str) -> Workload:
    """Return the live workload for ``workload_id`` in this process.

    Looks in the shipped-payload cache first, then among workloads
    constructed locally (which covers the serial/in-process path and
    fork-inherited state).  Raises :class:`WorkloadMissError` when
    neither knows the id.
    """
    workload = _installed.get(workload_id)
    if workload is None:
        workload = _lookup_constructed(workload_id)
    if workload is None:
        raise WorkloadMissError((workload_id,))
    return workload
