"""Edge percolation: samplers, cluster analytics, and branching theory.

The random object of the paper is ``G_p`` — the graph ``G`` with every
edge kept independently with probability ``p``.  This package provides:

* percolation **models** (lazy hash-based, materialised, and sparse
  ``G(n,p)``) — :mod:`repro.percolation.models`;
* structured **fault models** (node failures, correlated outage
  clusters, adversarial budget-``k`` cuts) —
  :mod:`repro.percolation.faults`;
* **cluster** ground truth (components, connectivity, chemical distance)
  — :mod:`repro.percolation.cluster`;
* **giant-component** scans and threshold estimation —
  :mod:`repro.percolation.giant`;
* **Galton–Watson** closed forms for tree percolation —
  :mod:`repro.percolation.galton_watson`;
* the registry of known **critical probabilities** —
  :mod:`repro.percolation.thresholds`.
"""

from repro.percolation.cluster import (
    approx_cluster_diameter,
    chemical_distance,
    cluster_eccentricity,
    component,
    component_sizes,
    connected,
    largest_component,
    largest_component_size,
)
from repro.percolation.coupled import (
    edge_level,
    giant_threshold,
    pair_threshold,
    threshold_sample,
)
from repro.percolation.faults import (
    AdversarialCutPercolation,
    CorrelatedFaultPercolation,
    NodeFaultPercolation,
)
from repro.percolation.galton_watson import (
    critical_probability,
    expected_subcritical_progeny,
    extinction_probability,
    level_reach_probability,
    survival_probability,
)
from repro.percolation.giant import (
    estimate_threshold,
    full_connectivity_scan,
    giant_fraction,
    giant_fraction_scan,
    pair_connectivity_scan,
)
from repro.percolation.models import (
    GnpPercolation,
    HashPercolation,
    PercolationModel,
    TablePercolation,
)
from repro.percolation.site import SitePercolation
from repro.percolation.thresholds import (
    MESH_PC,
    double_tree_threshold,
    gnp_connectivity_threshold,
    gnp_giant_threshold,
    hypercube_connectivity_threshold,
    hypercube_giant_threshold,
    hypercube_routing_threshold,
    mesh_critical_probability,
)

__all__ = [
    "MESH_PC",
    "AdversarialCutPercolation",
    "CorrelatedFaultPercolation",
    "GnpPercolation",
    "HashPercolation",
    "NodeFaultPercolation",
    "PercolationModel",
    "SitePercolation",
    "TablePercolation",
    "approx_cluster_diameter",
    "chemical_distance",
    "cluster_eccentricity",
    "component",
    "component_sizes",
    "connected",
    "critical_probability",
    "double_tree_threshold",
    "edge_level",
    "estimate_threshold",
    "expected_subcritical_progeny",
    "extinction_probability",
    "full_connectivity_scan",
    "giant_fraction",
    "giant_fraction_scan",
    "giant_threshold",
    "gnp_connectivity_threshold",
    "gnp_giant_threshold",
    "hypercube_connectivity_threshold",
    "hypercube_giant_threshold",
    "hypercube_routing_threshold",
    "largest_component",
    "largest_component_size",
    "level_reach_probability",
    "mesh_critical_probability",
    "pair_connectivity_scan",
    "pair_threshold",
    "survival_probability",
    "threshold_sample",
]
