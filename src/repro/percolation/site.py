"""Site (vertex) percolation.

The paper studies *edge* failures, but its related work is largely
about *node* failures (Håstad–Leighton–Newman's faulty-hypercube
computation, Cole–Maggs–Sitaraman's butterfly emulation assume failing
processors).  :class:`SitePercolation` models that: each vertex is up
independently with probability ``p``; an edge is traversable iff both
endpoints are up.

It plugs into the same :class:`~repro.percolation.models.PercolationModel`
interface, so every router, the probe oracles and the complexity
harness work unchanged — extension experiment E13 uses this to check
that the hypercube's routing phase transition persists under node
faults.

Convention: the routing endpoints are typically *conditioned up* (a
query between dead hosts is meaningless); pass them as ``pinned`` to
exempt them from failure.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graphs.base import Graph, Vertex
from repro.percolation.models import PercolationModel
from repro.util.rng import uniform_for

__all__ = ["SitePercolation"]


class SitePercolation(PercolationModel):
    """Vertex percolation: edge open iff both endpoints are up.

    >>> from repro.graphs.hypercube import Hypercube
    >>> model = SitePercolation(Hypercube(4), p=1.0, seed=0)
    >>> model.is_open(0, 1)
    True
    """

    def __init__(
        self,
        graph: Graph,
        p: float,
        seed: int,
        pinned: Iterable[Vertex] = (),
    ) -> None:
        super().__init__(graph, p)
        self.seed = seed
        self._pinned = frozenset(pinned)
        for v in self._pinned:
            graph._require_vertex(v)

    def is_up(self, v: Vertex) -> bool:
        """Return whether vertex ``v`` survived."""
        if v in self._pinned:
            return True
        return uniform_for(self.seed, "site", v) < self.p

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        return self.is_up(u) and self.is_up(v)

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        if not self.is_up(v):
            return []
        return [w for w in self.graph.neighbors(v) if self.is_up(w)]
