"""Giant-component statistics and threshold scans.

Empirical counterparts of the connectivity results the paper builds on:
the AKS giant-component threshold of the hypercube (``p ≈ 1/n``), the
Erdős–Spencer connectivity threshold (``p = 1/2``), mesh percolation
thresholds, and pair-connectivity curves for the double tree (Lemma 6).
Experiment E11 uses these scans to place the routing transition (E1) on
the same axis as the structural transitions.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.graphs.base import Graph, Vertex
from repro.percolation.cluster import (
    component_sizes,
    connected,
    largest_component_size,
)
from repro.percolation.models import PercolationModel, TablePercolation
from repro.util.rng import derive_seed
from repro.util.stats import mean_ci, proportion_ci

__all__ = [
    "estimate_threshold",
    "full_connectivity_scan",
    "giant_fraction",
    "giant_fraction_scan",
    "pair_connectivity_scan",
]

ModelFactory = Callable[[Graph, float, int], PercolationModel]


def giant_fraction(model: PercolationModel) -> float:
    """Return |largest open cluster| / |V|."""
    return largest_component_size(model) / model.graph.num_vertices()


def giant_fraction_scan(
    graph: Graph,
    ps: Sequence[float],
    trials: int,
    seed: int,
    model_factory: ModelFactory = TablePercolation,
) -> list[dict]:
    """Estimate the giant fraction (and second-cluster fraction) per ``p``.

    Returns one row per ``p`` with mean and 95% CI over ``trials``
    independent percolations.
    """
    _validate_scan(ps, trials)
    rows = []
    n = graph.num_vertices()
    for p in ps:
        fractions = []
        seconds = []
        for t in range(trials):
            model = model_factory(graph, p, derive_seed(seed, "giant", p, t))
            sizes = component_sizes(model)
            fractions.append(sizes[0] / n if sizes else 0.0)
            seconds.append(sizes[1] / n if len(sizes) > 1 else 0.0)
        mean, lo, hi = mean_ci(fractions)
        second_mean, _, _ = mean_ci(seconds)
        rows.append(
            {
                "p": p,
                "giant_fraction": mean,
                "ci_lo": lo,
                "ci_hi": hi,
                "second_fraction": second_mean,
                "trials": trials,
            }
        )
    return rows


def pair_connectivity_scan(
    graph: Graph,
    ps: Sequence[float],
    trials: int,
    seed: int,
    pair: tuple[Vertex, Vertex] | None = None,
    model_factory: ModelFactory = TablePercolation,
) -> list[dict]:
    """Estimate ``Pr[u ~ v]`` per ``p`` (defaults to the canonical pair)."""
    _validate_scan(ps, trials)
    u, v = pair if pair is not None else graph.canonical_pair()
    rows = []
    for p in ps:
        hits = 0
        for t in range(trials):
            model = model_factory(graph, p, derive_seed(seed, "pair", p, t))
            if connected(model, u, v):
                hits += 1
        rate, lo, hi = proportion_ci(hits, trials)
        rows.append(
            {"p": p, "pr_connected": rate, "ci_lo": lo, "ci_hi": hi, "trials": trials}
        )
    return rows


def full_connectivity_scan(
    graph: Graph,
    ps: Sequence[float],
    trials: int,
    seed: int,
    model_factory: ModelFactory = TablePercolation,
) -> list[dict]:
    """Estimate ``Pr[G_p connected]`` per ``p``.

    Used for the hypercube's ``p = 1/2`` connectivity threshold
    (Erdős–Spencer), shown alongside the giant and routing transitions.
    """
    _validate_scan(ps, trials)
    n = graph.num_vertices()
    rows = []
    for p in ps:
        hits = 0
        for t in range(trials):
            model = model_factory(graph, p, derive_seed(seed, "conn", p, t))
            if largest_component_size(model) == n:
                hits += 1
        rate, lo, hi = proportion_ci(hits, trials)
        rows.append(
            {"p": p, "pr_connected": rate, "ci_lo": lo, "ci_hi": hi, "trials": trials}
        )
    return rows


def estimate_threshold(
    rows: Sequence[dict], column: str, target: float = 0.5
) -> float:
    """Return the ``p`` where ``column`` first crosses ``target``.

    Linear interpolation between the bracketing scan points.  Rows must
    be sorted by ``p`` and the column monotone-ish; raises if the curve
    never crosses.
    """
    prev = None
    for row in rows:
        value = row[column]
        if prev is not None:
            p0, y0 = prev
            p1, y1 = row["p"], value
            if (y0 - target) * (y1 - target) <= 0 and y0 != y1:
                return p0 + (target - y0) * (p1 - p0) / (y1 - y0)
        prev = (row["p"], value)
    raise ValueError(f"column {column!r} never crosses {target}")


def _validate_scan(ps: Sequence[float], trials: int) -> None:
    if not ps:
        raise ValueError("scan needs at least one probability")
    if trials < 1:
        raise ValueError("scan needs at least one trial")
