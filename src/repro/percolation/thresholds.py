"""Known critical probabilities used throughout the paper.

These are constants of the substrate: the paper's theorems are phrased
relative to them ("for every ``p > p_c(d)``", "``p = n^{-α}`` with
``α ≷ 1/2``").  Sources:

* ``p_c(ℤ²) = 1/2`` — Kesten's theorem (exact).
* ``p_c(ℤ^d)`` for ``d ≥ 3`` — high-precision numerical estimates
  (Grimmett, *Percolation*; Lorenz & Ziff for d=3); asymptotically
  ``(1 + o(1))/(2d)``.
* Hypercube giant component at ``p ≈ 1/n`` — Ajtai–Komlós–Szemerédi.
* Hypercube connectivity at ``p = 1/2`` — Erdős–Spencer.
* Hypercube **routing** transition at ``p = n^{-1/2}`` — *this paper*
  (Theorem 3).
* Double binary tree at ``p = 1/√2`` — Lemma 6.
* ``G(n, c/n)`` giant component at ``c = 1``, connectivity at
  ``p = ln n / n`` — Erdős–Rényi.
"""

from __future__ import annotations

import math

__all__ = [
    "MESH_PC",
    "double_tree_threshold",
    "gnp_connectivity_threshold",
    "gnp_giant_threshold",
    "hypercube_connectivity_threshold",
    "hypercube_giant_threshold",
    "hypercube_routing_threshold",
    "mesh_critical_probability",
]

#: Bond-percolation critical probabilities of ℤ^d (d=2 exact, d>=3 numeric).
MESH_PC: dict[int, float] = {
    1: 1.0,
    2: 0.5,
    3: 0.2488126,
    4: 0.1601314,
    5: 0.1181718,
    6: 0.0942019,
    7: 0.0786752,
}


def mesh_critical_probability(d: int) -> float:
    """Return ``p_c(ℤ^d)`` (known value, or the ``1/(2d-1)``-style estimate).

    For ``d`` beyond the tabulated range, returns the mean-field style
    approximation ``1/(2d - 1)``, which is accurate to a few percent in
    high dimension (the true value is ``(1 + o(1))/(2d)``).
    """
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    if d in MESH_PC:
        return MESH_PC[d]
    return 1.0 / (2 * d - 1)


def hypercube_giant_threshold(n: int) -> float:
    """Return ``1/n`` — the AKS giant-component threshold of ``H_{n,p}``."""
    if n < 1:
        raise ValueError(f"dimension must be >= 1, got {n}")
    return 1.0 / n


def hypercube_connectivity_threshold() -> float:
    """Return ``1/2`` — the Erdős–Spencer connectivity threshold."""
    return 0.5


def hypercube_routing_threshold(n: int) -> float:
    """Return ``n^{-1/2}`` — the paper's routing-complexity transition.

    Below this (``p = n^{-α}``, ``α > 1/2``) every local router needs
    ``2^{Ω(n^β)}`` probes; above it (``α < 1/2``) poly(n) suffices.
    """
    if n < 1:
        raise ValueError(f"dimension must be >= 1, got {n}")
    return n**-0.5


def double_tree_threshold() -> float:
    """Return ``1/√2`` — the ``TT_n`` root-connectivity threshold."""
    return math.sqrt(0.5)


def gnp_giant_threshold(n: int) -> float:
    """Return ``1/n`` — ``G(n, c/n)`` has a giant component iff ``c > 1``."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return 1.0 / n


def gnp_connectivity_threshold(n: int) -> float:
    """Return ``ln(n)/n`` — the ``G(n, p)`` connectivity threshold."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return math.log(n) / n
