"""Galton–Watson (branching-process) theory for tree percolation.

Percolating a complete ``b``-ary tree with edge-retention probability
``p`` makes the open subtree below the root a Galton–Watson process with
offspring ``Binomial(b, p)``.  The paper uses this twice:

* **Lemma 6** — ``x ~ y`` in ``TT_{n,p}`` iff some leaf has an open
  branch to each root, which is root-to-level-``n`` survival of a binary
  GW tree with edge probability ``p²``; the threshold is ``p² = 1/2``.
* **Theorem 9** — DFS in a *supercritical* GW tree reaches level ``n``
  in expected O(n) steps because failed branches have finite expected
  size (``1/(1 - bp)`` in the subcritical phase).

These closed forms are validated against Monte-Carlo in the test suite
and power the theory overlays of experiments E6–E8.
"""

from __future__ import annotations

__all__ = [
    "critical_probability",
    "expected_subcritical_progeny",
    "extinction_probability",
    "level_reach_probability",
    "survival_probability",
]


def _validate(b: int, p: float) -> None:
    if b < 1:
        raise ValueError(f"branching factor must be >= 1, got {b}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p!r}")


def critical_probability(b: int) -> float:
    """Return the GW critical edge probability ``1/b``."""
    _validate(b, 0.0)
    return 1.0 / b


def extinction_probability(b: int, p: float, tol: float = 1e-12) -> float:
    """Return the extinction probability ``q`` of the open subtree.

    ``q`` is the smallest fixed point of ``q = (1 - p + p·q)^b``.
    Computed by monotone fixed-point iteration from 0 (which converges to
    the *smallest* root).
    """
    _validate(b, p)
    q = 0.0
    while True:
        nxt = (1.0 - p + p * q) ** b
        if abs(nxt - q) < tol:
            return nxt
        q = nxt


def survival_probability(b: int, p: float, tol: float = 1e-12) -> float:
    """Return ``θ(p) = 1 - q`` — probability the open subtree is infinite.

    Zero iff ``p <= 1/b``.  For ``b = 2`` the closed form is
    ``θ = (2p - 1)/p²``, which the tests check.
    """
    return 1.0 - extinction_probability(b, p, tol)


def level_reach_probability(b: int, p: float, depth: int) -> float:
    """Return the probability the root reaches level ``depth``.

    Recursion: ``q_0 = 1``; ``q_k = 1 - (1 - p·q_{k-1})^b``.  As
    ``depth → ∞`` this decreases to :func:`survival_probability`.

    This is **exactly** ``Pr[x ~ y]`` in ``TT_depth`` with edge
    probability ``√(p)``... more precisely: for the double tree with edge
    retention ``r``, ``Pr[x ~ y] = level_reach_probability(2, r², n)``
    (Lemma 6's argument: pair each edge with its mirror).
    """
    _validate(b, p)
    if depth < 0:
        raise ValueError("depth must be non-negative")
    q = 1.0
    for _ in range(depth):
        q = 1.0 - (1.0 - p * q) ** b
    return q


def expected_subcritical_progeny(b: int, p: float) -> float:
    """Return the expected total size of a *subcritical* GW tree.

    For mean offspring ``m = bp < 1`` the expected total progeny
    (including the root) is ``1/(1 - m)``.  This is the expected cost of
    exploring one failed branch in the Theorem 9 oracle router.
    """
    _validate(b, p)
    m = b * p
    if m >= 1.0:
        raise ValueError(
            f"expected progeny is infinite for mean offspring {m} >= 1"
        )
    return 1.0 / (1.0 - m)
