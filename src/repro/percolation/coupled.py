"""Monotone-coupled percolation: exact per-trial critical points.

:class:`~repro.percolation.models.HashPercolation` opens an edge iff its
deterministic uniform variate is below ``p``; all retention levels of
one seed are therefore *coupled*: the open edge set grows monotonically
with ``p``.  That coupling makes per-trial threshold questions exact —
no scanning, no bisection:

* the ``p`` at which ``u ~ v`` first holds is the **bottleneck value**
  of the minimax path between them (Kruskal-style union–find over edges
  sorted by their uniforms);
* the ``p`` at which the largest cluster first reaches a target
  fraction falls out of the same sweep.

These exact thresholds agree with :class:`HashPercolation` by
construction (same hash stream), which the test suite verifies — and
they turn threshold experiments from O(grid × trials) into O(trials).
"""

from __future__ import annotations

from repro.graphs.base import Graph, Vertex
from repro.percolation.models import HashPercolation
from repro.util.rng import uniform_for
from repro.util.unionfind import DisjointSets

__all__ = [
    "edge_level",
    "giant_threshold",
    "pair_threshold",
    "threshold_sample",
]


def edge_level(graph: Graph, seed: int, u: Vertex, v: Vertex) -> float:
    """Return the coupling level of edge ``{u, v}``.

    The edge is open under ``HashPercolation(graph, p, seed)`` iff
    ``p > edge_level(...)`` (strictly: iff the level is `< p`).
    """
    return uniform_for(seed, "edge", graph.edge_key(u, v))


def _sorted_levels(graph: Graph, seed: int) -> list[tuple[float, tuple]]:
    levels = [
        (uniform_for(seed, "edge", e), e) for e in graph.edges()
    ]
    levels.sort()
    return levels


def pair_threshold(graph: Graph, seed: int, u: Vertex, v: Vertex) -> float:
    """Return the exact ``p`` above which ``u ~ v`` in this coupling.

    Union edges in increasing level order until ``u`` and ``v`` merge;
    the last level added is the threshold (the bottleneck of the
    minimax ``u``–``v`` path).  Returns ``inf`` if the full graph does
    not connect them.
    """
    graph._require_vertex(u)
    graph._require_vertex(v)
    if u == v:
        return 0.0
    ds = DisjointSets()
    for level, (a, b) in _sorted_levels(graph, seed):
        ds.union(a, b)
        if ds.connected(u, v):
            return level
    return float("inf")


def giant_threshold(graph: Graph, seed: int, fraction: float) -> float:
    """Return the exact ``p`` at which the largest cluster reaches
    ``fraction`` of all vertices, in this coupling.

    Returns ``inf`` if even the full graph falls short (possible only
    for disconnected graphs).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    n = graph.num_vertices()
    target = fraction * n
    if target <= 1:
        return 0.0  # singletons already qualify
    ds = DisjointSets()
    for level, (a, b) in _sorted_levels(graph, seed):
        ds.union(a, b)
        if ds.set_size(a) >= target:
            return level
    return float("inf")


def threshold_sample(
    graph: Graph,
    trials: int,
    seed: int,
    pair: tuple[Vertex, Vertex] | None = None,
    giant_fraction: float | None = None,
) -> list[dict]:
    """Sample exact thresholds over independent couplings.

    For each trial returns a dict with ``pair_threshold`` (for ``pair``,
    default the canonical pair) and, if requested, ``giant_threshold``
    at ``giant_fraction``.  One sweep per trial; the empirical CDF of
    ``pair_threshold`` **is** the connectivity curve
    ``p ↦ Pr[u ~ v in G_p]`` evaluated at every ``p`` simultaneously.
    """
    from repro.util.rng import derive_seed

    if trials < 1:
        raise ValueError("need at least one trial")
    u, v = pair if pair is not None else graph.canonical_pair()
    rows = []
    for t in range(trials):
        trial_seed = derive_seed(seed, "coupled", t)
        row = {
            "trial": t,
            "seed": trial_seed,
            "pair_threshold": pair_threshold(graph, trial_seed, u, v),
        }
        if giant_fraction is not None:
            row["giant_threshold"] = giant_threshold(
                graph, trial_seed, giant_fraction
            )
        rows.append(row)
    return rows


# re-export for convenience in tests: the model these thresholds describe
CoupledModel = HashPercolation
