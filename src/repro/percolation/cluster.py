"""Cluster analysis of percolated graphs.

Ground-truth connectivity — used by the complexity harness to condition
on the event ``{u ~ v}`` (Definition 2 of the paper) *independently of
any router*, and by the giant-component experiments.

``D(x, y)`` in the paper (the *percolation* or *chemical* distance) is
:func:`chemical_distance` here; its linear-in-``d(x,y)`` behaviour with
exponential tails in the supercritical mesh (Antal–Pisztora, the paper's
Lemma 8) is measured by experiment E5b.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.base import Vertex
from repro.percolation.models import PercolationModel

__all__ = [
    "approx_cluster_diameter",
    "chemical_distance",
    "cluster_eccentricity",
    "component",
    "component_sizes",
    "connected",
    "largest_component",
    "largest_component_size",
]


def component(
    model: PercolationModel, v: Vertex, max_size: int | None = None
) -> set[Vertex]:
    """Return the open cluster of ``v``.

    ``max_size`` stops the exploration early (the returned set then has
    exactly ``max_size`` vertices); useful to test "is the cluster big"
    without materialising a giant component.
    """
    model.graph._require_vertex(v)
    seen = {v}
    queue: deque[Vertex] = deque([v])
    while queue:
        x = queue.popleft()
        for y in model.open_neighbors(x):
            if y not in seen:
                seen.add(y)
                if max_size is not None and len(seen) >= max_size:
                    return seen
                queue.append(y)
    return seen


def connected(model: PercolationModel, u: Vertex, v: Vertex) -> bool:
    """Return whether ``u ~ v`` in the percolated graph.

    BFS from ``u`` with early exit on reaching ``v``.
    """
    model.graph._require_vertex(u)
    model.graph._require_vertex(v)
    if u == v:
        return True
    seen = {u}
    queue: deque[Vertex] = deque([u])
    while queue:
        x = queue.popleft()
        for y in model.open_neighbors(x):
            if y == v:
                return True
            if y not in seen:
                seen.add(y)
                queue.append(y)
    return False


def chemical_distance(
    model: PercolationModel, u: Vertex, v: Vertex
) -> int | None:
    """Return ``D(u, v)`` — distance in the percolated graph — or ``None``.

    ``None`` means ``u`` and ``v`` are in different open clusters.
    """
    model.graph._require_vertex(u)
    model.graph._require_vertex(v)
    if u == v:
        return 0
    dist = {u: 0}
    queue: deque[Vertex] = deque([u])
    while queue:
        x = queue.popleft()
        for y in model.open_neighbors(x):
            if y in dist:
                continue
            dist[y] = dist[x] + 1
            if y == v:
                return dist[y]
            queue.append(y)
    return None


def component_sizes(model: PercolationModel) -> list[int]:
    """Return the sizes of all open clusters (descending).

    Requires the underlying graph to be enumerable.
    """
    seen: set[Vertex] = set()
    sizes = []
    for v in model.graph.vertices():
        if v in seen:
            continue
        comp = component(model, v)
        seen |= comp
        sizes.append(len(comp))
    sizes.sort(reverse=True)
    return sizes


def largest_component(model: PercolationModel) -> set[Vertex]:
    """Return the vertex set of the largest open cluster."""
    seen: set[Vertex] = set()
    best: set[Vertex] = set()
    for v in model.graph.vertices():
        if v in seen:
            continue
        comp = component(model, v)
        seen |= comp
        if len(comp) > len(best):
            best = comp
    return best


def largest_component_size(model: PercolationModel) -> int:
    """Return the size of the largest open cluster (0 for empty graphs)."""
    sizes = component_sizes(model)
    return sizes[0] if sizes else 0


def cluster_eccentricity(
    model: PercolationModel, v: Vertex
) -> tuple[int, Vertex]:
    """Return ``(max_u D(v, u), argmax)`` over the open cluster of ``v``."""
    model.graph._require_vertex(v)
    dist = {v: 0}
    queue: deque[Vertex] = deque([v])
    far, far_d = v, 0
    while queue:
        x = queue.popleft()
        for y in model.open_neighbors(x):
            if y in dist:
                continue
            dist[y] = dist[x] + 1
            if dist[y] > far_d:
                far, far_d = y, dist[y]
            queue.append(y)
    return far_d, far


def approx_cluster_diameter(
    model: PercolationModel, start: Vertex, sweeps: int = 2
) -> int:
    """Return a lower bound on the diameter of ``start``'s open cluster.

    The classic multi-sweep heuristic: BFS to the farthest vertex, then
    BFS again from there, ``sweeps`` times.  Exact on trees; within a
    factor 2 in general; used to verify the paper's claim that in the
    middle regime (``1/n ≪ p ≪ n^{-1/2}``) the hypercube's giant
    component has poly(n) diameter even though routing is hard (E13).
    """
    if sweeps < 1:
        raise ValueError("need at least one sweep")
    best = 0
    current = start
    for _ in range(sweeps):
        ecc, far = cluster_eccentricity(model, current)
        best = max(best, ecc)
        current = far
    return best
