"""Edge-percolation models.

A :class:`PercolationModel` fixes, for one random experiment, the
open/closed state of every edge of a graph.  Three implementations cover
the paper's needs:

* :class:`HashPercolation` — *lazy*: the state of an edge is a pure hash
  of ``(seed, edge)``.  Nothing is materialised, so it scales to the
  implicit hypercube; and the coupling is monotone in ``p`` (raising the
  retention probability only opens edges).
* :class:`TablePercolation` — *materialised*: samples every edge of an
  (enumerable) graph up front with numpy and keeps an open-adjacency
  index.  Used when ground-truth connectivity must be computed for many
  vertices, where per-edge hashing would dominate.
* :class:`GnpPercolation` — the Erdős–Rényi graph ``G(n, p)`` sampled
  *sparsely*: only the open pairs are drawn, so cost is proportional to
  the number of open edges rather than to ``n²``.  This is the substrate
  of Theorems 10 and 11.

All models answer :meth:`~PercolationModel.is_open` for any vertex pair
of the graph; states are functions of the *canonical* edge key, so both
orientations agree.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.base import Graph, Vertex
from repro.graphs.complete import CompleteGraph
from repro.util.rng import derive_seed, edge_coin

__all__ = [
    "GnpPercolation",
    "HashPercolation",
    "PercolationModel",
    "TablePercolation",
]


class PercolationModel(ABC):
    """The open/closed state of every edge for one random experiment."""

    def __init__(self, graph: Graph, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"retention probability must be in [0,1], got {p!r}")
        self.graph = graph
        self.p = p

    @abstractmethod
    def is_open(self, u: Vertex, v: Vertex) -> bool:
        """Return whether the edge ``{u, v}`` is open."""

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        """Return neighbours of ``v`` reachable through open edges.

        Default: filter ``graph.neighbors``.  Materialised models
        override this with an index lookup.
        """
        return [w for w in self.graph.neighbors(v) if self.is_open(v, w)]

    def open_degree(self, v: Vertex) -> int:
        """Return the number of open edges at ``v``."""
        return len(self.open_neighbors(v))

    def path_is_open(self, path: list[Vertex]) -> bool:
        """Return whether every consecutive edge of ``path`` is open."""
        return all(self.is_open(a, b) for a, b in zip(path, path[1:]))


class HashPercolation(PercolationModel):
    """Lazy percolation: edge states are keyed hashes, never stored.

    >>> from repro.graphs.hypercube import Hypercube
    >>> model = HashPercolation(Hypercube(10), p=0.5, seed=1)
    >>> model.is_open(0, 1) == model.is_open(1, 0)
    True
    """

    def __init__(self, graph: Graph, p: float, seed: int) -> None:
        super().__init__(graph, p)
        self.seed = seed

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        return edge_coin(self.seed, self.graph.edge_key(u, v), self.p)


class TablePercolation(PercolationModel):
    """Materialised percolation with an open-adjacency index.

    Samples all edges of ``graph`` in one vectorised pass.  Requires the
    graph to be enumerable in memory (used for meshes, moderate
    hypercubes, trees).

    >>> from repro.graphs.mesh import Mesh
    >>> model = TablePercolation(Mesh(2, 4), p=1.0, seed=0)
    >>> model.open_degree((0, 0))
    2
    """

    def __init__(self, graph: Graph, p: float, seed: int) -> None:
        super().__init__(graph, p)
        self.seed = seed
        edges = list(graph.edges())
        rng = np.random.default_rng(derive_seed(seed, "table-percolation"))
        mask = rng.random(len(edges)) < p
        self._open: set = {e for e, keep in zip(edges, mask) if keep}
        self._adjacency: dict[Vertex, list[Vertex]] = {}
        for u, v in self._open:
            self._adjacency.setdefault(u, []).append(v)
            self._adjacency.setdefault(v, []).append(u)

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        return self.graph.edge_key(u, v) in self._open

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        return self._adjacency.get(v, [])

    def num_open_edges(self) -> int:
        """Return the number of open edges."""
        return len(self._open)

    def open_edges(self) -> set:
        """Return the set of open edge keys (do not mutate)."""
        return self._open


class GnpPercolation(PercolationModel):
    """The Erdős–Rényi graph ``G(n, p)`` sampled in O(open edges).

    The number of open pairs is drawn ``Binomial(C(n,2), p)`` and the
    pairs themselves uniformly without replacement, which is exactly the
    ``G(n, p)`` distribution (a ``G(n, M)`` mixture).  Probing any pair —
    including closed ones — is an O(1) set lookup.

    >>> model = GnpPercolation(n=50, p=0.1, seed=3)
    >>> isinstance(model.graph, CompleteGraph)
    True
    """

    def __init__(self, n: int, p: float, seed: int) -> None:
        super().__init__(CompleteGraph(n), p)
        self.n = n
        self.seed = seed
        total_pairs = n * (n - 1) // 2
        rng = np.random.default_rng(derive_seed(seed, "gnp-percolation"))
        count = int(rng.binomial(total_pairs, p))
        chosen: set[int] = set()
        # Draw-with-replacement + dedupe is distributionally identical to
        # without-replacement sampling and costs O(count) when p is small.
        while len(chosen) < count:
            batch = rng.integers(0, total_pairs, size=count - len(chosen))
            chosen.update(int(x) for x in batch)
        self._open: set[tuple[int, int]] = set()
        self._adjacency: dict[int, list[int]] = {}
        for index in sorted(chosen):
            i, j = _pair_from_index(index)
            self._open.add((i, j))
            self._adjacency.setdefault(i, []).append(j)
            self._adjacency.setdefault(j, []).append(i)

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        if u == v:
            return False
        return ((u, v) if u < v else (v, u)) in self._open

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        return self._adjacency.get(v, [])

    def num_open_edges(self) -> int:
        """Return the number of open pairs."""
        return len(self._open)


def _pair_from_index(index: int) -> tuple[int, int]:
    # Local import indirection kept minimal: reuse the tested bitops code.
    from repro.util.bitops import pair_from_index

    return pair_from_index(index)
