"""Structured fault models: node, correlated and adversarial failures.

The paper percolates every edge i.i.d.; its neighbouring literature
studies *structured* faults, and this module is the seam where those
models plug into the same :class:`~repro.percolation.models.
PercolationModel` interface — every router, probe oracle, the
complexity harness and every runtime backend work on them unchanged.

* :class:`NodeFaultPercolation` — a failed node removes **all** of its
  incident links at once (Safaei & ValadBeigi's router-failure model).
  Sample-for-sample it closes exactly the edges a
  :class:`~repro.percolation.site.SitePercolation` with the same seed
  would close — the two are independent implementations of the same
  coin stream, and the property suite in ``tests/percolation/``
  asserts the equivalence edge by edge.
* :class:`CorrelatedFaultPercolation` — clustered failures: seeded
  epicenters each kill a graph-metric ball whose radius is drawn
  geometrically, modelling the spatially correlated outages (shared
  power, shared conduit) that i.i.d. models miss.  At ``spread=0``
  every epicenter kills only itself, recovering i.i.d. node faults —
  the controlled baseline experiment E16 compares against.
* :class:`AdversarialCutPercolation` — non-benign faults (Lenzen et
  al.): a budget-``k`` adversary greedily removes the edges that hurt
  a given ``(source, target)`` probe most, targeting the small cut
  rather than spreading damage uniformly.

All three follow the library's determinism contract: every random
decision is a pure function of ``(seed, structured key)`` through the
keyed BLAKE2b streams of :mod:`repro.util.rng`, so a trial replays
bit-for-bit in any process and the background edge coins stay
monotone-coupled in ``p`` (the same ``"edge"`` stream as
:class:`~repro.percolation.models.HashPercolation`).  Models
materialise at construction, which requires an enumerable graph — the
regime every structured-fault experiment runs in.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graphs.base import Edge, Graph, Vertex
from repro.percolation.models import PercolationModel
from repro.util.rng import uniform_for

__all__ = [
    "AdversarialCutPercolation",
    "CorrelatedFaultPercolation",
    "NodeFaultPercolation",
]


class _MaterializedFaults(PercolationModel):
    """Shared open-edge/adjacency index for the materialised models."""

    def _build_index(self, open_edges: Iterable[Edge]) -> None:
        self._open: set = set(open_edges)
        self._adjacency: dict[Vertex, list[Vertex]] = {}
        for u, v in self._open:
            self._adjacency.setdefault(u, []).append(v)
            self._adjacency.setdefault(v, []).append(u)

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        return self.graph.edge_key(u, v) in self._open

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        return self._adjacency.get(v, [])

    def num_open_edges(self) -> int:
        """Return the number of open edges."""
        return len(self._open)

    def open_edges(self) -> set:
        """Return the set of open edge keys (do not mutate)."""
        return self._open


class NodeFaultPercolation(_MaterializedFaults):
    """Router failures: a failed node kills all incident edges.

    Each vertex survives independently with probability ``p`` (pinned
    vertices always survive); an edge is open iff **both** endpoints
    survived.  The per-vertex coin is the same ``"site"`` stream
    :class:`~repro.percolation.site.SitePercolation` flips, so the two
    models agree sample for sample — this class adds the materialised
    failure view (failed set, killed edge set, open-adjacency index)
    that node-fault experiments and the property suite need.

    >>> from repro.graphs.clos import FatTree
    >>> model = NodeFaultPercolation(FatTree(4), p=1.0, seed=0)
    >>> model.failed_nodes()
    frozenset()
    >>> model.num_open_edges()
    32
    """

    def __init__(
        self,
        graph: Graph,
        p: float,
        seed: int,
        pinned: Iterable[Vertex] = (),
    ) -> None:
        super().__init__(graph, p)
        self.seed = seed
        self._pinned = frozenset(pinned)
        for v in self._pinned:
            graph._require_vertex(v)
        self._failed = frozenset(
            v
            for v in graph.vertices()
            if v not in self._pinned
            and not uniform_for(seed, "site", v) < p
        )
        self._build_index(
            e for e in graph.edges() if not self._failed.intersection(e)
        )

    def is_up(self, v: Vertex) -> bool:
        """Return whether vertex ``v`` survived."""
        return v not in self._failed

    def failed_nodes(self) -> frozenset:
        """Return the failed vertex set."""
        return self._failed

    def killed_edges(self) -> set:
        """Return exactly the edges incident to a failed node."""
        return {
            self.graph.edge_key(v, w)
            for v in self._failed
            for w in self.graph.neighbors(v)
        }


class CorrelatedFaultPercolation(_MaterializedFaults):
    """Clustered failures: epicenters kill graph-metric balls.

    Every vertex is an outage *epicenter* independently with
    probability ``epicenter_rate``; epicenter ``e`` kills the ball of
    radius ``r_e`` around itself, where ``r_e`` is geometric —
    ``Pr[r_e >= j] = spread**j`` — drawn from the per-epicenter
    ``"radius"`` stream.  Pinned vertices never die.  Surviving edges
    (both endpoints alive) are then open independently with probability
    ``p`` through the monotone-coupled ``"edge"`` coin stream.

    ``spread=0`` makes every ball a single vertex: i.i.d. node faults
    at rate ``epicenter_rate``.  Raising ``spread`` grows the *same*
    epicenters into clusters (coupled radii), so sweeps isolate the
    effect of correlation from the effect of epicenter density.

    >>> from repro.graphs.hypercube import Hypercube
    >>> m = CorrelatedFaultPercolation(
    ...     Hypercube(4), p=1.0, seed=3, epicenter_rate=0.0, spread=0.5
    ... )
    >>> m.dead_nodes()
    frozenset()
    """

    def __init__(
        self,
        graph: Graph,
        p: float,
        seed: int,
        epicenter_rate: float,
        spread: float,
        pinned: Iterable[Vertex] = (),
    ) -> None:
        super().__init__(graph, p)
        if not 0.0 <= epicenter_rate <= 1.0:
            raise ValueError(
                f"epicenter_rate must be in [0,1], got {epicenter_rate!r}"
            )
        if not 0.0 <= spread < 1.0:
            raise ValueError(
                f"spread must be in [0,1) (1 would grow unbounded "
                f"clusters), got {spread!r}"
            )
        self.seed = seed
        self.epicenter_rate = epicenter_rate
        self.spread = spread
        self._pinned = frozenset(pinned)
        for v in self._pinned:
            graph._require_vertex(v)
        self._epicenters = frozenset(
            v
            for v in graph.vertices()
            if uniform_for(seed, "epicenter", v) < epicenter_rate
        )
        dead: set[Vertex] = set()
        for e in self._epicenters:
            dead.update(self._ball(e, self._radius(e)))
        self._dead = frozenset(dead - self._pinned)
        self._build_index(
            e
            for e in graph.edges()
            if not self._dead.intersection(e)
            and uniform_for(seed, "edge", e) < p
        )

    def _radius(self, epicenter: Vertex) -> int:
        # Geometric by inversion on one uniform: Pr[r >= j] = spread^j.
        # Monotone in `spread` for a fixed draw, so growing `spread`
        # only ever grows the ball.
        if self.spread == 0.0:
            return 0
        u = uniform_for(self.seed, "radius", epicenter)
        radius = 0
        threshold = self.spread
        while u < threshold:
            radius += 1
            threshold *= self.spread
        return radius

    def _ball(self, center: Vertex, radius: int) -> set[Vertex]:
        seen = {center}
        frontier = deque([(center, 0)])
        while frontier:
            x, d = frontier.popleft()
            if d >= radius:
                continue
            for y in self.graph.neighbors(x):
                if y not in seen:
                    seen.add(y)
                    frontier.append((y, d + 1))
        return seen

    def is_up(self, v: Vertex) -> bool:
        """Return whether vertex ``v`` survived every outage ball."""
        return v not in self._dead

    def epicenters(self) -> frozenset:
        """Return the outage epicenters (dead unless pinned)."""
        return self._epicenters

    def dead_nodes(self) -> frozenset:
        """Return the union of all outage balls (minus pinned)."""
        return self._dead


class AdversarialCutPercolation(_MaterializedFaults):
    """Budget-``k`` adversarial edge removal targeting a probe pair.

    The adversary knows the topology and the ``(source, target)``
    probe, but not the random coins.  It spends its budget greedily:
    at each step it computes the current shortest surviving
    ``source → target`` path and removes the path edge whose removal
    lengthens the remaining shortest path the most (one-step
    lookahead; disconnection beats every finite length; earliest path
    edge wins ties).  On a fat-tree this walks straight into the
    ``k/2``-edge uplink cut instead of wasting budget on the ``(k/2)²``
    redundant core paths.  After the removals, surviving edges are
    open i.i.d. with probability ``p`` through the monotone-coupled
    ``"edge"`` stream (``p=1.0`` isolates the pure adversary).

    Placement is deterministic given ``(graph, pair, budget)`` — the
    removal sequence for budget ``k`` is a prefix of the sequence for
    ``k+1``, so raising the budget only removes more.

    >>> from repro.graphs.clos import FatTree
    >>> m = AdversarialCutPercolation(FatTree(4), p=1.0, seed=0, budget=2)
    >>> len(m.removed_edges())
    2
    >>> from repro.percolation.cluster import connected
    >>> connected(m, *m.pair)  # k/2 = 2 removals sever the source cut
    False
    """

    def __init__(
        self,
        graph: Graph,
        p: float,
        seed: int,
        budget: int,
        pair: tuple[Vertex, Vertex] | None = None,
    ) -> None:
        super().__init__(graph, p)
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget!r}")
        self.seed = seed
        self.budget = budget
        self.pair = pair if pair is not None else graph.canonical_pair()
        for v in self.pair:
            graph._require_vertex(v)
        self._removed: tuple[Edge, ...] = self._greedy_cut()
        removed = set(self._removed)
        self._build_index(
            e
            for e in graph.edges()
            if e not in removed and uniform_for(seed, "edge", e) < p
        )

    def _greedy_cut(self) -> tuple[Edge, ...]:
        removed: set[Edge] = set()
        sequence: list[Edge] = []
        for _ in range(self.budget):
            path = self._shortest_avoiding(removed)
            if path is None or len(path) < 2:
                break  # severed (or a self-probe); further budget is moot
            best_edge, best_cost = None, -1
            for a, b in zip(path, path[1:]):
                edge = self.graph.edge_key(a, b)
                trial = self._shortest_avoiding(removed | {edge})
                cost = float("inf") if trial is None else len(trial)
                if cost > best_cost:
                    best_edge, best_cost = edge, cost
            removed.add(best_edge)
            sequence.append(best_edge)
        return tuple(sequence)

    def _shortest_avoiding(self, removed: set) -> list[Vertex] | None:
        """One shortest source→target path using no removed edge."""
        source, target = self.pair
        if source == target:
            return [source]
        graph = self.graph
        parent: dict[Vertex, Vertex] = {source: source}
        queue: deque[Vertex] = deque([source])
        while queue:
            x = queue.popleft()
            for y in graph.neighbors(x):
                if y in parent or graph.edge_key(x, y) in removed:
                    continue
                parent[y] = x
                if y == target:
                    return Graph._backtrack(parent, source, target)
                queue.append(y)
        return None

    def removed_edges(self) -> tuple[Edge, ...]:
        """Return the adversary's removals, in removal order."""
        return self._removed
