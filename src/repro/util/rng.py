"""Deterministic, keyed randomness.

Every random decision in the library is a *pure function* of a 64-bit seed
and a structured key.  This buys three properties that the reproduction
leans on heavily:

1. **Lazy sampling.**  The state of an edge in a percolated graph is
   computed on demand — ``is edge (u, v) open?`` is answered without ever
   materialising the graph, so the :math:`n`-dimensional hypercube with
   :math:`n 2^{n-1}` edges stays implicit.
2. **Monotone coupling.**  An edge is open iff its uniform variate is
   below ``p``.  Because the variate depends only on ``(seed, edge)`` and
   not on ``p``, raising ``p`` can only open more edges.  Threshold scans
   and several property tests exploit this coupling.
3. **Replayability.**  A trial is identified by ``(master_seed, labels...)``
   and can be re-run bit-for-bit, including across processes, because the
   hash does not depend on ``PYTHONHASHSEED`` or dict ordering.

The hash is BLAKE2b keyed with the seed; keys are serialised with
:func:`repr`, which is stable for the vertex types used by this library
(ints, strings, and nested tuples of those).
"""

from __future__ import annotations

import hashlib
from typing import Any

__all__ = [
    "MAX_SEED",
    "derive_seed",
    "edge_coin",
    "uniform_for",
]

#: Seeds are 64-bit unsigned integers.
MAX_SEED = 2**64 - 1

_SCALE = float(2**64)


def _digest(seed: int, key: tuple[Any, ...]) -> bytes:
    """Return an 8-byte keyed digest of ``key`` under ``seed``.

    Raises :class:`ValueError` if ``seed`` is outside ``[0, MAX_SEED]``.
    """
    if not 0 <= seed <= MAX_SEED:
        raise ValueError(f"seed must be a 64-bit unsigned int, got {seed!r}")
    hasher = hashlib.blake2b(
        repr(key).encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(8, "little"),
    )
    return hasher.digest()


def uniform_for(seed: int, *key: Any) -> float:
    """Return a deterministic uniform variate in ``[0, 1)`` for ``key``.

    The variate is a pure function of ``(seed, key)``: calling it twice
    with the same arguments always yields the same value, and distinct
    keys yield (cryptographically) independent values.

    >>> u = uniform_for(7, "edge", (0, 1))
    >>> u == uniform_for(7, "edge", (0, 1))
    True
    >>> 0.0 <= u < 1.0
    True
    """
    return int.from_bytes(_digest(seed, key), "little") / _SCALE


def edge_coin(seed: int, edge: Any, p: float) -> bool:
    """Flip the deterministic coin for ``edge``: open with probability ``p``.

    The coin is *monotone-coupled* in ``p``: for fixed ``(seed, edge)``,
    if ``edge_coin(seed, edge, p1)`` is ``True`` and ``p2 >= p1``, then
    ``edge_coin(seed, edge, p2)`` is also ``True``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p!r}")
    return uniform_for(seed, "edge", edge) < p


def derive_seed(seed: int, *key: Any) -> int:
    """Derive a child 64-bit seed from ``seed`` and a structured ``key``.

    Used to give every trial of an experiment its own independent random
    stream:

    >>> s0 = derive_seed(42, "E1", "trial", 0)
    >>> s1 = derive_seed(42, "E1", "trial", 1)
    >>> s0 != s1
    True
    """
    return int.from_bytes(_digest(seed, ("derive",) + key), "little")
