"""Disjoint-set forest (union–find) over arbitrary hashable elements.

Used for connectivity ground truth of materialised percolated graphs and
by the probe-oracle bookkeeping tests.  Implements union by size and path
halving; amortised cost is effectively constant per operation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

__all__ = ["DisjointSets"]

T = TypeVar("T", bound=Hashable)


class DisjointSets:
    """A forest of disjoint sets over hashable elements.

    Elements are added implicitly on first use (each starts in its own
    singleton set).

    >>> ds = DisjointSets()
    >>> ds.union("a", "b")
    True
    >>> ds.connected("a", "b")
    True
    >>> ds.connected("a", "c")
    False
    """

    def __init__(self, elements: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        self._n_sets = 0
        for x in elements:
            self.add(x)

    def add(self, x: T) -> None:
        """Ensure ``x`` is tracked (as a singleton if new)."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._n_sets += 1

    def __contains__(self, x: T) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        """Return the number of tracked elements."""
        return len(self._parent)

    @property
    def n_sets(self) -> int:
        """Return the current number of disjoint sets."""
        return self._n_sets

    def find(self, x: T) -> T:
        """Return the canonical representative of ``x``'s set.

        Adds ``x`` as a singleton if it is not tracked yet.
        """
        self.add(x)
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, x: T, y: T) -> bool:
        """Merge the sets containing ``x`` and ``y``.

        Returns ``True`` if a merge happened, ``False`` if they were
        already in the same set.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._n_sets -= 1
        return True

    def connected(self, x: T, y: T) -> bool:
        """Return whether ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def set_size(self, x: T) -> int:
        """Return the size of the set containing ``x``."""
        return self._size[self.find(x)]

    def sets(self) -> list[list[T]]:
        """Return all sets as lists (order deterministic per insertion)."""
        groups: dict[T, list[T]] = {}
        for x in self._parent:
            groups.setdefault(self.find(x), []).append(x)
        return list(groups.values())

    def largest_set_size(self) -> int:
        """Return the size of the largest set (0 if empty)."""
        if not self._parent:
            return 0
        return max(
            self._size[x] for x in self._parent if self._parent[x] == x
        )
