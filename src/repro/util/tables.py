"""Plain-text and CSV rendering of result tables.

The benchmark harness prints paper-style tables to stdout and optionally
persists them as CSV.  Kept dependency-free on purpose: the tables must
render identically in CI logs and in a terminal.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["format_value", "render_csv", "render_table", "write_csv"]


def format_value(value: object, precision: int = 4) -> str:
    """Format one cell: floats compactly, everything else via ``str``.

    Large/small floats switch to scientific notation so exponential
    blow-ups (e.g. double-tree local routing) stay readable.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-4:
            return f"{value:.{precision}g}"
        text = f"{value:.{precision}f}"
        return text.rstrip("0").rstrip(".") if "." in text else text
    return str(value)


def _normalise(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None,
) -> tuple[list[str], list[list[str]]]:
    if columns is None:
        columns = []
        seen = set()
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    columns.append(key)
    body = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    return list(columns), body


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dicts as a fixed-width text table.

    Column order follows ``columns`` if given, otherwise first-seen order
    across rows.  Missing cells render empty.
    """
    columns, body = _normalise(rows, columns)
    if not columns:
        return (title + "\n") if title else ""
    widths = [
        max(len(col), *(len(r[i]) for r in body)) if body else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    lines.append(header)
    lines.append(rule)
    for row in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as CSV text (header + one line per row)."""
    columns, body = _normalise(rows, columns)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    writer.writerows(body)
    return buffer.getvalue()


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> Path:
    """Write rows as CSV to ``path`` (parents created) and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_csv(rows, columns), encoding="utf-8")
    return path
