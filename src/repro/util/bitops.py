"""Bit-level helpers for hypercube vertices and pair indexing.

Hypercube vertices are represented as Python ints in ``[0, 2**n)``; the
``i``-th bit is the ``i``-th coordinate.  ``G(n, p)`` percolation samples
vertex *pairs* by a flat triangular index, so the conversions between
``(i, j)`` pairs and indices live here too.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = [
    "bit_indices",
    "flip_bit",
    "gray_code",
    "hamming_distance",
    "hypercube_geodesic",
    "pair_from_index",
    "pair_index",
    "popcount",
]


def popcount(x: int) -> int:
    """Return the number of set bits of a non-negative int.

    >>> popcount(0b1011)
    3
    """
    if x < 0:
        raise ValueError("popcount is defined for non-negative ints")
    return x.bit_count()


def hamming_distance(x: int, y: int) -> int:
    """Return the Hamming distance between two bit vectors.

    This is the graph distance between vertices ``x`` and ``y`` of the
    hypercube.

    >>> hamming_distance(0b0000, 0b0110)
    2
    """
    return popcount(x ^ y)


def flip_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` flipped (a hypercube neighbour).

    >>> flip_bit(0b100, 0)
    5
    """
    if i < 0:
        raise ValueError("bit index must be non-negative")
    return x ^ (1 << i)


def bit_indices(x: int) -> list[int]:
    """Return the sorted indices of set bits of ``x``.

    >>> bit_indices(0b10110)
    [1, 2, 4]
    """
    if x < 0:
        raise ValueError("bit_indices is defined for non-negative ints")
    out = []
    i = 0
    while x:
        if x & 1:
            out.append(i)
        x >>= 1
        i += 1
    return out


def hypercube_geodesic(u: int, v: int) -> list[int]:
    """Return one shortest path from ``u`` to ``v`` in the hypercube.

    The path flips the differing coordinates in increasing index order,
    so it is deterministic.  The returned list includes both endpoints and
    has length ``hamming_distance(u, v) + 1``.

    >>> hypercube_geodesic(0b00, 0b11)
    [0, 1, 3]
    """
    path = [u]
    x = u
    for i in bit_indices(u ^ v):
        x = flip_bit(x, i)
        path.append(x)
    return path


def gray_code(k: int) -> int:
    """Return the ``k``-th Gray code word.

    Consecutive Gray codes are hypercube neighbours, which makes this a
    convenient Hamiltonian-path generator for tests.

    >>> [gray_code(k) for k in range(4)]
    [0, 1, 3, 2]
    """
    if k < 0:
        raise ValueError("gray_code index must be non-negative")
    return k ^ (k >> 1)


def pair_index(i: int, j: int) -> int:
    """Return the triangular index of the unordered pair ``{i, j}``.

    Pairs with ``0 <= i < j`` are numbered ``0, 1, 2, ...`` in
    lexicographic order of ``(j, i)``: pair ``{0,1}`` is 0, ``{0,2}`` is 1,
    ``{1,2}`` is 2, and in general ``index = j*(j-1)//2 + i``.

    >>> pair_index(0, 1), pair_index(0, 2), pair_index(1, 2)
    (0, 1, 2)
    """
    if i == j:
        raise ValueError("pairs are between distinct vertices")
    if i > j:
        i, j = j, i
    if i < 0:
        raise ValueError("vertex ids must be non-negative")
    return j * (j - 1) // 2 + i


def pair_from_index(index: int) -> tuple[int, int]:
    """Invert :func:`pair_index`.

    >>> pair_from_index(pair_index(3, 7))
    (3, 7)
    """
    if index < 0:
        raise ValueError("pair index must be non-negative")
    # j is the largest integer with j*(j-1)/2 <= index.
    j = int(((8 * index + 1) ** 0.5 + 1) / 2)
    # Float sqrt can be off by one near perfect squares; correct it.
    while j * (j - 1) // 2 > index:
        j -= 1
    while (j + 1) * j // 2 <= index:
        j += 1
    i = index - j * (j - 1) // 2
    return i, j


def iter_pairs(n: int) -> Iterator[tuple[int, int]]:
    """Yield all unordered pairs over ``range(n)`` in triangular order."""
    for j in range(n):
        for i in range(j):
            yield i, j
