"""Summary statistics, confidence intervals and scaling fits.

The experiment harness reduces raw per-trial measurements (query counts,
success indicators, path lengths) to the summaries reported in
EXPERIMENTS.md.  Everything here is deterministic given its inputs; the
bootstrap takes an explicit seed.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_seed

__all__ = [
    "Summary",
    "bootstrap_ci",
    "geometric_mean",
    "linear_fit",
    "loglog_slope",
    "mean_ci",
    "proportion_ci",
    "quantile",
    "summarize",
]

#: z-value for a 95% two-sided normal interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dict (for result tables)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p90": self.p90,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of ``values``.

    Raises :class:`ValueError` on an empty sample (an experiment that
    produced no data is a bug, not a statistic).
    """
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        p90=float(np.quantile(arr, 0.9)),
        maximum=float(arr.max()),
    )


def quantile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-quantile of ``values`` (linear interpolation)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if len(values) == 0:
        raise ValueError("cannot take a quantile of an empty sample")
    return float(np.quantile(np.asarray(values, dtype=float), q))


def geometric_mean(values: Sequence[float]) -> float:
    """Return the geometric mean of strictly positive ``values``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a geometric mean of an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


def mean_ci(values: Sequence[float]) -> tuple[float, float, float]:
    """Return ``(mean, lo, hi)`` — a 95% normal CI for the mean."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a CI from an empty sample")
    m = float(arr.mean())
    if arr.size == 1:
        return m, m, m
    half = _Z95 * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return m, m - half, m + half


def proportion_ci(successes: int, trials: int) -> tuple[float, float, float]:
    """Return ``(p_hat, lo, hi)`` — a 95% Wilson interval for a proportion.

    Wilson is preferred over the Wald interval because experiment success
    rates are frequently near 0 or 1, where Wald degenerates.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = _Z95
    p_hat = successes / trials
    denom = 1 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials**2))
        / denom
    )
    return p_hat, max(0.0, centre - half), min(1.0, centre + half)


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Return ``(stat, lo, hi)`` — a 95% percentile-bootstrap interval.

    ``statistic`` is any reduction of a 1-D array to a scalar (default:
    the mean).  Deterministic given ``seed``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(derive_seed(seed, "bootstrap"))
    stats = np.empty(n_boot)
    for b in range(n_boot):
        resample = rng.choice(arr, size=arr.size, replace=True)
        stats[b] = statistic(resample)
    point = float(statistic(arr))
    return point, float(np.quantile(stats, 0.025)), float(
        np.quantile(stats, 0.975)
    )


def linear_fit(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[float, float, float]:
    """Least-squares fit ``y ≈ slope*x + intercept``.

    Returns ``(slope, intercept, r_squared)``.  Needs at least two
    distinct x values.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size:
        raise ValueError("xs and ys must have equal length")
    if x.size < 2 or np.all(x == x[0]):
        raise ValueError("need at least two distinct x values to fit")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return float(slope), float(intercept), r2


def loglog_slope(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[float, float]:
    """Fit ``y ≈ C * x**k`` by regression in log–log space.

    Returns ``(k, r_squared)``.  This is how the harness extracts scaling
    exponents — e.g. the Θ(n^{3/2}) oracle-routing law of Theorem 11
    appears as a slope ≈ 1.5.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("log-log fit requires strictly positive data")
    slope, _, r2 = linear_fit(np.log(x), np.log(y))
    return slope, r2
