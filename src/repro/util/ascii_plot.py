"""Terminal-friendly plots: bars and scatter charts with log axes.

Examples and benchmark logs need shape-at-a-glance output without a
plotting dependency.  Everything renders to plain strings.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["bar_chart", "scatter_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render values as a one-line unicode sparkline.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    if not values:
        raise ValueError("nothing to plot")
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values):
        raise ValueError("bar chart needs non-negative values")
    peak = max(values) or 1.0
    label_width = max(len(str(lab)) for lab in labels)
    lines = []
    for lab, v in zip(labels, values):
        bar = fill * round(v / peak * width)
        lines.append(f"{str(lab).rjust(label_width)} |{bar} {v:g}")
    return "\n".join(lines)


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    marker: str = "*",
) -> str:
    """Render an (x, y) scatter as a character grid with axis ranges.

    ``logx``/``logy`` plot in log10 space (all data must be positive).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        raise ValueError("nothing to plot")
    if width < 2 or height < 2:
        raise ValueError("plot must be at least 2x2")

    def transform(values, log):
        if not log:
            return [float(v) for v in values]
        if any(v <= 0 for v in values):
            raise ValueError("log axis requires positive values")
        return [math.log10(v) for v in values]

    tx = transform(xs, logx)
    ty = transform(ys, logy)
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(tx, ty):
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    def fmt(v, log):
        return f"1e{v:.2g}" if log else f"{v:g}"

    lines = [f"y: {fmt(y_lo, logy)} .. {fmt(y_hi, logy)}"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f"x: {fmt(x_lo, logx)} .. {fmt(x_hi, logx)}")
    return "\n".join(lines)
