"""Shared low-level utilities.

This package holds the substrate pieces that everything else builds on:

* :mod:`repro.util.rng` — deterministic, keyed randomness.  All stochastic
  behaviour in the library flows through these functions, which makes every
  experiment exactly reproducible from a single integer seed.
* :mod:`repro.util.bitops` — bit-level helpers for hypercube vertices and
  triangular pair indexing for ``G(n, p)``.
* :mod:`repro.util.stats` — summary statistics, confidence intervals and
  scaling-exponent fits used by the experiment harness.
* :mod:`repro.util.unionfind` — disjoint-set forests for connectivity
  ground truth.
* :mod:`repro.util.tables` — plain-text/CSV result tables.
"""

from repro.util.rng import derive_seed, edge_coin, uniform_for
from repro.util.unionfind import DisjointSets

__all__ = [
    "DisjointSets",
    "derive_seed",
    "edge_coin",
    "uniform_for",
]
