"""Batched percolation draws and mask-backed models.

A chunk of trials shares one topology; what varies per trial is the
seed.  The functions here draw the whole chunk's randomness as one
``(trials, edges)`` (or ``(trials, vertices)``) boolean matrix — one
row per trial, each row reproducing the corresponding per-trial model
**bit for bit**:

* :func:`table_edge_masks` replays :class:`~repro.percolation.models.
  TablePercolation`'s recipe — one ``default_rng(derive_seed(seed,
  "table-percolation"))`` stream per row, thresholded at ``p`` — over
  edges in :class:`~repro.kernels.topology.EdgeIndex` order, which *is*
  ``graph.edges()`` order;
* :func:`site_up_masks` replays :class:`~repro.percolation.site.
  SitePercolation`'s per-vertex keyed BLAKE2b coins (pinned vertices
  forced up), with the key bytes serialised once per chunk instead of
  once per probe;
* :class:`LazySiteDraw` draws the *same* coins on demand: the chunk's
  connectivity BFS asks for exactly the coins its frontiers touch
  (a dying subcritical cluster demands a handful per trial, not the
  whole vertex set), and only the rows that go on to route pay for a
  full row fill.  Values are bit-identical either way — every coin is
  a pure function of ``(seed, vertex)`` — so laziness is invisible in
  the records.

The mask-backed models wrap one row back into the
:class:`~repro.percolation.models.PercolationModel` interface, so the
routers (which only ever see ``is_open``/``open_neighbors`` answers)
cannot distinguish them from the model they replace — the parity tests
in ``tests/kernels/`` assert exactly that.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

import numpy as np

from repro.graphs.base import Vertex
from repro.kernels.bfs import block_rows
from repro.kernels.topology import EdgeIndex
from repro.percolation.models import PercolationModel
from repro.util.rng import MAX_SEED, derive_seed

__all__ = [
    "LazySiteDraw",
    "MaskEdgePercolation",
    "MaskSitePercolation",
    "site_up_masks",
    "table_edge_masks",
]

_SCALE = float(2**64)


def table_edge_masks(
    p: float, seeds: Sequence[int], num_edges: int
) -> np.ndarray:
    """Draw every trial's edge mask; row ``i`` == trial ``seeds[i]``.

    Row-for-row identical to ``TablePercolation(graph, p, seed).mask``:
    same child-seed derivation, same generator, same threshold
    comparison — only the per-trial edge enumeration and set/dict
    builds are gone.
    """
    out = np.empty((len(seeds), num_edges), dtype=bool)
    for i, seed in enumerate(seeds):
        rng = np.random.default_rng(derive_seed(seed, "table-percolation"))
        out[i] = rng.random(num_edges) < p
    return out


def site_up_masks(
    p: float,
    seeds: Sequence[int],
    verts: Sequence[Vertex],
    pinned_codes: Sequence[int] = (),
) -> np.ndarray:
    """Draw every trial's vertex-up mask; row ``i`` == trial ``seeds[i]``.

    Entry ``[i, v]`` equals ``SitePercolation.is_up(verts[v])`` under
    ``seeds[i]``: the keyed-BLAKE2b uniform ``uniform_for(seed, "site",
    v) < p``, with pinned vertices forced up.  The ``repr`` key bytes
    are serialised once for the whole chunk.
    """
    blobs = [repr(("site", v)).encode("utf-8") for v in verts]
    out = np.empty((len(seeds), len(blobs)), dtype=bool)
    blake2b = hashlib.blake2b
    for i, seed in enumerate(seeds):
        if not 0 <= seed <= MAX_SEED:
            raise ValueError(
                f"seed must be a 64-bit unsigned int, got {seed!r}"
            )
        key = seed.to_bytes(8, "little")
        row = out[i]
        for j, blob in enumerate(blobs):
            digest = blake2b(blob, digest_size=8, key=key).digest()
            row[j] = int.from_bytes(digest, "little") / _SCALE < p
    for code in pinned_codes:
        out[:, code] = True
    return out


class LazySiteDraw:
    """One chunk's site coins, drawn in frontier-demanded blocks.

    The eager matrix (:func:`site_up_masks`) hashes every ``(trial,
    vertex)`` coin up front — a loss when per-trial models would only
    have touched a dying cluster's fringe.  This draw keeps an
    undrawn/drawn ledger per coin and materialises exactly what each
    stage demands:

    * :meth:`connected` runs the chunk-wide layered BFS, drawing the
      coins of each sweep's candidate vertices just before expanding
      into them (verdicts equal the per-trial cluster BFS — coin
      values are pure functions of ``(seed, vertex)``, and
      reachability is order-independent);
    * :meth:`edge_masks_for` / :meth:`model` fill whole rows, but only
      for the trials that actually go on to route.

    ``node_view=True`` serves :class:`~repro.percolation.faults.
    NodeFaultPercolation` — the *same* ``"site"`` coin stream viewed as
    incident-edge kill — by handing per-trial rows out as
    :class:`MaskEdgePercolation` over ``up[u] & up[v]``.
    """

    def __init__(
        self,
        index: EdgeIndex,
        p: float,
        seeds: Sequence[int],
        pinned_codes: Sequence[int] = (),
        node_view: bool = False,
    ) -> None:
        self._index = index
        self._p = p
        self._seeds = list(seeds)
        self._node_view = node_view
        trials = len(self._seeds)
        num_vertices = index.num_vertices
        self._up = np.zeros((trials, num_vertices), dtype=bool)
        self._drawn = np.zeros((trials, num_vertices), dtype=bool)
        if pinned_codes:
            cols = list(pinned_codes)
            self._up[:, cols] = True
            self._drawn[:, cols] = True
        # Key-blob cache, one slot per vertex, serialised on first
        # demand: a dying subcritical chunk touches a handful of
        # vertices, so eagerly ``repr``-ing the whole vertex set would
        # dominate its runtime.
        self._blobs: list[bytes | None] = [None] * num_vertices
        self._keys: list[bytes | None] = [None] * trials

    def _key(self, i: int) -> bytes:
        key = self._keys[i]
        if key is None:
            seed = self._seeds[i]
            if not 0 <= seed <= MAX_SEED:
                raise ValueError(
                    f"seed must be a 64-bit unsigned int, got {seed!r}"
                )
            key = self._keys[i] = seed.to_bytes(8, "little")
        return key

    def _draw_pairs(self, rows: np.ndarray, cols: np.ndarray) -> None:
        blobs = self._blobs
        verts = self._index.verts
        keys = self._keys
        blake2b = hashlib.blake2b
        digests = []
        for i, j in zip(rows.tolist(), cols.tolist()):
            blob = blobs[j]
            if blob is None:
                blob = blobs[j] = repr(("site", verts[j])).encode("utf-8")
            key = keys[i]
            if key is None:
                key = self._key(i)
            digests.append(blake2b(blob, digest_size=8, key=key).digest())
        # uint64 -> float64 rounds to nearest and the /2**64 scaling is
        # exact, so this equals the per-probe ``int.from_bytes(...) /
        # 2**64`` bit for bit.
        vals = np.frombuffer(b"".join(digests), dtype="<u8")
        self._up[rows, cols] = vals / _SCALE < self._p
        self._drawn[rows, cols] = True

    def _fill_rows(self, rows: Sequence[int]) -> None:
        for i in rows:
            cols = np.nonzero(~self._drawn[i])[0]
            if cols.size:
                self._draw_pairs(
                    np.full(cols.size, i, dtype=np.int64), cols
                )

    def connected(
        self, source_code: int, target_code: int
    ) -> np.ndarray:
        """Per-row cluster verdicts, demanding only frontier coins."""
        trials = len(self._seeds)
        out = np.zeros(trials, dtype=bool)
        if source_code == target_code:
            out[:] = True
            return out
        index = self._index
        inc_nbr, inc_eid, inc_valid = index.incidence()
        num_vertices, width = inc_nbr.shape
        # The per-trial BFS opens with open_neighbors(source), which
        # needs the source coin first: a down source never expands.
        undrawn = np.nonzero(~self._drawn[:, source_code])[0]
        if undrawn.size:
            self._draw_pairs(
                undrawn, np.full(undrawn.size, source_code, dtype=np.int64)
            )
        block = block_rows(num_vertices, width)
        for lo in range(0, trials, block):
            hi = min(lo + block, trials)
            rows = np.arange(lo, hi, dtype=np.int64)
            live = self._up[lo:hi, source_code]
            rows = rows[live]
            if not rows.size:
                continue
            reached = np.zeros((rows.size, num_vertices), dtype=bool)
            reached[:, source_code] = True
            frontier = reached.copy()
            while rows.size:
                # Sweep only the columns adjacent to some row's
                # frontier: a dying subcritical cluster touches a
                # handful of vertices, so a whole-graph gather per
                # sweep would swamp the coins it saves.
                fcols = np.nonzero(frontier.any(axis=0))[0]
                seen = np.zeros(num_vertices, dtype=bool)
                seen[inc_nbr[fcols][inc_valid[fcols]]] = True
                cand_cols = np.nonzero(seen)[0]
                sub_nbr = inc_nbr[cand_cols]
                # A candidate has a frontier neighbour; every reached
                # vertex is up (the source was checked above), so the
                # candidate joins iff its own coin is up.
                cand = (
                    inc_valid[cand_cols] & frontier[:, sub_nbr]
                ).any(axis=2)
                cand &= ~reached[:, cand_cols]
                need = cand & ~self._drawn[np.ix_(rows, cand_cols)]
                if need.any():
                    r, c = np.nonzero(need)
                    self._draw_pairs(rows[r], cand_cols[c])
                new = cand & self._up[np.ix_(rows, cand_cols)]
                frontier[:] = False
                frontier[:, cand_cols] = new
                reached[:, cand_cols] |= new
                hit = reached[:, target_code]
                active = ~hit & new.any(axis=1)
                settled = ~active
                if settled.any():
                    out[rows[settled]] = hit[settled]
                    frontier[settled] = False
                    if not active.any():
                        break
                    if int(active.sum()) <= rows.size // 2:
                        reached = reached[active]
                        frontier = frontier[active]
                        rows = rows[active]
        return out

    def up_masks(self) -> np.ndarray:
        """The fully-drawn ``(trials, vertices)`` up matrix."""
        self._fill_rows(range(len(self._seeds)))
        return self._up

    def edge_masks(self) -> np.ndarray:
        up = self.up_masks()
        return up[:, self._index.edge_u] & up[:, self._index.edge_v]

    def edge_masks_for(self, rows: Sequence[int]) -> np.ndarray:
        """Open-edge rows for the given trials only (filled on demand)."""
        self._fill_rows(rows)
        up = self._up[list(rows)]
        return up[:, self._index.edge_u] & up[:, self._index.edge_v]

    def model(self, i: int) -> PercolationModel:
        self._fill_rows([i])
        if self._node_view:
            row = self._up[i]
            mask = row[self._index.edge_u] & row[self._index.edge_v]
            return MaskEdgePercolation(self._index, self._p, mask)
        return MaskSitePercolation(self._index, self._p, self._up[i])


class MaskEdgePercolation(PercolationModel):
    """One trial's row of a batched edge draw, as a model.

    Answers exactly like the ``TablePercolation`` it replaces: an edge
    of the graph is open iff its mask bit is set; a non-edge pair is
    closed (``TablePercolation`` answers via set membership of the
    canonical key, which a non-edge never has).
    """

    def __init__(
        self, index: EdgeIndex, p: float, mask: np.ndarray
    ) -> None:
        super().__init__(index.graph, p)
        self._index = index
        self._mask = mask
        # Probe-path cache: a Python list answers single-edge lookups
        # ~2x faster than numpy scalar indexing.  Materialised on the
        # first probe, so unrouted trials never pay for it.
        self._open_list: list[bool] | None = None

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        eid = self._index.eid.get(self.graph.edge_key(u, v))
        if eid is None:
            return False
        open_list = self._open_list
        if open_list is None:
            open_list = self._open_list = self._mask.tolist()
        return open_list[eid]

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        index = self._index
        inc_nbr, inc_eid, inc_valid = index.incidence()
        row = index.code[v]
        keep = inc_valid[row] & self._mask[inc_eid[row]]
        verts = index.verts
        return [verts[c] for c in inc_nbr[row][keep].tolist()]

    def num_open_edges(self) -> int:
        """Return the number of open edges."""
        return int(self._mask.sum())


class MaskSitePercolation(PercolationModel):
    """One trial's row of a batched site draw, as a model.

    Mirrors :class:`~repro.percolation.site.SitePercolation` exactly —
    including ``is_open`` on non-adjacent pairs (both endpoints up),
    which the edge-mask view could not represent.
    """

    def __init__(
        self, index: EdgeIndex, p: float, up: np.ndarray
    ) -> None:
        super().__init__(index.graph, p)
        self._index = index
        self._up = up

    def is_up(self, v: Vertex) -> bool:
        """Return whether vertex ``v`` survived."""
        return bool(self._up[self._index.code[v]])

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        return self.is_up(u) and self.is_up(v)

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        if not self.is_up(v):
            return []
        return [w for w in self.graph.neighbors(v) if self.is_up(w)]
