"""Batched percolation draws and mask-backed models.

A chunk of trials shares one topology; what varies per trial is the
seed.  The functions here draw the whole chunk's randomness as one
``(trials, edges)`` (or ``(trials, vertices)``) boolean matrix — one
row per trial, each row reproducing the corresponding per-trial model
**bit for bit**:

* :func:`table_edge_masks` replays :class:`~repro.percolation.models.
  TablePercolation`'s recipe — one ``default_rng(derive_seed(seed,
  "table-percolation"))`` stream per row, thresholded at ``p`` — over
  edges in :class:`~repro.kernels.topology.EdgeIndex` order, which *is*
  ``graph.edges()`` order;
* :func:`site_up_masks` replays :class:`~repro.percolation.site.
  SitePercolation`'s per-vertex keyed BLAKE2b coins (pinned vertices
  forced up), with the key bytes serialised once per chunk instead of
  once per probe.

The mask-backed models wrap one row back into the
:class:`~repro.percolation.models.PercolationModel` interface, so the
routers (which only ever see ``is_open``/``open_neighbors`` answers)
cannot distinguish them from the model they replace — the parity tests
in ``tests/kernels/`` assert exactly that.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

import numpy as np

from repro.graphs.base import Vertex
from repro.kernels.topology import EdgeIndex
from repro.percolation.models import PercolationModel
from repro.util.rng import MAX_SEED, derive_seed

__all__ = [
    "MaskEdgePercolation",
    "MaskSitePercolation",
    "site_up_masks",
    "table_edge_masks",
]

_SCALE = float(2**64)


def table_edge_masks(
    p: float, seeds: Sequence[int], num_edges: int
) -> np.ndarray:
    """Draw every trial's edge mask; row ``i`` == trial ``seeds[i]``.

    Row-for-row identical to ``TablePercolation(graph, p, seed).mask``:
    same child-seed derivation, same generator, same threshold
    comparison — only the per-trial edge enumeration and set/dict
    builds are gone.
    """
    out = np.empty((len(seeds), num_edges), dtype=bool)
    for i, seed in enumerate(seeds):
        rng = np.random.default_rng(derive_seed(seed, "table-percolation"))
        out[i] = rng.random(num_edges) < p
    return out


def site_up_masks(
    p: float,
    seeds: Sequence[int],
    verts: Sequence[Vertex],
    pinned_codes: Sequence[int] = (),
) -> np.ndarray:
    """Draw every trial's vertex-up mask; row ``i`` == trial ``seeds[i]``.

    Entry ``[i, v]`` equals ``SitePercolation.is_up(verts[v])`` under
    ``seeds[i]``: the keyed-BLAKE2b uniform ``uniform_for(seed, "site",
    v) < p``, with pinned vertices forced up.  The ``repr`` key bytes
    are serialised once for the whole chunk.
    """
    blobs = [repr(("site", v)).encode("utf-8") for v in verts]
    out = np.empty((len(seeds), len(blobs)), dtype=bool)
    blake2b = hashlib.blake2b
    for i, seed in enumerate(seeds):
        if not 0 <= seed <= MAX_SEED:
            raise ValueError(
                f"seed must be a 64-bit unsigned int, got {seed!r}"
            )
        key = seed.to_bytes(8, "little")
        row = out[i]
        for j, blob in enumerate(blobs):
            digest = blake2b(blob, digest_size=8, key=key).digest()
            row[j] = int.from_bytes(digest, "little") / _SCALE < p
    for code in pinned_codes:
        out[:, code] = True
    return out


class MaskEdgePercolation(PercolationModel):
    """One trial's row of a batched edge draw, as a model.

    Answers exactly like the ``TablePercolation`` it replaces: an edge
    of the graph is open iff its mask bit is set; a non-edge pair is
    closed (``TablePercolation`` answers via set membership of the
    canonical key, which a non-edge never has).
    """

    def __init__(
        self, index: EdgeIndex, p: float, mask: np.ndarray
    ) -> None:
        super().__init__(index.graph, p)
        self._index = index
        self._mask = mask
        # Probe-path cache: a Python list answers single-edge lookups
        # ~2x faster than numpy scalar indexing.  Materialised on the
        # first probe, so unrouted trials never pay for it.
        self._open_list: list[bool] | None = None

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        eid = self._index.eid.get(self.graph.edge_key(u, v))
        if eid is None:
            return False
        open_list = self._open_list
        if open_list is None:
            open_list = self._open_list = self._mask.tolist()
        return open_list[eid]

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        index = self._index
        inc_nbr, inc_eid, inc_valid = index.incidence()
        row = index.code[v]
        keep = inc_valid[row] & self._mask[inc_eid[row]]
        verts = index.verts
        return [verts[c] for c in inc_nbr[row][keep].tolist()]

    def num_open_edges(self) -> int:
        """Return the number of open edges."""
        return int(self._mask.sum())


class MaskSitePercolation(PercolationModel):
    """One trial's row of a batched site draw, as a model.

    Mirrors :class:`~repro.percolation.site.SitePercolation` exactly —
    including ``is_open`` on non-adjacent pairs (both endpoints up),
    which the edge-mask view could not represent.
    """

    def __init__(
        self, index: EdgeIndex, p: float, up: np.ndarray
    ) -> None:
        super().__init__(index.graph, p)
        self._index = index
        self._up = up

    def is_up(self, v: Vertex) -> bool:
        """Return whether vertex ``v`` survived."""
        return bool(self._up[self._index.code[v]])

    def is_open(self, u: Vertex, v: Vertex) -> bool:
        return self.is_up(u) and self.is_up(v)

    def open_neighbors(self, v: Vertex) -> list[Vertex]:
        if not self.is_up(v):
            return []
        return [w for w in self.graph.neighbors(v) if self.is_up(w)]
